"""CLI tests (in-process, via main())."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_system_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["link", "text", "--system", "nope"])


class TestWorld:
    def test_writes_dump(self, tmp_path, capsys):
        path = tmp_path / "kb.json"
        assert main(["world", str(path)]) == 0
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["entities"]
        out = capsys.readouterr().out
        assert "entities" in out


class TestDatasets:
    def test_writes_all_datasets(self, tmp_path):
        out = tmp_path / "data"
        assert main(["datasets", str(out), "--scale", "0.05"]) == 0
        for name in ("kb", "news", "t-rex42", "kore50", "msnbc19"):
            assert (out / f"{name}.json").exists()


class TestLink:
    def test_link_text_argument(self, capsys):
        code = main(
            ["link", "Glowberry Cleanse is located in Brooklyn."]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "TENET"
        assert any(e["surface"] == "Brooklyn" for e in payload["entities"])
        assert any(
            e["surface"] == "Glowberry Cleanse" for e in payload["non_linkable"]
        )

    def test_link_from_file(self, tmp_path, capsys):
        path = tmp_path / "doc.txt"
        path.write_text("Brooklyn is twinned with Brooklyn.")
        assert main(["link", "--file", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entities"]

    def test_link_baseline_system(self, capsys):
        assert main(["link", "Brooklyn grew.", "--system", "falcon"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "Falcon"

    def test_empty_document_fails(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["link"]) == 2


class TestLinkJsonl:
    def test_streams_one_json_per_line(self, tmp_path, capsys):
        path = tmp_path / "docs.jsonl"
        path.write_text(
            "Brooklyn grew.\n"
            "\n"
            "Brooklyn is twinned with Brooklyn.\n"
        )
        assert main(["link", "--jsonl", "--file", str(path)]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2  # the blank input line is skipped
        for line in lines:
            payload = json.loads(line)
            assert payload["system"] == "TENET"
            assert any(e["surface"] == "Brooklyn" for e in payload["entities"])

    def test_jsonl_matches_single_link(self, capsys):
        text = "Brooklyn grew."
        assert main(["link", text]) == 0
        single = json.loads(capsys.readouterr().out)
        assert main(["link", "--jsonl", text]) == 0
        batched = json.loads(capsys.readouterr().out.strip())
        single.pop("timings", None)
        batched.pop("timings", None)
        assert batched == single


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8080
        assert args.workers == 4
        assert args.timeout is None
        assert not args.no_cache

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2",
             "--timeout", "1.5", "--no-cache"]
        )
        assert args.port == 0
        assert args.workers == 2
        assert args.timeout == 1.5
        assert args.no_cache


class TestEvaluate:
    def test_small_evaluation(self, capsys):
        code = main(
            [
                "evaluate",
                "--scale", "0.05",
                "--systems", "falcon,tenet",
                "--datasets", "kore50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "KORE50" in out
        assert "TENET" in out and "Falcon" in out

    def test_unknown_system_errors(self, capsys):
        assert main(["evaluate", "--systems", "nope"]) == 2


class TestStats:
    def test_prints_all_rows(self, capsys):
        assert main(["stats", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("News", "T-REx42", "KORE50", "MSNBC19"):
            assert name in out


class TestReport:
    def test_writes_markdown_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            [
                "report", str(out),
                "--scale", "0.05",
                "--systems", "falcon,tenet",
            ]
        )
        assert code == 0
        document = out.read_text()
        assert document.startswith("# TENET reproduction report")
        assert "Entity linking" in document
        assert "Error analysis" in document

    def test_unknown_system_rejected(self, tmp_path):
        assert main(["report", str(tmp_path / "r.md"), "--systems", "zzz"]) == 2


class TestValidate:
    def test_valid_dataset_passes(self, tmp_path):
        out = tmp_path / "data"
        main(["datasets", str(out), "--scale", "0.05"])
        code = main(
            ["validate", str(out / "kore50.json"), "--kb", str(out / "kb.json")]
        )
        assert code == 0

    def test_broken_dataset_fails(self, tmp_path, capsys):
        import json

        out = tmp_path / "data"
        main(["datasets", str(out, ), "--scale", "0.05"])
        payload = json.loads((out / "kore50.json").read_text())
        payload["documents"][0]["gold"][0]["surface"] = "CORRUPTED"
        (out / "broken.json").write_text(json.dumps(payload))
        code = main(["validate", str(out / "broken.json")])
        assert code == 1
        assert "error" in capsys.readouterr().out


class TestSnapshotCli:
    @pytest.fixture
    def store(self, tmp_path, capsys):
        """A store with one small snapshot built through the CLI."""
        root = tmp_path / "snapshots"
        assert main(
            ["snapshot", "build", str(root), "--scales", "0.05"]
        ) == 0
        capsys.readouterr()
        return root

    def test_build_prints_snapshot_path(self, tmp_path, capsys):
        root = tmp_path / "snapshots"
        assert main(["snapshot", "build", str(root), "--scales", "0.05"]) == 0
        out = capsys.readouterr().out
        path = out.strip().splitlines()[-1]
        assert path.startswith(str(root))
        assert "snap-" in path

    def test_build_bad_scales(self, tmp_path):
        assert main(["snapshot", "build", str(tmp_path), "--scales", "x"]) == 2

    def test_verify_store_ok(self, store, capsys):
        assert main(["snapshot", "verify", str(store)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_single_snapshot_directory(self, store, capsys):
        snapshot = next(store.glob("snap-*"))
        assert main(["snapshot", "verify", str(snapshot)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corrupt_store_fails(self, store, capsys):
        target = next(store.glob("snap-*/kb.json"))
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        assert main(["snapshot", "verify", str(store)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "kb.json" in out

    def test_verify_empty_store_errors(self, tmp_path, capsys):
        assert main(["snapshot", "verify", str(tmp_path)]) == 2

    def test_list_json(self, store, capsys):
        assert main(["snapshot", "list", str(store), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 1
        assert entries[0]["seed"] == 7
        assert entries[0]["scales"] == [0.05]

    def test_list_human(self, store, capsys):
        assert main(["snapshot", "list", str(store)]) == 0
        out = capsys.readouterr().out
        assert "snap-" in out and "seed=7" in out

    def test_gc_dry_run(self, store, capsys):
        litter = store / ".tmp-snap-x-deadbeef"
        litter.mkdir()
        assert main(["snapshot", "gc", str(store), "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert litter.is_dir()
        assert main(["snapshot", "gc", str(store)]) == 0
        assert not litter.exists()

    def test_link_warm_matches_cold(self, store, capsys):
        text = "Brooklyn is twinned with Brooklyn."
        assert main(["link", text]) == 0
        cold = json.loads(capsys.readouterr().out)
        # Default link spec differs from the store only in scales, so
        # the stored snapshot is reused rather than rebuilt.
        assert main(["link", text, "--snapshot", str(store)]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert len(list(store.glob("snap-*"))) == 1
        cold.pop("timings", None)
        warm.pop("timings", None)
        assert warm == cold
