"""Mention group and canopy tests (Sec. 5.1, Algorithm 4, Table 1)."""

import pytest

from repro.core.canopies import build_mention_groups
from repro.nlp.spans import Span, SpanKind
from repro.nlp.tokenizer import tokenize


def noun(text, start, end, sentence=0):
    return Span(text, start, end, sentence, SpanKind.NOUN)


def relation(text, start, end, sentence=0):
    return Span(text, start, end, sentence, SpanKind.RELATION)


@pytest.fixture
def storm_tokens():
    # 0:Rembrandt 1:painted 2:The 3:Storm 4:on 5:the 6:Sea 7:of 8:Galilee 9:.
    return tokenize("Rembrandt painted The Storm on the Sea of Galilee.")


@pytest.fixture
def storm_inventory(storm_tokens):
    return [
        noun("Rembrandt", 0, 1),
        noun("The Storm", 2, 4),
        noun("Sea", 6, 7),
        noun("Galilee", 8, 9),
        noun("The Storm on the Sea of Galilee", 2, 9),
    ]


class TestGroups:
    def test_table1_groups(self, storm_tokens, storm_inventory):
        groups = build_mention_groups(storm_tokens, storm_inventory, [])
        noun_groups = [g for g in groups if g.short_mentions[0].kind is SpanKind.NOUN]
        shorts = sorted(
            tuple(s.text for s in g.short_mentions) for g in noun_groups
        )
        assert ("Rembrandt",) in shorts
        assert ("The Storm", "Sea", "Galilee") in shorts

    def test_chain_requires_same_sentence(self):
        tokens = tokenize("Storm arrived. Galilee slept.")
        inventory = [noun("Storm", 0, 1, 0), noun("Galilee", 3, 4, 1)]
        groups = build_mention_groups(tokens, inventory, [])
        assert all(len(g.short_mentions) == 1 for g in groups)

    def test_chain_requires_feature_gap(self):
        tokens = tokenize("Storm met Galilee.")
        inventory = [noun("Storm", 0, 1), noun("Galilee", 2, 3)]
        groups = build_mention_groups(tokens, inventory, [])
        assert all(len(g.short_mentions) == 1 for g in groups)

    def test_relations_get_singleton_groups(self, storm_tokens, storm_inventory):
        rel = relation("painted", 1, 2)
        groups = build_mention_groups(storm_tokens, storm_inventory, [rel])
        rel_groups = [g for g in groups if rel in g.spans()]
        assert len(rel_groups) == 1
        assert rel_groups[0].is_singleton

    def test_redundant_contained_span_stays_groupless(self, storm_tokens):
        inventory = [
            noun("Nina Wilson", 0, 2),
            noun("Wilson", 1, 2),
        ]
        groups = build_mention_groups(storm_tokens, inventory, [])
        assigned = set()
        for g in groups:
            assigned |= g.spans()
        assert inventory[0] in assigned
        assert inventory[1] not in assigned


class TestCanopies:
    def test_all_singles_canopy_exists(self, storm_tokens, storm_inventory):
        groups = build_mention_groups(storm_tokens, storm_inventory, [])
        chain_group = next(g for g in groups if len(g.short_mentions) == 3)
        member_sets = [tuple(m.text for m in c.members) for c in chain_group.canopies]
        assert ("The Storm", "Sea", "Galilee") in member_sets

    def test_full_merge_canopy_exists(self, storm_tokens, storm_inventory):
        groups = build_mention_groups(storm_tokens, storm_inventory, [])
        chain_group = next(g for g in groups if len(g.short_mentions) == 3)
        member_sets = [tuple(m.text for m in c.members) for c in chain_group.canopies]
        assert ("The Storm on the Sea of Galilee",) in member_sets

    def test_partial_merge_requires_inventory_span(
        self, storm_tokens, storm_inventory
    ):
        groups = build_mention_groups(storm_tokens, storm_inventory, [])
        chain_group = next(g for g in groups if len(g.short_mentions) == 3)
        member_sets = [tuple(m.text for m in c.members) for c in chain_group.canopies]
        # "The Storm on the Sea" is not in the inventory -> no such canopy
        assert not any("The Storm on the Sea" in ms for ms in member_sets)

    def test_partial_merge_with_inventory_span(self, storm_tokens, storm_inventory):
        inventory = storm_inventory + [noun("Storm on the Sea", 3, 7)]
        groups = build_mention_groups(storm_tokens, inventory, [])
        chain_group = next(g for g in groups if len(g.short_mentions) == 3)
        member_sets = [tuple(m.text for m in c.members) for c in chain_group.canopies]
        assert ("Storm on the Sea", "Galilee") in member_sets

    def test_canopy_count_capped(self):
        # a long chain must not explode combinatorially
        words = " and ".join(f"W{i}" for i in range(9))
        tokens = tokenize(words + ".")
        inventory = [
            noun(f"W{i}", 2 * i, 2 * i + 1) for i in range(9)
        ]
        groups = build_mention_groups(tokens, inventory, [])
        for group in groups:
            assert len(group.canopies) <= 24


class TestFallbackCanopies:
    def test_oov_member_replaced_by_inner_span(self):
        tokens = tokenize("Mr Miller arrived.")
        full = noun("Mr Miller", 0, 2)
        inner = noun("Miller", 1, 2)
        groups = build_mention_groups(
            tokens,
            [full, inner],
            [],
            has_candidates=lambda s: s is inner,
        )
        group = next(g for g in groups if full in g.spans())
        member_sets = [tuple(m.text for m in c.members) for c in group.canopies]
        assert ("Miller",) in member_sets

    def test_rightmost_head_preferred(self):
        tokens = tokenize("Ms Weber arrived.")
        full = noun("Ms Weber", 0, 2)
        left = noun("Ms", 0, 1)
        right = noun("Weber", 1, 2)
        groups = build_mention_groups(
            tokens,
            [full, left, right],
            [],
            has_candidates=lambda s: s in (left, right),
        )
        group = next(g for g in groups if full in g.spans())
        member_sets = [tuple(m.text for m in c.members) for c in group.canopies]
        assert ("Weber",) in member_sets
        assert ("Ms",) not in member_sets

    def test_linkable_flag_set(self):
        tokens = tokenize("Mr Miller arrived.")
        full = noun("Mr Miller", 0, 2)
        inner = noun("Miller", 1, 2)
        groups = build_mention_groups(
            tokens, [full, inner], [], has_candidates=lambda s: s is inner
        )
        group = next(g for g in groups if full in g.spans())
        flags = {
            tuple(m.text for m in c.members): c.all_members_linkable
            for c in group.canopies
        }
        assert flags[("Miller",)] is True
        assert flags[("Mr Miller",)] is False
