"""Batched vs. scalar coherence construction: identical graphs, identical links.

Pins the acceptance criterion of the vectorised hot path: switching
``similarity_mode`` (one ``E @ E.T`` block vs. per-pair cosine calls)
must not change the coherence graph, and end-to-end linking output must
be byte-identical.
"""

import json

import pytest

from repro.core.config import TenetConfig
from repro.core.coherence import build_coherence_graph
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import build_benchmark_suite


@pytest.fixture(scope="module")
def suite():
    return build_benchmark_suite(seed=7, scale=0.1)


@pytest.fixture(scope="module")
def context(suite):
    return LinkingContext.build(suite.world.kb, suite.world.taxonomy)


@pytest.fixture(scope="module")
def documents(suite):
    return [
        document.text
        for dataset in suite.datasets()
        for document in dataset.documents
    ]


def edge_map(graph):
    edges = {}
    for u, v, w in graph.edges():
        ru, rv = repr(u), repr(v)
        edges[(ru, rv) if ru <= rv else (rv, ru)] = w
    return edges


class TestGraphParity:
    def test_same_edges_and_weights(self, context, documents):
        linker = TenetLinker(context)
        for text in documents[:6]:
            extraction = linker.pipeline.extract(text)
            by_mention = linker.generator.generate(extraction).by_mention
            batch = build_coherence_graph(
                by_mention, linker.similarity, similarity_mode="batch"
            )
            scalar = build_coherence_graph(
                by_mention, linker.similarity, similarity_mode="scalar"
            )
            left, right = edge_map(batch.graph), edge_map(scalar.graph)
            assert left.keys() == right.keys()
            for key in left:
                assert left[key] == pytest.approx(right[key], abs=1e-9)

    def test_unknown_mode_rejected(self, context, documents):
        linker = TenetLinker(context)
        extraction = linker.pipeline.extract(documents[0])
        by_mention = linker.generator.generate(extraction).by_mention
        with pytest.raises(ValueError):
            build_coherence_graph(
                by_mention, linker.similarity, similarity_mode="turbo"
            )


class TestEndToEndParity:
    def test_linking_output_byte_identical(self, context, documents):
        batch_linker = TenetLinker(context, TenetConfig())
        scalar_linker = TenetLinker(
            context, TenetConfig(coherence_similarity_mode="scalar")
        )
        for text in documents:
            batched = batch_linker.link(text).to_json(include_timings=False)
            scalar = scalar_linker.link(text).to_json(include_timings=False)
            assert json.dumps(batched, sort_keys=True) == json.dumps(
                scalar, sort_keys=True
            )

    def test_config_validates_mode(self):
        with pytest.raises(ValueError):
            TenetConfig(coherence_similarity_mode="turbo")
