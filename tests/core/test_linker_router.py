"""The cover-mode router: exact / fast / auto semantics."""

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker


@pytest.fixture(scope="module")
def document(suite):
    return suite.kore50.documents[0].text


class TestConfigValidation:
    def test_bad_cover_mode_rejected(self):
        with pytest.raises(ValueError, match="cover_mode"):
            TenetConfig(cover_mode="banana")

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ValueError, match="fast_max_canopies"):
            TenetConfig(fast_max_canopies=-1)
        with pytest.raises(ValueError, match="fast_max_mean_candidates"):
            TenetConfig(fast_max_mean_candidates=-0.5)

    def test_default_is_exact(self):
        assert TenetConfig().cover_mode == "exact"


class TestRouting:
    def test_exact_never_routes_fast(self, suite_context, document):
        linker = TenetLinker(suite_context, TenetConfig(cover_mode="exact"))
        diag = linker.link_detailed(document)
        assert diag.result.cover_mode == "exact"
        assert diag.cover is not None

    def test_fast_always_routes_fast(self, suite_context, document):
        linker = TenetLinker(suite_context, TenetConfig(cover_mode="fast"))
        diag = linker.link_detailed(document)
        assert diag.result.cover_mode == "fast"
        assert diag.cover is None

    def test_auto_with_zero_thresholds_stays_exact(
        self, suite_context, document
    ):
        linker = TenetLinker(
            suite_context,
            TenetConfig(
                cover_mode="auto",
                fast_max_canopies=0,
                fast_max_mean_candidates=0.0,
            ),
        )
        assert linker.link(document).cover_mode == "exact"

    def test_auto_with_huge_thresholds_goes_fast(
        self, suite_context, document
    ):
        linker = TenetLinker(
            suite_context,
            TenetConfig(
                cover_mode="auto",
                fast_max_canopies=10_000,
                fast_max_mean_candidates=1e9,
            ),
        )
        assert linker.link(document).cover_mode == "fast"

    def test_exact_mode_output_unchanged_by_router_wiring(
        self, suite, suite_context
    ):
        # The default (exact) configuration must produce the same answer
        # whether or not the router machinery exists: mode is metadata,
        # not part of the linking answer.
        default = TenetLinker(suite_context, TenetConfig())
        explicit = TenetLinker(suite_context, TenetConfig(cover_mode="exact"))
        for doc in suite.news.documents[:3]:
            left = default.link(doc.text)
            right = explicit.link(doc.text)
            assert left.to_json(include_timings=False) == right.to_json(
                include_timings=False
            )

    def test_cover_mode_in_timed_payload_only(self, suite_context, document):
        linker = TenetLinker(suite_context, TenetConfig(cover_mode="fast"))
        result = linker.link(document)
        assert result.to_json(include_timings=True)["cover_mode"] == "fast"
        assert "cover_mode" not in result.to_json(include_timings=False)

    def test_auto_quality_matches_exact_on_routed_documents(
        self, suite, suite_context
    ):
        # The router's bet, checked end to end: documents that auto
        # routes fast link identically to the exact pipeline on this
        # corpus (the bench parity gate enforces the F1 form of this).
        exact = TenetLinker(suite_context, TenetConfig(cover_mode="exact"))
        auto = TenetLinker(suite_context, TenetConfig(cover_mode="auto"))
        routed_fast = 0
        for dataset in suite.datasets():
            for doc in dataset.documents:
                routed = auto.link(doc.text)
                if routed.cover_mode != "fast":
                    continue
                routed_fast += 1
                full = exact.link(doc.text)
                assert routed.to_json(include_timings=False) == full.to_json(
                    include_timings=False
                ), doc.doc_id
        assert routed_fast > 0  # the router must actually fire at this scale
