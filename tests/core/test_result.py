"""Link / LinkingResult tests."""

from repro.core.result import Link, LinkingResult
from repro.nlp.spans import Span, SpanKind


def _span(text, start, kind=SpanKind.NOUN):
    return Span(text, start, start + len(text.split()), 0, kind)


class TestLink:
    def test_kind_follows_span(self):
        link = Link(_span("Alice", 0), "Q1")
        assert link.kind is SpanKind.NOUN

    def test_surface(self):
        assert Link(_span("Alice", 0), "Q1").surface == "Alice"

    def test_score_excluded_from_equality(self):
        a = Link(_span("Alice", 0), "Q1", score=0.1)
        b = Link(_span("Alice", 0), "Q1", score=0.9)
        assert a == b


class TestLinkingResult:
    def test_links_concatenation(self):
        result = LinkingResult(
            entity_links=[Link(_span("Alice", 0), "Q1")],
            relation_links=[Link(_span("studies", 1, SpanKind.RELATION), "P1")],
        )
        assert len(result.links) == 2

    def test_find_entity_case_insensitive(self):
        result = LinkingResult(entity_links=[Link(_span("Alice", 0), "Q1")])
        assert result.find_entity("alice").concept_id == "Q1"
        assert result.find_entity("bob") is None

    def test_find_relation(self):
        result = LinkingResult(
            relation_links=[Link(_span("studies", 1, SpanKind.RELATION), "P1")]
        )
        assert result.find_relation("STUDIES").concept_id == "P1"

    def test_mention_lists(self):
        result = LinkingResult(entity_links=[Link(_span("Alice", 0), "Q1")])
        assert [s.text for s in result.entity_mentions()] == ["Alice"]
        assert result.relation_mentions() == []

    def test_empty_defaults(self):
        result = LinkingResult()
        assert result.links == []
        assert result.non_linkable == []
