"""Regression tests for the greedy-scan correctness sweep.

Three historical bugs are pinned here:

* same-endpoint duplicate edges kept the *first-pushed* weight instead of
  the minimum, so a heavier tree edge could shadow a lighter shared-pool
  edge and flip the scan order;
* ``deferred.setdefault`` pinned whichever deferrable canopy completed
  first, not the most merged one the deferral was holding out for;
* the overlap sweeps were linear scans over all committed/candidate
  spans (quadratic overall) — now token-interval indexed, with the index
  pinned against the ``spans_overlap`` semantics it replaced.
"""

import random

from repro.core.canopies import Canopy, MentionGroup
from repro.core.coherence import CandidateNode
from repro.core.disambiguation import (
    _ScanState,
    _sorted_cover_edges,
    disambiguate,
    disambiguate_pairwise,
)
from repro.core.tree_cover import TreeCoverResult
from repro.graph.tree import RootedTree
from repro.nlp.spans import Span, SpanKind, spans_overlap


def noun(text, start, end=None, sentence=0):
    return Span(text, start, end or start + 1, sentence, SpanKind.NOUN)


def cand(mention, cid, kind="entity"):
    return CandidateNode(mention, cid, kind)


def singleton_groups(*spans):
    return [
        MentionGroup(i, (s,), (Canopy((s,)),)) for i, s in enumerate(spans)
    ]


def cover_for(*trees_by_mention):
    return TreeCoverResult(dict(trees_by_mention), bound=10.0)


class TestDuplicateEdgeDedup:
    def test_duplicate_keeps_minimum_weight(self):
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, cb = cand(a, "Q1"), cand(b, "Q3")
        tree = RootedTree(a)
        tree.add_edge(a, ca, 0.45)
        tree.add_edge(ca, cb, 0.5)
        edges = _sorted_cover_edges(
            cover_for((a, tree), (b, RootedTree(b))), [(ca, cb, 0.1)]
        )
        dup = [e for e in edges if {e[0], e[1]} == {ca, cb}]
        assert dup == [(ca, cb, 0.1)]

    def test_duplicate_keeps_minimum_weight_pushed_first(self):
        # Symmetric case: the light version arrives first (as a tree
        # edge), the heavy one second (extra edge) — still the minimum.
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, cb = cand(a, "Q1"), cand(b, "Q3")
        tree = RootedTree(a)
        tree.add_edge(a, ca, 0.45)
        tree.add_edge(ca, cb, 0.1)
        edges = _sorted_cover_edges(
            cover_for((a, tree), (b, RootedTree(b))), [(ca, cb, 0.5)]
        )
        dup = [e for e in edges if {e[0], e[1]} == {ca, cb}]
        assert len(dup) == 1
        assert dup[0][2] == 0.1

    def test_scan_order_follows_deduplicated_weight(self):
        # The duplicate's minimum weight decides WHICH candidate wins the
        # mention: with the light (0.1) version of (Q1, Q3) the coherence
        # edge is scanned first and commits Alice->Q1 and Bob->Q3; the
        # old first-pushed behaviour kept 0.5, let Alice's 0.3 prior edge
        # commit Q2 first, and stranded Bob on its weak Q4 prior.
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, ca2 = cand(a, "Q1"), cand(a, "Q2")
        cb, cb2 = cand(b, "Q3"), cand(b, "Q4")
        tree = RootedTree(a)
        tree.add_edge(a, ca, 0.45)
        tree.add_edge(a, ca2, 0.3)
        tree.add_edge(ca, cb, 0.5)  # heavy duplicate of the extra edge
        tree_b = RootedTree(b)
        tree_b.add_edge(b, cb2, 0.6)
        result = disambiguate(
            cover_for((a, tree), (b, tree_b)),
            singleton_groups(a, b),
            extra_edges=[(ca, cb, 0.1)],
        )
        assert result.gamma[a] is ca
        assert result.gamma[b] is cb


class TestDeferredCanopyRace:
    def _race_group(self):
        # Three readings of tokens 0..6: a 3-way split, a 2-way split,
        # and a fully merged span.  The merged reading is (claimed)
        # linkable, so BOTH splits defer when they complete.
        a1, a2, a3 = noun("alpha", 0, 2), noun("beta", 2, 4), noun("gamma", 4, 6)
        b1, b2 = noun("alpha beta", 0, 3), noun("beta gamma", 3, 6)
        merged = noun("alpha beta gamma", 0, 6)
        group = MentionGroup(
            0,
            (a1, a2, a3),
            (
                Canopy((a1, a2, a3), all_members_linkable=True),
                Canopy((b1, b2), all_members_linkable=True),
                Canopy((merged,), all_members_linkable=True),
            ),
        )
        return a1, a2, a3, b1, b2, merged, group

    def test_most_merged_deferrable_wins_adverse_order(self):
        # The 3-way split completes FIRST (weights 0.10-0.12), the 2-way
        # split second (0.20-0.21), the merged reading never (its
        # candidate edge never materialised).  The deferral must commit
        # the 2-way split — the most merged reading that actually
        # completed — not whichever completion happened to arrive first.
        a1, a2, a3, b1, b2, merged, group = self._race_group()
        trees = {}
        for span, weight in (
            (a1, 0.10), (a2, 0.11), (a3, 0.12), (b1, 0.20), (b2, 0.21)
        ):
            tree = RootedTree(span)
            tree.add_edge(span, cand(span, f"Q_{span.token_start}_{span.token_end}"), weight)
            trees[span] = tree
        trees[merged] = RootedTree(merged)
        result = disambiguate(cover_for(*trees.items()), [group])
        assert result.committed_canopies == {0: 1}
        assert set(result.gamma) == {b1, b2}

    def test_single_deferrable_still_commits(self):
        # With only one deferrable completion the fix must not change the
        # outcome: it still commits at the end.
        a1, a2, a3, b1, b2, merged, group = self._race_group()
        trees = {span: RootedTree(span) for span in (a1, a2, a3, b1, b2, merged)}
        trees[b1].add_edge(b1, cand(b1, "Q_b1"), 0.2)
        trees[b2].add_edge(b2, cand(b2, "Q_b2"), 0.3)
        result = disambiguate(cover_for(*trees.items()), [group])
        assert result.committed_canopies == {0: 1}


class TestTokenIndexOverlapParity:
    """The token-interval index must agree with ``spans_overlap``."""

    def _random_spans(self, rng, count):
        spans = []
        for _ in range(count):
            start = rng.randrange(0, 30)
            end = start + rng.randrange(1, 5)
            spans.append(noun(f"s{start}_{end}", start, end))
        return spans

    def test_claimed_by_other_matches_spans_overlap(self):
        rng = random.Random(42)
        for _ in range(50):
            spans = self._random_spans(rng, 8)
            groups = singleton_groups(*dict.fromkeys(spans))
            state = _ScanState(list(dict.fromkeys(spans)), groups)
            # Commit a random subset through the real commit path.
            committed = []
            for group in groups[: len(groups) // 2]:
                span = group.short_mentions[0]
                if any(spans_overlap(span, c) for c, _ in committed):
                    continue
                proposal_cand = cand(span, f"Q{span.token_start}")
                state.commit(
                    group,
                    0,
                    {span: _proposal(span, proposal_cand)},
                )
                committed.append((span, group.group_id))
            for group in groups:
                probe = group.short_mentions[0]
                expected = any(
                    spans_overlap(probe, span)
                    for span, gid in committed
                    if gid != group.group_id
                )
                assert (
                    state.claimed_by_other(probe, group.group_id) == expected
                ), (probe, committed)
                assert state.claimed_at_all(probe) == any(
                    spans_overlap(probe, span) for span, _ in committed
                )


def _proposal(span, candidate):
    from repro.core.disambiguation import _Proposal

    return _Proposal(span, candidate, 0.1, from_coherence=False)


class TestPairwiseScan:
    def _coherence(self):
        from repro.core.coherence import CoherenceGraph
        from repro.graph.weighted_graph import WeightedGraph

        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, ca2 = cand(a, "Q1"), cand(a, "Q2")
        cb, cb2 = cand(b, "Q3"), cand(b, "Q4")
        graph = WeightedGraph()
        graph.add_edge(a, ca, 0.45)
        graph.add_edge(a, ca2, 0.3)
        graph.add_edge(b, cb2, 0.6)
        graph.add_edge(ca, cb, 0.1)
        coherence = CoherenceGraph(
            graph,
            [a, b],
            {a: [ca, ca2], b: [cb, cb2]},
            {ca: 0.55, ca2: 0.7, cb: 0.0, cb2: 0.4},
        )
        return a, b, ca, cb, coherence

    def test_pairwise_commits_from_lightest_edge(self):
        a, b, ca, cb, coherence = self._coherence()
        result = disambiguate_pairwise(coherence, singleton_groups(a, b))
        assert result.gamma[a] is ca
        assert result.gamma[b] is cb
        assert result.provenance[a].from_coherence

    def test_pairwise_respects_prior_threshold(self):
        a, b, ca, cb, coherence = self._coherence()
        coherence.graph.remove_edge(ca, cb)
        result = disambiguate_pairwise(
            coherence, singleton_groups(a, b), prior_link_threshold=0.5
        )
        # Both mentions now commit from bare priors (0.3 and 0.6); only
        # the weak one is demoted by the threshold.
        assert a in result.gamma
        assert b not in result.gamma
        assert result.demoted == 1

    def test_pairwise_skips_tree_cover(self, suite, suite_context):
        from repro.core.linker import TenetLinker
        from repro.core.config import TenetConfig

        linker = TenetLinker(suite_context, TenetConfig(cover_mode="fast"))
        diag = linker.link_detailed(suite.kore50.documents[0].text)
        assert diag.cover is None
        assert diag.cover_edge_count == 0
        assert diag.stage_seconds["tree_cover"] == 0.0
        assert diag.result.cover_mode == "fast"
