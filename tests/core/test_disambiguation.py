"""Greedy disambiguation tests (Algorithm 5 pruning strategies)."""


from repro.core.canopies import Canopy, MentionGroup
from repro.core.coherence import CandidateNode
from repro.core.disambiguation import disambiguate
from repro.core.tree_cover import TreeCoverResult
from repro.graph.tree import RootedTree
from repro.nlp.spans import Span, SpanKind


def noun(text, start, end=None, sentence=0):
    return Span(text, start, end or start + 1, sentence, SpanKind.NOUN)


def cand(mention, cid, kind="entity"):
    return CandidateNode(mention, cid, kind)


def singleton_groups(*spans):
    return [
        MentionGroup(i, (s,), (Canopy((s,)),)) for i, s in enumerate(spans)
    ]


def cover_for(*trees_by_mention):
    return TreeCoverResult(dict(trees_by_mention), bound=10.0)


class TestBasicCommit:
    def test_prior_edge_links_mention(self):
        m = noun("Alice", 0)
        c = cand(m, "Q1")
        tree = RootedTree(m)
        tree.add_edge(m, c, 0.3)
        result = disambiguate(cover_for((m, tree)), singleton_groups(m))
        assert result.gamma[m] is c

    def test_smallest_edge_wins(self):
        m = noun("Alice", 0)
        c1, c2 = cand(m, "Q1"), cand(m, "Q2")
        tree = RootedTree(m)
        tree.add_edge(m, c1, 0.6)
        tree.add_edge(m, c2, 0.2)
        result = disambiguate(cover_for((m, tree)), singleton_groups(m))
        assert result.gamma[m] is c2

    def test_strategy1_one_concept_per_mention(self):
        m = noun("Alice", 0)
        c1, c2 = cand(m, "Q1"), cand(m, "Q2")
        tree = RootedTree(m)
        tree.add_edge(m, c1, 0.2)
        tree.add_edge(m, c2, 0.3)
        result = disambiguate(cover_for((m, tree)), singleton_groups(m))
        assert len(result.gamma) == 1

    def test_coherence_edge_links_both_sides(self):
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, cb = cand(a, "Q1"), cand(b, "Q2")
        tree = RootedTree(a)
        tree.add_edge(a, ca, 0.9)
        tree.add_edge(ca, cb, 0.1)
        trees = cover_for((a, tree), (b, RootedTree(b)))
        result = disambiguate(trees, singleton_groups(a, b))
        assert result.gamma[a] is ca
        assert result.gamma[b] is cb

    def test_selected_concept_propagates(self):
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, cb = cand(a, "Q1"), cand(b, "Q2")
        tree = RootedTree(a)
        tree.add_edge(a, ca, 0.05)   # commits Alice first
        tree.add_edge(ca, cb, 0.5)   # then drags Bob in
        result = disambiguate(
            cover_for((a, tree), (b, RootedTree(b))), singleton_groups(a, b)
        )
        assert result.gamma[b] is cb

    def test_strategy2_loser_candidate_cannot_vote(self):
        # Alice links to Q1 first; the edge (Alice->Q2, Bob->Q3) must be
        # discarded because Q2 lost.
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca1, ca2 = cand(a, "Q1"), cand(a, "Q2")
        cb3, cb4 = cand(b, "Q3"), cand(b, "Q4")
        tree = RootedTree(a)
        tree.add_edge(a, ca1, 0.1)
        tree.add_edge(a, ca2, 0.5)
        tree.add_edge(ca2, cb3, 0.2)  # processed before Alice's 0.5 edge? no: 0.2 < ... careful
        tree_b = RootedTree(b)
        tree_b.add_edge(b, cb4, 0.9)
        result = disambiguate(
            cover_for((a, tree), (b, tree_b)), singleton_groups(a, b)
        )
        # 0.1 commits Alice->Q1; 0.2 edge (Q2,Q3): both-unlinked branch no
        # longer applies to Alice (linked), Q2 not selected => no vote for
        # Bob; Bob falls back to its prior edge 0.9 -> Q4.
        assert result.gamma[a] is ca1
        assert result.gamma[b] is cb4


class TestCanopyExclusivity:
    def _group_with_merge(self):
        s1 = noun("The Storm", 0, 2)
        s2 = noun("Galilee", 3, 4)
        merged = noun("The Storm of Galilee", 0, 4)
        group = MentionGroup(
            0,
            (s1, s2),
            (
                Canopy((s1, s2), all_members_linkable=True),
                Canopy((merged,), all_members_linkable=True),
            ),
        )
        return s1, s2, merged, group

    def test_merged_canopy_commits_first(self):
        s1, s2, merged, group = self._group_with_merge()
        cm = cand(merged, "Q9")
        c1, c2 = cand(s1, "Q1"), cand(s2, "Q2")
        t = RootedTree(merged)
        t.add_edge(merged, cm, 0.3)
        t1 = RootedTree(s1); t1.add_edge(s1, c1, 0.4)
        t2 = RootedTree(s2); t2.add_edge(s2, c2, 0.5)
        result = disambiguate(
            cover_for((merged, t), (s1, t1), (s2, t2)), [group]
        )
        assert result.gamma == {merged: cm}

    def test_split_reading_deferred_until_merge_fails(self):
        # the merged span has no candidates -> split commits at the end
        s1, s2, merged, _ = self._group_with_merge()
        group = MentionGroup(
            0,
            (s1, s2),
            (
                Canopy((s1, s2), all_members_linkable=True),
                Canopy((merged,), all_members_linkable=False),
            ),
        )
        c1, c2 = cand(s1, "Q1"), cand(s2, "Q2")
        t1 = RootedTree(s1); t1.add_edge(s1, c1, 0.2)
        t2 = RootedTree(s2); t2.add_edge(s2, c2, 0.3)
        result = disambiguate(
            cover_for((merged, RootedTree(merged)), (s1, t1), (s2, t2)),
            [group],
        )
        assert result.gamma[s1] is c1
        assert result.gamma[s2] is c2

    def test_split_deferred_when_merge_linkable_but_slow(self):
        # merged reading completes later but still wins over the split
        # reading that completed earlier.
        s1, s2, merged, group = self._group_with_merge()
        cm = cand(merged, "Q9")
        c1, c2 = cand(s1, "Q1"), cand(s2, "Q2")
        t = RootedTree(merged); t.add_edge(merged, cm, 0.9)
        t1 = RootedTree(s1); t1.add_edge(s1, c1, 0.1)
        t2 = RootedTree(s2); t2.add_edge(s2, c2, 0.2)
        result = disambiguate(
            cover_for((merged, t), (s1, t1), (s2, t2)), [group]
        )
        assert result.gamma == {merged: cm}


class TestOverlapPruning:
    def test_cross_group_overlap_blocked(self):
        full = noun("Nina Wilson", 0, 2)
        part = noun("Wilson", 1, 2)
        cf, cp = cand(full, "Q1"), cand(part, "Q2")
        tf = RootedTree(full); tf.add_edge(full, cf, 0.1)
        tp = RootedTree(part); tp.add_edge(part, cp, 0.5)
        result = disambiguate(
            cover_for((full, tf), (part, tp)), singleton_groups(full, part)
        )
        assert full in result.gamma
        assert part not in result.gamma

    def test_groupless_mentions_dead_on_arrival(self):
        full = noun("Nina Wilson", 0, 2)
        part = noun("Wilson", 1, 2)
        cf, cp = cand(full, "Q1"), cand(part, "Q2")
        other = noun("Brooklyn", 5)
        co = cand(other, "Q3")
        tf = RootedTree(full); tf.add_edge(full, cf, 0.6)
        tp = RootedTree(part)
        tp.add_edge(part, cp, 0.7)
        tp.add_edge(cp, co, 0.05)  # dead mention's candidate must not vote
        to = RootedTree(other); to.add_edge(other, co, 0.5)
        groups = singleton_groups(full, other)  # part has NO group
        result = disambiguate(
            cover_for((full, tf), (part, tp), (other, to)), groups
        )
        assert part not in result.gamma
        assert result.gamma[other] is co


class TestThreshold:
    def test_weak_coherence_free_prior_dropped(self):
        m = noun("Maybe", 0)
        c = cand(m, "Q1")
        tree = RootedTree(m)
        tree.add_edge(m, c, 0.9)
        result = disambiguate(
            cover_for((m, tree)), singleton_groups(m), prior_link_threshold=0.8
        )
        assert m not in result.gamma
        assert result.demoted == 1

    def test_strong_prior_kept(self):
        m = noun("Sure", 0)
        c = cand(m, "Q1")
        tree = RootedTree(m)
        tree.add_edge(m, c, 0.3)
        result = disambiguate(
            cover_for((m, tree)), singleton_groups(m), prior_link_threshold=0.8
        )
        assert result.gamma[m] is c

    def test_coherence_backed_link_immune(self):
        a, b = noun("Alice", 0), noun("Bob", 5)
        ca, cb = cand(a, "Q1"), cand(b, "Q2")
        tree = RootedTree(a)
        tree.add_edge(a, ca, 0.95)
        tree.add_edge(ca, cb, 0.9)  # coherence proposal, heavy but coherent
        result = disambiguate(
            cover_for((a, tree), (b, RootedTree(b))),
            singleton_groups(a, b),
            prior_link_threshold=0.8,
        )
        assert a in result.gamma  # proposed from coherence -> kept


class TestNonLinkable:
    def test_uncommitted_group_reported(self):
        m = noun("Glowberry", 0)
        result = disambiguate(
            cover_for((m, RootedTree(m))), singleton_groups(m)
        )
        assert m in result.non_linkable

    def test_committed_group_not_reported(self):
        m = noun("Alice", 0)
        c = cand(m, "Q1")
        tree = RootedTree(m)
        tree.add_edge(m, c, 0.2)
        result = disambiguate(cover_for((m, tree)), singleton_groups(m))
        assert result.non_linkable == []


class TestAsymmetricPredicateEdges:
    def test_predicate_cannot_vote_for_entity(self):
        m = noun("Alice", 0)
        r = Span("studies", 1, 2, 0, SpanKind.RELATION)
        ce_wrong = cand(m, "Q_wrong")
        ce_right = cand(m, "Q_right")
        cp = cand(r, "P1", kind="predicate")
        tree = RootedTree(m)
        tree.add_edge(m, ce_right, 0.5)
        tree.add_edge(m, ce_wrong, 0.6)
        tree.add_edge(ce_wrong, cp, 0.1)  # hub edge: may link r, not m
        tr = RootedTree(r)
        result = disambiguate(
            cover_for((m, tree), (r, tr)), singleton_groups(m, r)
        )
        assert result.gamma[m] is ce_right
        assert result.gamma[r] is cp

    def test_entity_votes_for_predicate(self):
        m = noun("Alice", 0)
        r = Span("studies", 1, 2, 0, SpanKind.RELATION)
        ce = cand(m, "Q1")
        cp1 = cand(r, "P1", kind="predicate")
        cp2 = cand(r, "P2", kind="predicate")
        tree = RootedTree(m)
        tree.add_edge(m, ce, 0.2)
        tree.add_edge(ce, cp1, 0.3)
        tr = RootedTree(r)
        tr.add_edge(r, cp2, 0.4)
        result = disambiguate(
            cover_for((m, tree), (r, tr)), singleton_groups(m, r)
        )
        assert result.gamma[r] is cp1
