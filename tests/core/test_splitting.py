"""Tree splitting tests: the paper's Algorithm 2-3 guarantees.

Invariants (Sec. 4.2): for bound B and every edge weight <= B,
``split_tree`` yields a leftover containing the root with weight <= B and
subtrees with weight in (B, 2B].
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.splitting import split_tree
from repro.graph.tree import RootedTree


def chain(weights, root="r"):
    tree = RootedTree(root)
    parent = root
    for i, w in enumerate(weights):
        child = f"n{i}"
        tree.add_edge(parent, child, w)
        parent = child
    return tree


class TestBasics:
    def test_light_tree_untouched(self):
        tree = chain([0.3, 0.3])
        leftover, subtrees = split_tree(tree, 1.0)
        assert subtrees == []
        assert leftover.weight() == pytest.approx(0.6)
        assert leftover.root == "r"

    def test_singleton_tree(self):
        leftover, subtrees = split_tree(RootedTree("m"), 1.0)
        assert leftover.is_singleton()
        assert subtrees == []

    def test_chain_split(self):
        tree = chain([1.0, 1.0, 1.0, 1.0])  # weight 4, bound 1
        leftover, subtrees = split_tree(tree, 1.0)
        assert leftover.weight() <= 1.0
        for subtree in subtrees:
            assert 1.0 < subtree.weight() <= 2.0

    def test_star_split_bundles_siblings(self):
        tree = RootedTree("r")
        for i in range(6):
            tree.add_edge("r", f"c{i}", 0.5)  # total 3.0, bound 1
        leftover, subtrees = split_tree(tree, 1.0)
        assert leftover.weight() <= 1.0
        assert subtrees
        for subtree in subtrees:
            assert 1.0 < subtree.weight() <= 2.0
            assert subtree.root == "r"  # shared connector node

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            split_tree(chain([0.1]), 0.0)

    def test_heavy_edge_rejected(self):
        with pytest.raises(ValueError):
            split_tree(chain([2.0]), 1.0)

    def test_original_tree_not_mutated(self):
        tree = chain([1.0, 1.0, 1.0])
        before = tree.weight()
        split_tree(tree, 1.0)
        assert tree.weight() == pytest.approx(before)

    def test_root_always_in_leftover(self):
        tree = chain([1.0] * 7)
        leftover, _ = split_tree(tree, 1.0)
        assert leftover.root == "r"
        assert "r" in leftover


def _random_tree(rng, n_nodes, max_edge):
    tree = RootedTree("root")
    nodes = ["root"]
    for i in range(n_nodes):
        parent = rng.choice(nodes)
        child = f"n{i}"
        tree.add_edge(parent, child, rng.uniform(0.01, max_edge))
        nodes.append(child)
    return tree


class TestNodeCoverage:
    def test_every_node_in_leftover_or_subtree(self):
        rng = random.Random(3)
        tree = _random_tree(rng, 25, 1.0)
        leftover, subtrees = split_tree(tree, 1.0)
        covered = leftover.node_set()
        for subtree in subtrees:
            covered |= subtree.node_set()
        assert covered == tree.node_set()

    def test_every_edge_in_exactly_one_piece(self):
        rng = random.Random(4)
        tree = _random_tree(rng, 25, 1.0)
        leftover, subtrees = split_tree(tree, 1.0)
        pieces = [leftover] + subtrees
        total_edges = sum(p.edge_count for p in pieces)
        assert total_edges == tree.edge_count
        total_weight = sum(p.weight() for p in pieces)
        assert total_weight == pytest.approx(tree.weight())


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 30), st.floats(0.2, 2.0), st.integers(0, 10_000))
    def test_weight_bounds_invariant(self, n_nodes, bound, seed):
        """The paper's guarantees hold for random trees: w(L) <= B and
        w(S) in (B, 2B] for every subtree."""
        rng = random.Random(seed)
        tree = _random_tree(rng, n_nodes, bound)
        leftover, subtrees = split_tree(tree, bound)
        assert leftover.weight() <= bound + 1e-9
        for subtree in subtrees:
            assert bound - 1e-9 < subtree.weight() <= 2 * bound + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 25), st.integers(0, 10_000))
    def test_weight_conservation(self, n_nodes, seed):
        rng = random.Random(seed)
        tree = _random_tree(rng, n_nodes, 1.0)
        leftover, subtrees = split_tree(tree, 1.0)
        total = leftover.weight() + sum(s.weight() for s in subtrees)
        assert total == pytest.approx(tree.weight())

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 25), st.floats(0.2, 2.0), st.integers(0, 10_000))
    def test_edge_multiset_preserved(self, n_nodes, bound, seed):
        """Splitting moves edges between pieces but never invents, drops,
        or reweights one: the (parent, child, weight) multiset of all
        pieces equals the input tree's exactly."""
        rng = random.Random(seed)
        tree = _random_tree(rng, n_nodes, bound)
        leftover, subtrees = split_tree(tree, bound)
        original = sorted(
            (e.parent, e.child, e.weight) for e in tree.edges()
        )
        pieces = sorted(
            (e.parent, e.child, e.weight)
            for piece in [leftover] + subtrees
            for e in piece.edges()
        )
        assert pieces == original
