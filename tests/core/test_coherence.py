"""Knowledge coherence graph construction tests (Sec. 3 rules)."""

import numpy as np
import pytest

from repro.core.coherence import build_coherence_graph
from repro.embeddings.similarity import SimilarityIndex
from repro.embeddings.store import EmbeddingStore
from repro.kb.alias_index import CandidateHit
from repro.nlp.spans import Span, SpanKind


@pytest.fixture
def similarity():
    store = EmbeddingStore(4)
    store.add("Q1", np.array([1.0, 0.0, 0.0, 0.0]))
    store.add("Q2", np.array([0.9, 0.1, 0.0, 0.0]))
    store.add("Q3", np.array([0.0, 0.0, 1.0, 0.0]))
    store.add("P1", np.array([0.5, 0.5, 0.0, 0.0]))
    store.add("P2", np.array([0.0, 0.0, 0.0, 1.0]))
    return SimilarityIndex(store)


def noun(text, start, sentence=0):
    return Span(text, start, start + len(text.split()), sentence, SpanKind.NOUN)


def relation(text, start, sentence=0):
    return Span(text, start, start + len(text.split()), sentence, SpanKind.RELATION)


def hit(cid, prior, kind="entity"):
    return CandidateHit(cid, prior, kind)


class TestNodes:
    def test_mention_and_candidate_nodes(self, similarity):
        m = noun("Alice", 0)
        graph = build_coherence_graph({m: [hit("Q1", 0.7), hit("Q2", 0.3)]}, similarity)
        assert graph.mention_count == 1
        assert graph.concept_node_count == 2
        assert m in graph.graph

    def test_candidate_node_keyed_by_mention(self, similarity):
        a, b = noun("Alice", 0), noun("Ally", 5)
        graph = build_coherence_graph(
            {a: [hit("Q1", 1.0)], b: [hit("Q1", 1.0)]}, similarity
        )
        nodes = graph.candidate_nodes()
        assert len(nodes) == 2  # same concept, two distinct nodes
        assert {n.mention for n in nodes} == {a, b}

    def test_empty_candidate_mention_is_isolated(self, similarity):
        m = noun("Glowberry", 0)
        graph = build_coherence_graph({m: []}, similarity)
        assert graph.graph.degree(m) == 0


class TestLocalEdges:
    def test_prior_maps_through_floor_and_curve(self, similarity):
        m = noun("Alice", 0)
        graph = build_coherence_graph(
            {m: [hit("Q1", 0.75)]}, similarity,
            prior_distance_floor=0.6, prior_distance_curve=0.5,
        )
        node = graph.candidate_nodes()[0]
        expected = 0.6 + 0.4 * (0.25 ** 0.5)
        assert graph.graph.weight(m, node) == pytest.approx(expected)

    def test_certain_prior_sits_at_floor(self, similarity):
        m = noun("Alice", 0)
        graph = build_coherence_graph(
            {m: [hit("Q1", 1.0)]}, similarity, prior_distance_floor=0.62
        )
        node = graph.candidate_nodes()[0]
        assert graph.graph.weight(m, node) == pytest.approx(0.62)

    def test_local_distance_accessor(self, similarity):
        m = noun("Alice", 0)
        graph = build_coherence_graph({m: [hit("Q1", 0.8)]}, similarity)
        node = graph.candidate_nodes()[0]
        assert graph.local_distance(node) == pytest.approx(0.2)


class TestEdgeRules:
    def test_entity_entity_cross_sentence_allowed(self, similarity):
        a, b = noun("Alice", 0, sentence=0), noun("Bob", 10, sentence=3)
        graph = build_coherence_graph(
            {a: [hit("Q1", 1.0)], b: [hit("Q2", 1.0)]}, similarity
        )
        na, nb = graph.candidates_by_mention[a][0], graph.candidates_by_mention[b][0]
        assert graph.graph.has_edge(na, nb)

    def test_predicate_pairs_require_same_sentence(self, similarity):
        r1 = relation("studies", 1, sentence=0)
        r2 = relation("visited", 8, sentence=1)
        graph = build_coherence_graph(
            {
                r1: [hit("P1", 1.0, "predicate")],
                r2: [hit("P2", 1.0, "predicate")],
            },
            similarity,
        )
        n1 = graph.candidates_by_mention[r1][0]
        n2 = graph.candidates_by_mention[r2][0]
        assert not graph.graph.has_edge(n1, n2)

    def test_entity_predicate_requires_same_sentence(self, similarity):
        m = noun("Alice", 0, sentence=0)
        r_far = relation("visited", 9, sentence=1)
        r_near = relation("studies", 1, sentence=0)
        graph = build_coherence_graph(
            {
                m: [hit("Q1", 1.0)],
                r_far: [hit("P2", 1.0, "predicate")],
                r_near: [hit("P1", 1.0, "predicate")],
            },
            similarity,
        )
        nm = graph.candidates_by_mention[m][0]
        far = graph.candidates_by_mention[r_far][0]
        near = graph.candidates_by_mention[r_near][0]
        assert not graph.graph.has_edge(nm, far)
        assert graph.graph.has_edge(nm, near)

    def test_no_edges_between_same_mention_candidates(self, similarity):
        m = noun("Alice", 0)
        graph = build_coherence_graph(
            {m: [hit("Q1", 0.7), hit("Q2", 0.3)]}, similarity
        )
        n1, n2 = graph.candidates_by_mention[m]
        assert not graph.graph.has_edge(n1, n2)

    def test_no_edges_between_overlapping_mentions(self, similarity):
        full = noun("Nina Wilson", 0)
        part = Span("Wilson", 1, 2, 0, SpanKind.NOUN)
        graph = build_coherence_graph(
            {full: [hit("Q1", 1.0)], part: [hit("Q2", 1.0)]}, similarity
        )
        nf = graph.candidates_by_mention[full][0]
        np_ = graph.candidates_by_mention[part][0]
        assert not graph.graph.has_edge(nf, np_)


class TestWeights:
    def test_concept_distance_from_embeddings(self, similarity):
        a, b = noun("Alice", 0), noun("Ally", 5)
        graph = build_coherence_graph(
            {a: [hit("Q1", 1.0)], b: [hit("Q2", 1.0)]},
            similarity,
            coherence_prior_blend=0.0,
        )
        na = graph.candidates_by_mention[a][0]
        nb = graph.candidates_by_mention[b][0]
        expected = 1.0 - similarity.similarity("Q1", "Q2")
        assert graph.graph.weight(na, nb) == pytest.approx(expected, abs=1e-6)

    def test_predicate_similarity_scaled(self, similarity):
        m = noun("Alice", 0, sentence=0)
        r = relation("studies", 1, sentence=0)
        graph = build_coherence_graph(
            {m: [hit("Q1", 1.0)], r: [hit("P1", 1.0, "predicate")]},
            similarity,
            predicate_similarity_scale=0.5,
            coherence_prior_blend=0.0,
        )
        nm = graph.candidates_by_mention[m][0]
        nr = graph.candidates_by_mention[r][0]
        expected = 1.0 - 0.5 * similarity.similarity("Q1", "P1")
        assert graph.graph.weight(nm, nr) == pytest.approx(expected, abs=1e-6)

    def test_prior_blend_penalises_weak_priors(self, similarity):
        a, b = noun("Alice", 0), noun("Ally", 5)
        strong = build_coherence_graph(
            {a: [hit("Q1", 1.0)], b: [hit("Q2", 1.0)]},
            similarity, coherence_prior_blend=0.1,
        )
        weak = build_coherence_graph(
            {a: [hit("Q1", 0.5)], b: [hit("Q2", 0.5)]},
            similarity, coherence_prior_blend=0.1,
        )
        def concept_edge(g):
            na = g.candidates_by_mention[a][0]
            nb = g.candidates_by_mention[b][0]
            return g.graph.weight(na, nb)
        assert concept_edge(weak) > concept_edge(strong)

    def test_distance_clipped_to_max(self, similarity):
        a, b = noun("Alice", 0), noun("Bob", 5)
        graph = build_coherence_graph(
            {a: [hit("Q1", 0.1)], b: [hit("Q3", 0.1)]},
            similarity, max_concept_distance=1.0,
        )
        na = graph.candidates_by_mention[a][0]
        nb = graph.candidates_by_mention[b][0]
        assert graph.graph.weight(na, nb) <= 1.0
