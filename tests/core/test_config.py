"""TenetConfig validation tests."""

import pytest

from repro.core.config import TenetConfig


class TestValidation:
    def test_defaults_valid(self):
        TenetConfig()

    def test_max_candidates_positive(self):
        with pytest.raises(ValueError):
            TenetConfig(max_candidates=0)

    def test_tree_weight_bound_positive(self):
        with pytest.raises(ValueError):
            TenetConfig(tree_weight_bound=0.0)

    def test_tree_weight_bound_none_allowed(self):
        assert TenetConfig(tree_weight_bound=None).tree_weight_bound is None

    def test_min_prior_range(self):
        with pytest.raises(ValueError):
            TenetConfig(min_prior=1.5)

    def test_frozen(self):
        config = TenetConfig()
        with pytest.raises(AttributeError):
            config.max_candidates = 7

    def test_paper_default_candidates(self):
        # Fig. 6(d): 3-4 candidates per mention is the paper's sweet spot
        assert TenetConfig().max_candidates == 4
