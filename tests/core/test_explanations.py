"""Link-provenance (explanation) tests."""


from repro.core.disambiguation import LinkExplanation


class TestExplain:
    def test_every_link_has_an_explanation(self, tenet, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result, explanations = tenet.explain(
            f"{person.label} studies databases. He visited Brooklyn."
        )
        for link in result.links:
            explanation = explanations.get(link.span)
            assert explanation is not None
            assert explanation.edge_weight > 0.0

    def test_coherence_decision_names_partner(self, tenet, world):
        kb = world.kb
        person_id = world.entities_of_type("computer_science", "person")[0]
        person = kb.get_entity(person_id)
        topic_id = next(
            t.obj for t in kb.triples()
            if t.subject == person_id and t.predicate == world.predicate("field")
        )
        topic = kb.get_entity(topic_id)
        result, explanations = tenet.explain(
            f"{person.label} studies {topic.label}."
        )
        link = result.find_relation("studies")
        assert link is not None
        explanation = explanations[link.span]
        # "studies" is ambiguous; it must have been decided by coherence
        # with the topic entity, not by its prior.
        assert explanation.from_coherence
        assert explanation.partner_concept == topic.entity_id

    def test_isolated_decision_is_prior_based(self, tenet):
        result, explanations = tenet.explain("Brooklyn grew quickly.")
        link = result.find_entity("Brooklyn")
        assert link is not None
        explanation = explanations[link.span]
        assert not explanation.from_coherence
        assert explanation.partner_concept is None

    def test_describe_strings(self):
        coherent = LinkExplanation(0.42, True, "Q7")
        prior = LinkExplanation(0.62, False)
        assert "coherence" in coherent.describe()
        assert "Q7" in coherent.describe()
        assert "prior" in prior.describe()
