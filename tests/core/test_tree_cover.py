"""Tree cover derivation tests (Algorithm 1, including the 4B bound)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coherence import build_coherence_graph
from repro.core.tree_cover import (
    BoundTooSmallError,
    derive_tree_cover,
    minimal_feasible_bound,
)
from repro.embeddings.similarity import SimilarityIndex
from repro.embeddings.store import EmbeddingStore
from repro.kb.alias_index import CandidateHit
from repro.nlp.spans import Span, SpanKind


def _world_similarity(seed, n_concepts=12, dim=16):
    rng = np.random.default_rng(seed)
    store = EmbeddingStore(dim)
    for i in range(n_concepts):
        store.add(f"Q{i}", rng.standard_normal(dim))
    return SimilarityIndex(store)


def _mentions(n, candidates_per_mention, similarity_seed=0):
    rng = np.random.default_rng(similarity_seed + 1)
    mention_candidates = {}
    cid = 0
    for i in range(n):
        span = Span(f"m{i}", i * 3, i * 3 + 1, 0, SpanKind.NOUN)
        hits = []
        priors = rng.dirichlet(np.ones(candidates_per_mention))
        for j in range(candidates_per_mention):
            hits.append(CandidateHit(f"Q{cid % 12}", float(priors[j]), "entity"))
            cid += 1
        mention_candidates[span] = hits
    return mention_candidates


def build(n_mentions=4, k=2, seed=0):
    similarity = _world_similarity(seed)
    return build_coherence_graph(_mentions(n_mentions, k, seed), similarity)


class TestSuccess:
    def test_default_bound_is_mention_count(self):
        coherence = build()
        cover = derive_tree_cover(coherence)
        assert cover.bound == float(len(coherence.mentions))

    def test_one_tree_per_mention(self):
        coherence = build(n_mentions=5)
        cover = derive_tree_cover(coherence)
        assert set(cover.trees) == set(coherence.mentions)

    def test_every_tree_rooted_at_its_mention(self):
        coherence = build()
        cover = derive_tree_cover(coherence)
        for mention, tree in cover.trees.items():
            assert tree.root == mention

    def test_all_candidates_covered(self):
        coherence = build(n_mentions=4, k=3)
        cover = derive_tree_cover(coherence)
        covered = set()
        for tree in cover.trees.values():
            covered |= tree.node_set()
        for node in coherence.candidate_nodes():
            assert node in covered

    def test_candidate_less_mention_gets_singleton(self):
        similarity = _world_similarity(0)
        mentions = _mentions(2, 2)
        orphan = Span("orphan", 99, 100, 0, SpanKind.NOUN)
        mentions[orphan] = []
        coherence = build_coherence_graph(mentions, similarity)
        cover = derive_tree_cover(coherence)
        assert cover.trees[orphan].is_singleton()
        assert orphan in cover.isolated_mentions()

    def test_cost_reported(self):
        coherence = build()
        cover = derive_tree_cover(coherence)
        assert cover.cost() >= 0.0
        assert cover.total_edges >= coherence.concept_node_count


class TestFailure:
    def test_tiny_bound_fails(self):
        coherence = build()
        with pytest.raises(BoundTooSmallError):
            derive_tree_cover(coherence, bound=1e-6)

    def test_non_positive_bound_rejected(self):
        coherence = build()
        with pytest.raises(ValueError):
            derive_tree_cover(coherence, bound=-1.0)


class TestApproximationBound:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 3), st.integers(0, 1000))
    def test_cover_cost_at_most_4b(self, n_mentions, k, seed):
        """Lemma 4.2: a successful cover costs at most 4B."""
        coherence = build(n_mentions, k, seed)
        for bound in (0.7, 1.0, 2.0):
            try:
                cover = derive_tree_cover(coherence, bound=bound)
            except BoundTooSmallError:
                continue
            assert cover.cost() <= 4 * bound + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 500))
    def test_minimal_bound_is_feasible_and_tightish(self, n_mentions, seed):
        coherence = build(n_mentions, 2, seed)
        b_star = minimal_feasible_bound(coherence, tolerance=0.01)
        cover = derive_tree_cover(coherence, bound=b_star)
        assert cover.cost() <= 4 * b_star + 1e-9
        # slightly below the found bound must fail or be nearly equal
        if b_star > 0.05:
            try:
                derive_tree_cover(coherence, bound=b_star - 0.05)
                smaller_ok = True
            except BoundTooSmallError:
                smaller_ok = False
            # the binary search may stop within tolerance, so allow both,
            # but b_star itself must always succeed (asserted above).
            assert smaller_ok in (True, False)


class TestDeterminism:
    def test_same_input_same_cover(self):
        coherence = build(n_mentions=5, k=3, seed=9)
        a = derive_tree_cover(coherence)
        b = derive_tree_cover(coherence)
        for mention in a.trees:
            assert sorted(map(repr, a.trees[mention].edges())) == sorted(
                map(repr, b.trees[mention].edges())
            )


class TestStatistics:
    def test_statistics_fields(self):
        coherence = build(n_mentions=4, k=2, seed=3)
        cover = derive_tree_cover(coherence)
        stats = cover.statistics()
        assert stats.tree_count == 4
        assert 0 <= stats.singleton_count <= stats.tree_count
        assert stats.total_edges == cover.total_edges
        assert stats.max_tree_weight == pytest.approx(cover.cost())
        assert 0.0 <= stats.isolation_rate <= 1.0
        assert stats.bound == cover.bound

    def test_isolation_rate_for_candidate_less_world(self):
        similarity = _world_similarity(1)
        from repro.nlp.spans import Span, SpanKind

        mentions = {
            Span(f"lonely{i}", i * 2, i * 2 + 1, 0, SpanKind.NOUN): []
            for i in range(3)
        }
        coherence = build_coherence_graph(mentions, similarity)
        cover = derive_tree_cover(coherence)
        assert cover.statistics().isolation_rate == 1.0
