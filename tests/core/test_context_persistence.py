"""LinkingContext save/load tests."""


from repro.core.linker import LinkingContext, TenetLinker


class TestPersistence:
    def test_round_trip(self, context, world, tmp_path):
        context.save(tmp_path / "ctx")
        loaded = LinkingContext.load(tmp_path / "ctx")
        assert loaded.kb.entity_count == world.kb.entity_count
        assert len(loaded.embeddings) == len(context.embeddings)

    def test_loaded_context_links_identically(self, context, world, tmp_path):
        context.save(tmp_path / "ctx")
        loaded = LinkingContext.load(tmp_path / "ctx")
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        text = f"{person.label} studies databases. He visited Brooklyn."
        original = TenetLinker(context).link(text)
        reloaded = TenetLinker(loaded).link(text)
        assert {(l.surface, l.concept_id) for l in original.links} == {
            (l.surface, l.concept_id) for l in reloaded.links
        }

    def test_embeddings_identical(self, context, tmp_path):
        import numpy as np

        context.save(tmp_path / "ctx")
        loaded = LinkingContext.load(tmp_path / "ctx")
        for cid in list(context.embeddings.ids())[:10]:
            assert np.allclose(
                context.embeddings.vector(cid), loaded.embeddings.vector(cid)
            )
