"""Scaffold vs. reference Algorithm 1: identical covers, shared probes.

The scaffolded :func:`derive_tree_cover` (flat integer-id edge arrays,
masked Kruskal over one precomputed order) must reproduce the retained
object-graph :func:`derive_tree_cover_reference` exactly — same trees,
same edge sequences, same failures — both on randomized coherence
graphs and on real pipeline graphs from the benchmark suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coherence import build_coherence_graph
from repro.core.linker import LinkingContext, TenetLinker
from repro.core.tree_cover import (
    BoundTooSmallError,
    derive_tree_cover,
    derive_tree_cover_reference,
    minimal_feasible_bound,
)
from repro.datasets.benchmarks import build_benchmark_suite
from repro.embeddings.similarity import SimilarityIndex
from repro.embeddings.store import EmbeddingStore
from repro.kb.alias_index import CandidateHit
from repro.nlp.spans import Span, SpanKind


def _world_similarity(seed, n_concepts=12, dim=16):
    rng = np.random.default_rng(seed)
    store = EmbeddingStore(dim)
    for i in range(n_concepts):
        store.add(f"Q{i}", rng.standard_normal(dim))
    return SimilarityIndex(store)


def build(n_mentions=4, k=2, seed=0):
    rng = np.random.default_rng(seed + 1)
    mention_candidates = {}
    cid = 0
    for i in range(n_mentions):
        span = Span(f"m{i}", i * 3, i * 3 + 1, 0, SpanKind.NOUN)
        priors = rng.dirichlet(np.ones(k))
        hits = [
            CandidateHit(f"Q{(cid + j) % 12}", float(priors[j]), "entity")
            for j in range(k)
        ]
        cid += k
        mention_candidates[span] = hits
    return build_coherence_graph(mention_candidates, _world_similarity(seed))


def cover_signature(cover):
    """Everything observable about a cover, in a comparable form."""
    return {
        "bound": cover.bound,
        "subtree_count": cover.subtree_count,
        "trees": {
            repr(mention): sorted(
                (repr(e.parent), repr(e.child), e.weight)
                for e in tree.edges()
            )
            for mention, tree in cover.trees.items()
        },
    }


def assert_same_cover(coherence, bound=None):
    fast = derive_tree_cover(coherence, bound=bound)
    reference = derive_tree_cover_reference(coherence, bound=bound)
    assert cover_signature(fast) == cover_signature(reference)


class TestRandomGraphParity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 3), st.integers(0, 1000))
    def test_default_bound_identical(self, n_mentions, k, seed):
        assert_same_cover(build(n_mentions, k, seed))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 3), st.integers(0, 1000))
    def test_tight_bounds_identical_including_failures(
        self, n_mentions, k, seed
    ):
        """Small explicit bounds exercise splitting and subtree matching;
        the two implementations must succeed and fail on the same B."""
        coherence = build(n_mentions, k, seed)
        for bound in (0.5, 0.8, 1.2, 2.0):
            try:
                fast = derive_tree_cover(coherence, bound=bound)
            except BoundTooSmallError:
                with pytest.raises(BoundTooSmallError):
                    derive_tree_cover_reference(coherence, bound=bound)
                continue
            reference = derive_tree_cover_reference(coherence, bound=bound)
            assert cover_signature(fast) == cover_signature(reference)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 500))
    def test_minimal_bound_probes_match_fresh_derivation(
        self, n_mentions, seed
    ):
        """The scaffold reused across binary-search probes must reach the
        same B* a probe-by-probe reference search reaches, and the cover
        at B* must match a from-scratch derivation."""
        coherence = build(n_mentions, 2, seed)
        b_star = minimal_feasible_bound(coherence, tolerance=0.01)

        def reference_feasible(bound):
            try:
                derive_tree_cover_reference(coherence, bound=bound)
                return True
            except BoundTooSmallError:
                return False

        lo, hi = 0.0, max(float(n_mentions), 1.0)
        assert reference_feasible(hi)
        while hi - lo > 0.01:
            mid = (lo + hi) / 2.0
            if mid <= 0.0:
                break
            if reference_feasible(mid):
                hi = mid
            else:
                lo = mid
        assert b_star == pytest.approx(hi)
        assert_same_cover(coherence, bound=b_star)


class TestPipelineGraphParity:
    @pytest.fixture(scope="class")
    def pipeline_graphs(self):
        suite = build_benchmark_suite(seed=7, scale=0.1)
        context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)
        linker = TenetLinker(context)
        graphs = []
        for dataset in suite.datasets():
            for document in dataset.documents[:4]:
                extraction = linker.pipeline.extract(document.text)
                by_mention = linker.generator.generate(extraction).by_mention
                graphs.append(
                    build_coherence_graph(by_mention, linker.similarity)
                )
        return graphs

    def test_real_documents_identical(self, pipeline_graphs):
        assert pipeline_graphs
        for coherence in pipeline_graphs:
            assert_same_cover(coherence)
