"""Candidate generation tests."""

import pytest

from repro.core.candidates import CandidateGenerator
from repro.nlp.pipeline import ExtractionPipeline
from repro.nlp.spans import Span, SpanKind


@pytest.fixture(scope="module")
def generator(context):
    return CandidateGenerator(context.alias_index, max_candidates=4)


@pytest.fixture(scope="module")
def pipeline(context):
    return ExtractionPipeline(context.alias_index)


def _noun(text):
    return Span(text, 0, len(text.split()), 0, SpanKind.NOUN)


class TestEntityCandidates:
    def test_known_phrase(self, generator, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        hits = generator.entity_candidates(_noun(person.label))
        assert any(h.concept_id == person.entity_id for h in hits)

    def test_unknown_phrase_empty(self, generator):
        assert generator.entity_candidates(_noun("Zyzzyx Quux")) == []

    def test_limit_respected(self, generator):
        hits = generator.entity_candidates(_noun("Wilson"))
        assert len(hits) <= 4

    def test_prior_ordering(self, generator):
        hits = generator.entity_candidates(_noun("Wilson"))
        priors = [h.prior for h in hits]
        assert priors == sorted(priors, reverse=True)

    def test_min_prior_filter(self, context):
        strict = CandidateGenerator(context.alias_index, min_prior=0.9)
        hits = strict.entity_candidates(_noun("Wilson"))
        assert all(h.prior >= 0.9 for h in hits)


class TestPredicateCandidates:
    def test_variant_fallback(self, generator):
        span = Span("was awarded", 0, 2, 0, SpanKind.RELATION)
        hits = generator.predicate_candidates(
            span, ("nonsense variant", "was awarded")
        )
        assert hits

    def test_first_matching_variant_wins(self, generator, world):
        span = Span("studies", 0, 1, 0, SpanKind.RELATION)
        hits = generator.predicate_candidates(span, ("studies",))
        ids = {h.concept_id for h in hits}
        assert world.predicate("field") in ids
        assert world.predicate("educated") in ids

    def test_no_variants_uses_surface(self, generator):
        span = Span("studies", 0, 1, 0, SpanKind.RELATION)
        assert generator.predicate_candidates(span)


class TestGenerate:
    def test_covers_all_mentions(self, generator, pipeline):
        extraction = pipeline.extract(
            "Nina Wilson studies databases. Glowberry Cleanse arrived."
        )
        candidates = generator.generate(extraction)
        for span in extraction.noun_spans:
            assert span in candidates.by_mention
        for relation in extraction.relations:
            assert relation.span in candidates.by_mention

    def test_non_linkable_mentions_listed(self, generator, pipeline):
        extraction = pipeline.extract("Glowberry Cleanse is located in Brooklyn.")
        candidates = generator.generate(extraction)
        non_linkable = [m.text for m in candidates.non_linkable_mentions()]
        assert any("Glowberry" in t for t in non_linkable)

    def test_linkable_mentions_listed(self, generator, pipeline, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        extraction = pipeline.extract(f"{person.label} studies databases.")
        candidates = generator.generate(extraction)
        linkable = [m.text for m in candidates.linkable_mentions()]
        assert person.label in linkable

    def test_total_candidates(self, generator, pipeline):
        extraction = pipeline.extract("Nina Wilson studies databases.")
        candidates = generator.generate(extraction)
        assert candidates.total_candidates >= 2
