"""Deadline semantics and the pipeline's cooperative checkpoints."""

import pytest

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.tree_cover import derive_tree_cover


@pytest.fixture(scope="module")
def document(suite):
    return suite.kore50.documents[0].text


class TripAtStage(Deadline):
    """An unbounded deadline that trips at one named checkpoint.

    Lets the tests abort the pipeline deterministically at any stage
    without racing a wall clock.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(None)
        self.trip_stage = stage
        self.stages_seen = []

    def check(self, stage: str) -> None:
        self.stages_seen.append(stage)
        if stage == self.trip_stage:
            self.cancel()
        super().check(stage)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.remaining() is None
        assert not deadline.expired
        deadline.check("anything")  # does not raise

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-0.1)

    def test_bounded_remaining_counts_down(self):
        deadline = Deadline.after(60.0)
        remaining = deadline.remaining()
        assert remaining is not None and 0 < remaining <= 60.0
        assert deadline.elapsed() >= 0.0

    def test_zero_budget_is_immediately_expired(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_cancel_trips_the_token(self):
        deadline = Deadline.after(None)
        deadline.cancel()
        assert deadline.cancelled
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_with_stage_and_deadline(self):
        deadline = Deadline.after(0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("coherence")
        assert excinfo.value.stage == "coherence"
        assert excinfo.value.deadline is deadline
        assert "coherence" in str(excinfo.value)


class TestLinkerCheckpoints:
    def test_expired_deadline_aborts_before_extraction(self, tenet):
        with pytest.raises(DeadlineExceeded) as excinfo:
            tenet.link("any document at all", deadline=Deadline.after(0.0))
        exc = excinfo.value
        assert exc.stage == "extract"
        assert exc.partial is not None
        assert exc.partial.extraction is None
        assert exc.partial.candidates is None

    def test_abort_before_candidates_salvages_extraction(
        self, suite_context, document
    ):
        from repro.core.linker import TenetLinker

        linker = TenetLinker(suite_context)
        with pytest.raises(DeadlineExceeded) as excinfo:
            linker.link(document, deadline=TripAtStage("candidates"))
        exc = excinfo.value
        assert exc.stage == "candidates"
        assert exc.partial.extraction is not None
        assert exc.partial.candidates is None
        assert "extract" in exc.partial.stage_seconds

    @pytest.mark.parametrize(
        "stage", ["coherence", "tree_cover", "grouping", "disambiguation"]
    )
    def test_late_aborts_salvage_candidates(
        self, suite_context, document, stage
    ):
        from repro.core.linker import TenetLinker

        linker = TenetLinker(suite_context)
        deadline = TripAtStage(stage)
        with pytest.raises(DeadlineExceeded) as excinfo:
            linker.link(document, deadline=deadline)
        exc = excinfo.value
        assert exc.stage == stage
        assert exc.partial.candidates is not None
        assert "candidates" in exc.partial.stage_seconds
        # Every earlier checkpoint fired before the tripping one.
        assert deadline.stages_seen.index(stage) == len(deadline.stages_seen) - 1

    def test_salvaged_candidates_reproduce_prior_only(
        self, suite_context, document
    ):
        from repro.core.linker import TenetLinker

        linker = TenetLinker(suite_context)
        with pytest.raises(DeadlineExceeded) as excinfo:
            linker.link(document, deadline=TripAtStage("coherence"))
        salvaged = linker.prior_only_from_candidates(
            excinfo.value.partial.candidates
        )
        expected = linker.link_prior_only(document)
        assert salvaged.to_json(include_timings=False) == expected.to_json(
            include_timings=False
        )


class TestStageLoopCheckpoints:
    def test_tree_cover_honours_cancelled_deadline(
        self, suite_context, document
    ):
        from repro.core.linker import TenetLinker

        linker = TenetLinker(suite_context)
        coherence = linker.link_detailed(document).coherence
        cancelled = Deadline.after(None)
        cancelled.cancel()
        with pytest.raises(DeadlineExceeded) as excinfo:
            derive_tree_cover(coherence, deadline=cancelled)
        assert excinfo.value.stage == "tree_cover"

    def test_tree_cover_without_deadline_unchanged(
        self, suite_context, document
    ):
        from repro.core.linker import TenetLinker

        linker = TenetLinker(suite_context)
        coherence = linker.link_detailed(document).coherence
        plain = derive_tree_cover(coherence)
        threaded = derive_tree_cover(coherence, deadline=Deadline.after(None))
        assert plain.total_edges == threaded.total_edges
        assert plain.cost() == threaded.cost()

    def test_linked_result_identical_with_unbounded_deadline(
        self, suite_context, document
    ):
        from repro.core.linker import TenetLinker

        linker = TenetLinker(suite_context)
        plain = linker.link(document)
        threaded = linker.link(document, deadline=Deadline.after(None))
        assert plain.to_json(include_timings=False) == threaded.to_json(
            include_timings=False
        )
