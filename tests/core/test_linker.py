"""End-to-end TenetLinker tests over the synthetic world."""

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.eval.runner import gold_mentions_to_spans
from repro.nlp.spans import SpanKind


@pytest.fixture(scope="module")
def sample(world):
    """A document with known gold structure built from world facts."""
    kb = world.kb
    person_id = world.entities_of_type("computer_science", "person")[0]
    person = kb.get_entity(person_id)
    topic_id = next(
        t.obj for t in kb.triples()
        if t.subject == person_id and t.predicate == world.predicate("field")
    )
    topic = kb.get_entity(topic_id)
    city_id = world.cities[0]
    city = kb.get_entity(city_id)
    text = (
        f"{person.label} studies {topic.label}. "
        f"Glowberry Cleanse is located in {city.label}."
    )
    return {
        "text": text,
        "person": person,
        "topic": topic,
        "city": city,
        "field_pid": world.predicate("field"),
    }


class TestLinking:
    def test_entities_linked(self, tenet, sample):
        result = tenet.link(sample["text"])
        assert result.find_entity(sample["person"].label).concept_id == (
            sample["person"].entity_id
        )
        assert result.find_entity(sample["topic"].label).concept_id == (
            sample["topic"].entity_id
        )

    def test_relation_disambiguated_by_coherence(self, tenet, sample):
        # "studies" is shared between field-of-work and educated-at; the
        # topic object must pull it to field-of-work.
        result = tenet.link(sample["text"])
        link = result.find_relation("studies")
        assert link is not None
        assert link.concept_id == sample["field_pid"]

    def test_non_linkable_detected(self, tenet, sample):
        result = tenet.link(sample["text"])
        assert any(
            "Glowberry" in s.text for s in result.non_linkable
        )

    def test_results_sorted_by_position(self, tenet, sample):
        result = tenet.link(sample["text"])
        starts = [l.span.token_start for l in result.entity_links]
        assert starts == sorted(starts)

    def test_deterministic(self, tenet, sample):
        a = tenet.link(sample["text"])
        b = tenet.link(sample["text"])
        assert [(l.surface, l.concept_id) for l in a.links] == [
            (l.surface, l.concept_id) for l in b.links
        ]

    def test_empty_document(self, tenet):
        result = tenet.link("")
        assert result.links == []

    def test_filler_only_document(self, tenet):
        result = tenet.link("The announcement drew wide attention last week.")
        assert result.entity_links == []


class TestDiagnostics:
    def test_diagnostics_populated(self, tenet, sample):
        diagnostics = tenet.link_detailed(sample["text"])
        assert diagnostics.mention_count > 0
        assert diagnostics.group_count > 0
        assert diagnostics.cover_edge_count >= 0
        assert diagnostics.elapsed_seconds > 0
        assert diagnostics.result.links

    def test_cover_respects_config_bound(self, context, sample):
        linker = TenetLinker(context, TenetConfig(tree_weight_bound=50.0))
        diagnostics = linker.link_detailed(sample["text"])
        assert diagnostics.cover.bound == 50.0


class TestDisambiguationOnlyMode:
    def test_gold_mentions_linked(self, tenet, suite_context, suite):
        linker = TenetLinker(suite_context)
        document = suite.kore50.documents[0]
        spans = gold_mentions_to_spans(document, SpanKind.NOUN)
        result = linker.disambiguate_mentions(document.text, spans)
        assert result.entity_links

    def test_only_given_mentions_linked(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        document = suite.kore50.documents[0]
        spans = gold_mentions_to_spans(document, SpanKind.NOUN)
        result = linker.disambiguate_mentions(document.text, spans)
        given = {(s.token_start, s.token_end) for s in spans}
        for link in result.entity_links:
            assert (link.span.token_start, link.span.token_end) in given


class TestContext:
    def test_context_build_indexes_everything(self, world, context):
        assert context.alias_index.entity_alias_count() > 0
        assert len(context.embeddings) == len(world.kb.concept_ids())
