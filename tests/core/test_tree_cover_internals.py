"""White-box tests of Algorithm 1's contraction and decomposition."""

import numpy as np
import pytest

from repro.core.coherence import CandidateNode, build_coherence_graph
from repro.core.tree_cover import (
    MAJOR_ROOT,
    _contract,
    _decompose,
    derive_tree_cover,
)
from repro.embeddings.similarity import SimilarityIndex
from repro.embeddings.store import EmbeddingStore
from repro.graph.mst import minimum_spanning_forest
from repro.kb.alias_index import CandidateHit
from repro.nlp.spans import Span, SpanKind


@pytest.fixture
def coherence():
    store = EmbeddingStore(4)
    store.add("Q1", np.array([1.0, 0.0, 0.0, 0.0]))
    store.add("Q2", np.array([0.9, 0.4, 0.0, 0.0]))
    store.add("Q3", np.array([0.0, 0.0, 1.0, 0.0]))
    similarity = SimilarityIndex(store)
    m1 = Span("alpha", 0, 1, 0, SpanKind.NOUN)
    m2 = Span("beta", 3, 4, 0, SpanKind.NOUN)
    m3 = Span("gamma", 6, 7, 0, SpanKind.NOUN)
    return build_coherence_graph(
        {
            m1: [CandidateHit("Q1", 1.0, "entity")],
            m2: [CandidateHit("Q2", 1.0, "entity")],
            m3: [CandidateHit("Q3", 1.0, "entity")],
        },
        similarity,
    ), (m1, m2, m3)


class TestContract:
    def test_root_connects_to_every_candidate(self, coherence):
        graph, _ = coherence
        pruned = graph.graph.pruned(10.0)
        contracted, owner = _contract(graph, pruned, 10.0)
        assert MAJOR_ROOT in contracted
        for node in graph.candidate_nodes():
            assert contracted.has_edge(MAJOR_ROOT, node)
            assert owner[node] == node.mention

    def test_root_edge_takes_mention_edge_weight(self, coherence):
        graph, (m1, _, _) = coherence
        pruned = graph.graph.pruned(10.0)
        contracted, _ = _contract(graph, pruned, 10.0)
        node = graph.candidates_by_mention[m1][0]
        assert contracted.weight(MAJOR_ROOT, node) == pytest.approx(
            pruned.weight(m1, node)
        )

    def test_concept_edges_carried_over(self, coherence):
        graph, _ = coherence
        pruned = graph.graph.pruned(10.0)
        contracted, _ = _contract(graph, pruned, 10.0)
        concept_edges = [
            (u, v)
            for u, v, _ in contracted.edges()
            if u is not MAJOR_ROOT and v is not MAJOR_ROOT
        ]
        assert concept_edges  # Q1-Q2 similarity edge survives

    def test_pruning_removes_root_edges(self, coherence):
        graph, _ = coherence
        # a bound below the local-distance floor removes all prior edges
        pruned = graph.graph.pruned(0.1)
        contracted, owner = _contract(graph, pruned, 0.1)
        assert not owner


class TestDecompose:
    def test_one_tree_per_mention(self, coherence):
        graph, mentions = coherence
        pruned = graph.graph.pruned(10.0)
        contracted, owner = _contract(graph, pruned, 10.0)
        mst = minimum_spanning_forest(contracted)
        trees = _decompose(graph, mst, owner)
        assert set(trees) == set(mentions)
        for mention, tree in trees.items():
            assert tree.root == mention

    def test_components_fully_distributed(self, coherence):
        graph, _ = coherence
        pruned = graph.graph.pruned(10.0)
        contracted, owner = _contract(graph, pruned, 10.0)
        mst = minimum_spanning_forest(contracted)
        trees = _decompose(graph, mst, owner)
        covered = set()
        for tree in trees.values():
            covered |= {
                n for n in tree.node_set() if isinstance(n, CandidateNode)
            }
        assert covered == set(graph.candidate_nodes())

    def test_cover_matches_manual_pipeline(self, coherence):
        graph, _ = coherence
        cover = derive_tree_cover(graph)
        assert cover.cost() <= 4 * cover.bound + 1e-9
        # close concepts Q1/Q2 end up coherently connected in one tree
        sizes = sorted(t.node_count for t in cover.trees.values())
        assert sizes[-1] >= 3  # a tree holding both close candidates
