"""Benchmark suite builder tests (Table 2 shape)."""

import pytest

from repro.datasets.benchmarks import build_benchmark_suite
from repro.eval.statistics import dataset_statistics


class TestSuite:
    def test_four_datasets(self, suite):
        names = [d.name for d in suite.datasets()]
        assert names == ["News", "T-REx42", "KORE50", "MSNBC19"]

    def test_dataset_lookup(self, suite):
        assert suite.dataset("kore50").name == "KORE50"
        with pytest.raises(KeyError):
            suite.dataset("nope")

    def test_advertisement_subset(self, suite):
        ads = suite.advertisement_subset()
        assert len(ads) >= 2
        assert all(d.doc_id.startswith("news-ad-") for d in ads)

    def test_scale_shrinks_counts(self):
        small = build_benchmark_suite(seed=7, scale=0.1)
        assert len(small.kore50) < 50

    def test_full_scale_counts(self):
        # paper sizes: 16 / 42 / 50 / 19 documents
        full = build_benchmark_suite(seed=7, scale=1.0)
        assert len(full.news) == 16
        assert len(full.trex42) == 42
        assert len(full.kore50) == 50
        assert len(full.msnbc19) == 19

    def test_deterministic(self):
        a = build_benchmark_suite(seed=9, scale=0.1)
        b = build_benchmark_suite(seed=9, scale=0.1)
        assert a.news.documents[0].text == b.news.documents[0].text


class TestTable2Shape:
    """The analogs must mirror the paper's dataset profile (Table 2)."""

    def test_kore50_is_short_text(self, suite):
        stats = dataset_statistics(suite.kore50)
        assert stats.words_per_document < 25

    def test_msnbc_is_longest(self, suite):
        lengths = {
            d.name: dataset_statistics(d).words_per_document
            for d in suite.datasets()
        }
        assert lengths["MSNBC19"] == max(lengths.values())

    def test_msnbc_has_most_entities_per_doc(self, suite):
        per_doc = {
            d.name: dataset_statistics(d).nouns_per_document
            for d in suite.datasets()
        }
        assert per_doc["MSNBC19"] == max(per_doc.values())

    def test_relation_gold_only_for_news_and_trex(self, suite):
        assert suite.news.has_relation_gold
        assert suite.trex42.has_relation_gold
        assert not suite.kore50.has_relation_gold
        assert not suite.msnbc19.has_relation_gold

    def test_news_has_non_linkable_nouns(self, suite):
        stats = dataset_statistics(suite.news)
        assert stats.non_linkable_noun_fraction > 0.1

    def test_kore50_nearly_fully_linkable(self, suite):
        stats = dataset_statistics(suite.kore50)
        assert stats.non_linkable_noun_fraction < 0.05

    def test_relation_non_linkable_fraction_high(self, suite):
        news = dataset_statistics(suite.news)
        assert news.non_linkable_relation_fraction > 0.15

    def test_ad_docs_dominated_by_non_linkables(self, suite):
        ads = dataset_statistics(suite.advertisement_subset())
        normal = dataset_statistics(suite.news)
        assert ads.non_linkable_noun_fraction > normal.non_linkable_noun_fraction
