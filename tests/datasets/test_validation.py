"""Dataset validation tests."""


from repro.datasets.schema import AnnotatedDocument, Dataset, GoldMention
from repro.datasets.validation import validate_dataset
from repro.nlp.spans import SpanKind


class TestGeneratedCorporaAreValid:
    def test_all_suite_datasets_validate(self, suite):
        for dataset in suite.datasets():
            report = validate_dataset(dataset, suite.world.kb)
            assert report.ok, [str(p) for p in report.errors]


class TestErrorDetection:
    def _dataset(self, documents, has_relation_gold=True):
        return Dataset("broken", documents, has_relation_gold=has_relation_gold)

    def test_out_of_bounds_span(self):
        doc = AnnotatedDocument(
            "d", "short", [GoldMention("ghost", 10, 15, SpanKind.NOUN, "Q1")]
        )
        report = validate_dataset(self._dataset([doc]))
        assert not report.ok
        assert "outside" in report.errors[0].message

    def test_surface_mismatch(self):
        doc = AnnotatedDocument(
            "d",
            "Alice went home",
            [GoldMention("Bobby", 0, 5, SpanKind.NOUN, "Q1")],
        )
        report = validate_dataset(self._dataset([doc]))
        assert not report.ok
        assert "does not match" in report.errors[0].message

    def test_unknown_concept_with_kb(self, world):
        doc = AnnotatedDocument(
            "d",
            "Alice went home",
            [GoldMention("Alice", 0, 5, SpanKind.NOUN, "Q999999")],
        )
        report = validate_dataset(self._dataset([doc]), world.kb)
        assert not report.ok
        assert "unknown" in report.errors[0].message

    def test_kind_concept_mismatch(self, world):
        pid = next(iter(world.predicate_ids.values()))
        doc = AnnotatedDocument(
            "d",
            "Alice went home",
            [GoldMention("Alice", 0, 5, SpanKind.NOUN, pid)],
        )
        report = validate_dataset(self._dataset([doc]), world.kb)
        assert not report.ok

    def test_relation_gold_in_entity_only_dataset(self):
        doc = AnnotatedDocument(
            "d",
            "Alice went home",
            [GoldMention("went", 6, 10, SpanKind.RELATION, "P1")],
        )
        report = validate_dataset(
            self._dataset([doc], has_relation_gold=False)
        )
        assert not report.ok

    def test_duplicate_annotation_warns(self):
        gold = GoldMention("Alice", 0, 5, SpanKind.NOUN, "Q1")
        doc = AnnotatedDocument("d", "Alice went home", [gold, gold])
        report = validate_dataset(self._dataset([doc]))
        assert report.ok  # warnings only
        assert report.warnings

    def test_empty_document_warns(self):
        doc = AnnotatedDocument("d", "no annotations here")
        report = validate_dataset(self._dataset([doc]))
        assert report.ok
        assert any("no gold" in w.message for w in report.warnings)
