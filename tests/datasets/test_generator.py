"""Document generator tests."""

import pytest

from repro.datasets.generator import DocumentGenerator, DocumentSpec, _ing_form
from repro.nlp.spans import SpanKind
from repro.textnorm import normalize_phrase


@pytest.fixture(scope="module")
def generator(world):
    return DocumentGenerator(world, seed=42)


@pytest.fixture(scope="module")
def document(generator):
    spec = DocumentSpec(
        domain="computer_science",
        facts=4,
        isolated_facts=1,
        non_linkable_noun_sentences=1,
        non_linkable_relation_sentences=1,
        filler_sentences=3,
    )
    return generator.generate("doc-0", spec)


class TestOffsets:
    def test_gold_surfaces_match_text(self, document):
        for gold in document.gold:
            assert document.text[gold.char_start : gold.char_end] == gold.surface

    def test_gold_spans_non_empty(self, document):
        for gold in document.gold:
            assert gold.char_end > gold.char_start


class TestComposition:
    def test_has_linkable_nouns_and_relations(self, document):
        assert document.gold_entities(linkable_only=True)
        assert document.gold_relations(linkable_only=True)

    def test_has_non_linkable_gold(self, document):
        assert document.non_linkable_gold()

    def test_gold_concepts_exist_in_kb(self, document, world):
        for gold in document.gold:
            if gold.concept_id is None:
                continue
            if gold.kind is SpanKind.NOUN:
                assert world.kb.has_entity(gold.concept_id)
            else:
                assert world.kb.has_predicate(gold.concept_id)

    def test_linkable_surfaces_are_aliases_unless_oov(self, document, world):
        """Most linkable noun golds use a KB alias of their concept (a
        controlled fraction is deliberately OOV)."""
        aliased = 0
        total = 0
        for gold in document.gold_entities(linkable_only=True):
            total += 1
            entity = world.kb.get_entity(gold.concept_id)
            if normalize_phrase(gold.surface) in {
                normalize_phrase(a) for a in entity.aliases
            }:
                aliased += 1
        assert aliased >= total * 0.5

    def test_annotate_relations_false_omits_relation_gold(self, generator):
        spec = DocumentSpec(domain="music", facts=3, annotate_relations=False)
        doc = generator.generate("no-rel", spec)
        assert doc.gold_relations() == []
        assert doc.gold_entities()

    def test_deterministic(self, world):
        a = DocumentGenerator(world, seed=5).generate(
            "d", DocumentSpec(domain="cinema")
        )
        b = DocumentGenerator(world, seed=5).generate(
            "d", DocumentSpec(domain="cinema")
        )
        assert a.text == b.text
        assert a.gold == b.gold

    def test_filler_stretches_document(self, generator):
        short = generator.generate(
            "s", DocumentSpec(domain="politics", filler_sentences=0)
        )
        long = generator.generate(
            "l", DocumentSpec(domain="politics", filler_sentences=20)
        )
        assert long.word_count > short.word_count


class TestTraps:
    def test_isolated_trap_uses_dominant_sense(self, world):
        generator = DocumentGenerator(world, seed=3)
        trap = generator._find_isolated_trap("computer_science")
        if trap is None:
            pytest.skip("no trap available")
        fact, alias = trap
        owners = generator._alias_owners[normalize_phrase(alias)]
        top = max(owners, key=lambda e: world.kb.get_entity(e).popularity)
        assert fact.subject == top

    def test_trap_filtered_against_document(self, world):
        from repro.datasets.generator import _DocBuilder

        generator = DocumentGenerator(world, seed=3)
        options = generator._trap_options("computer_science")
        if not options:
            pytest.skip("no trap available")
        _, _, wrong_owners = options[0]
        neighbour = next(
            iter(world.kb.entity_neighbours(wrong_owners[0])), None
        )
        if neighbour is None:
            pytest.skip("wrong owner has no neighbours")
        builder = _DocBuilder()
        builder.add("X", SpanKind.NOUN, neighbour, annotate=True)
        trap = generator._find_isolated_trap("computer_science", builder)
        if trap is not None:
            fact, alias = trap
            owners = generator._alias_owners[normalize_phrase(alias)]
            for owner in owners:
                record = world.kb.get_entity(owner)
                if record.domain == "computer_science":
                    assert neighbour not in world.kb.entity_neighbours(owner)


class TestIngForm:
    @pytest.mark.parametrize(
        "verb,expected",
        [
            ("studies", "studying"),
            ("lives", "living"),
            ("works", "working"),
            ("directed", "directing"),
            ("won", "winning"),
            ("wrote", "writing"),
        ],
    )
    def test_forms(self, verb, expected):
        assert _ing_form(verb) == expected
