"""Dataset JSON persistence tests."""

import pytest

from repro.datasets.loaders import (
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
)


class TestRoundTrip:
    def test_in_memory(self, suite):
        payload = dataset_to_json(suite.kore50)
        rebuilt = dataset_from_json(payload)
        assert rebuilt.name == suite.kore50.name
        assert len(rebuilt) == len(suite.kore50)
        assert rebuilt.documents[0].gold == suite.kore50.documents[0].gold

    def test_file(self, suite, tmp_path):
        path = tmp_path / "kore.json"
        save_dataset(suite.kore50, path)
        rebuilt = load_dataset(path)
        assert rebuilt.documents[0].text == suite.kore50.documents[0].text

    def test_relation_gold_flag_preserved(self, suite):
        rebuilt = dataset_from_json(dataset_to_json(suite.msnbc19))
        assert rebuilt.has_relation_gold is False

    def test_unknown_version_rejected(self, suite):
        payload = dataset_to_json(suite.kore50)
        payload["format_version"] = 42
        with pytest.raises(ValueError):
            dataset_from_json(payload)
