"""Gold annotation schema tests."""

import pytest

from repro.datasets.schema import AnnotatedDocument, Dataset, GoldMention
from repro.nlp.spans import SpanKind


def gold(surface, start, kind=SpanKind.NOUN, concept="Q1"):
    return GoldMention(surface, start, start + len(surface), kind, concept)


class TestGoldMention:
    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            GoldMention("x", 5, 5, SpanKind.NOUN, "Q1")

    def test_linkable_flag(self):
        assert gold("a", 0).is_linkable
        assert not gold("a", 0, concept=None).is_linkable

    def test_overlap(self):
        g = gold("Alice", 10)
        assert g.overlaps_chars(12, 20)
        assert not g.overlaps_chars(15, 20)
        assert not g.overlaps_chars(0, 10)


class TestAnnotatedDocument:
    def _doc(self):
        return AnnotatedDocument(
            "d1",
            "Alice studies math",
            [
                gold("Alice", 0),
                gold("studies", 6, SpanKind.RELATION, "P1"),
                gold("math", 14, concept=None),
            ],
        )

    def test_gold_entities(self):
        doc = self._doc()
        assert len(doc.gold_entities()) == 2
        assert len(doc.gold_entities(linkable_only=True)) == 1

    def test_gold_relations(self):
        assert len(self._doc().gold_relations()) == 1

    def test_non_linkable(self):
        assert len(self._doc().non_linkable_gold()) == 1

    def test_word_count(self):
        assert self._doc().word_count == 3


class TestDataset:
    def test_iteration_and_len(self):
        ds = Dataset("t", [AnnotatedDocument("a", "x"), AnnotatedDocument("b", "y")])
        assert len(ds) == 2
        assert [d.doc_id for d in ds] == ["a", "b"]

    def test_words_per_document(self):
        ds = Dataset("t", [AnnotatedDocument("a", "one two"),
                           AnnotatedDocument("b", "three four five six")])
        assert ds.words_per_document == 3.0

    def test_subset(self):
        ds = Dataset("t", [AnnotatedDocument("a", "x"), AnnotatedDocument("b", "y")])
        sub = ds.subset(["b"])
        assert len(sub) == 1
        assert sub.documents[0].doc_id == "b"
