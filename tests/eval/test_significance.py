"""Bootstrap significance tests."""


from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker
from repro.core.result import Link, LinkingResult
from repro.datasets.schema import AnnotatedDocument, GoldMention
from repro.eval.significance import (
    bootstrap_f1,
    compare_on_dataset,
    paired_bootstrap,
)
from repro.nlp.spans import Span, SpanKind


def _doc(i, correct):
    """A one-mention document plus a result that is right or wrong."""
    gold = GoldMention("Alice", 0, 5, SpanKind.NOUN, "Q1")
    document = AnnotatedDocument(f"d{i}", "Alice went home", [gold])
    span = Span("Alice", 0, 1, 0, SpanKind.NOUN, char_start=0, char_end=5)
    result = LinkingResult(
        entity_links=[Link(span, "Q1" if correct else "Q9")]
    )
    return document, result


class TestBootstrapF1:
    def test_perfect_system(self):
        docs, results = zip(*[_doc(i, True) for i in range(10)])
        ci = bootstrap_f1(results, docs, samples=200)
        assert ci.estimate == 1.0
        assert ci.low == 1.0 and ci.high == 1.0

    def test_interval_contains_estimate(self):
        pairs = [_doc(i, i % 2 == 0) for i in range(20)]
        docs, results = zip(*pairs)
        ci = bootstrap_f1(results, docs, samples=300)
        assert ci.low <= ci.estimate <= ci.high
        assert 0.0 < ci.estimate < 1.0

    def test_deterministic_under_seed(self):
        pairs = [_doc(i, i % 3 == 0) for i in range(15)]
        docs, results = zip(*pairs)
        a = bootstrap_f1(results, docs, samples=100, seed=4)
        b = bootstrap_f1(results, docs, samples=100, seed=4)
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_dataset(self):
        ci = bootstrap_f1([], [], samples=10)
        assert ci.estimate == 0.0


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        docs = []
        results_good, results_bad = [], []
        for i in range(25):
            document, good = _doc(i, True)
            _, bad = _doc(i, i % 5 == 0)  # mostly wrong
            docs.append(document)
            results_good.append(good)
            results_bad.append(bad)
        comparison = paired_bootstrap(
            results_good, results_bad, docs, samples=400
        )
        assert comparison.f1_a > comparison.f1_b
        assert comparison.significant
        assert comparison.delta.low > 0.0

    def test_identical_systems_not_significant(self):
        pairs = [_doc(i, i % 2 == 0) for i in range(20)]
        docs, results = zip(*pairs)
        comparison = paired_bootstrap(results, results, docs, samples=200)
        assert comparison.delta.estimate == 0.0
        assert not comparison.significant


class TestOnRealSystems:
    def test_tenet_vs_falcon_on_kore(self, suite, suite_context):
        comparison = compare_on_dataset(
            TenetLinker(suite_context),
            FalconLinker(suite_context),
            suite.kore50,
            samples=300,
        )
        assert comparison.f1_a > comparison.f1_b
        assert comparison.delta.estimate > 0.0
