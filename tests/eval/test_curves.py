"""Operating-point curve tests."""

import pytest

from repro.eval.curves import best_f1_point, threshold_curve


@pytest.fixture(scope="module")
def curve(suite, suite_context):
    return threshold_curve(
        suite_context, suite.news, thresholds=(0.7, 0.85, 1.0)
    )


class TestThresholdCurve:
    def test_one_point_per_threshold(self, curve):
        assert [p.threshold for p in curve] == [0.7, 0.85, 1.0]

    def test_recall_monotone_in_threshold(self, curve):
        """Raising the threshold only permits more links."""
        recalls = [p.recall for p in curve]
        assert recalls == sorted(recalls)

    def test_metrics_bounded(self, curve):
        for point in curve:
            assert 0.0 <= point.precision <= 1.0
            assert 0.0 <= point.recall <= 1.0
            assert 0.0 <= point.f1 <= 1.0

    def test_best_f1_point(self, curve):
        best = best_f1_point(curve)
        assert best.f1 == max(p.f1 for p in curve)

    def test_best_f1_empty_raises(self):
        with pytest.raises(ValueError):
            best_f1_point([])
