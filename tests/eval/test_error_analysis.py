"""Error analysis tests."""

import pytest

from repro.analysis import Diagnosis, ErrorAnalyzer
from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker


@pytest.fixture(scope="module")
def analyzer(suite_context):
    return ErrorAnalyzer(suite_context)


class TestReport:
    def test_every_gold_classified(self, analyzer, suite, suite_context):
        linker = TenetLinker(suite_context)
        report = analyzer.analyze(linker, suite.kore50)
        gold_total = sum(len(d.gold) for d in suite.kore50)
        assert len(report.cases) == gold_total

    def test_relation_gold_skipped_when_absent(self, analyzer, suite, suite_context):
        linker = TenetLinker(suite_context)
        report = analyzer.analyze(linker, suite.msnbc19)
        from repro.nlp.spans import SpanKind

        assert all(c.kind is SpanKind.NOUN for c in report.cases)

    def test_accuracy_between_zero_and_one(self, analyzer, suite, suite_context):
        report = analyzer.analyze(TenetLinker(suite_context), suite.news)
        assert 0.0 <= report.accuracy <= 1.0

    def test_summary_lines(self, analyzer, suite, suite_context):
        report = analyzer.analyze(TenetLinker(suite_context), suite.kore50)
        lines = report.summary_lines()
        assert "accuracy" in lines[0]
        assert len(lines) >= 2


class TestDiagnoses:
    def test_falcon_shows_prior_bias(self, analyzer, suite, suite_context):
        """Falcon's characteristic error on ambiguous corpora is linking
        the popular sense: PRIOR_BIAS must appear in its error profile."""
        report = analyzer.analyze(FalconLinker(suite_context), suite.kore50)
        counts = report.counts()
        assert counts.get(Diagnosis.PRIOR_BIAS, 0) > 0

    def test_tenet_fewer_prior_bias_errors_than_falcon(
        self, analyzer, suite, suite_context
    ):
        falcon = analyzer.analyze(FalconLinker(suite_context), suite.kore50)
        tenet = analyzer.analyze(TenetLinker(suite_context), suite.kore50)
        assert tenet.counts().get(Diagnosis.PRIOR_BIAS, 0) < falcon.counts().get(
            Diagnosis.PRIOR_BIAS, 0
        )

    def test_correct_abstain_on_non_linkables(self, analyzer, suite, suite_context):
        report = analyzer.analyze(TenetLinker(suite_context), suite.news)
        counts = report.counts()
        assert counts.get(Diagnosis.CORRECT_ABSTAIN, 0) > 0

    def test_oov_surfaces_detected(self, analyzer, suite, suite_context):
        """OOV surfaces ('Dr Wilson', 'is studying') must be diagnosed
        as alias-coverage gaps; a corpus rendered with forced OOV makes
        the signal deterministic."""
        from repro.datasets.generator import DocumentGenerator, DocumentSpec
        from repro.datasets.schema import Dataset

        generator = DocumentGenerator(suite.world, seed=77)
        documents = [
            generator.generate(
                f"oov-{i}",
                DocumentSpec(
                    domain="computer_science",
                    facts=3,
                    isolated_facts=0,
                    non_linkable_noun_sentences=0,
                    non_linkable_relation_sentences=0,
                    filler_sentences=0,
                    oov_noun_prob=1.0,
                ),
            )
            for i in range(3)
        ]
        dataset = Dataset("oov", documents, has_relation_gold=True)
        report = analyzer.analyze(TenetLinker(suite_context), dataset)
        counts = report.counts()
        assert counts.get(Diagnosis.OOV_SURFACE, 0) > 0

    def test_errors_listing(self, analyzer, suite, suite_context):
        report = analyzer.analyze(FalconLinker(suite_context), suite.kore50)
        for case in report.errors():
            assert case.diagnosis not in (
                Diagnosis.CORRECT,
                Diagnosis.CORRECT_ABSTAIN,
            )
