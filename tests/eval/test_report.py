"""Markdown report rendering tests."""

import pytest

from repro.analysis import ErrorAnalyzer
from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker
from repro.eval.report import (
    render_error_report,
    render_report,
    render_statistics,
    render_task_table,
)
from repro.eval.runner import EvaluationRunner
from repro.eval.statistics import dataset_statistics


@pytest.fixture(scope="module")
def scores(suite, suite_context):
    runner = EvaluationRunner(
        [FalconLinker(suite_context), TenetLinker(suite_context)]
    )
    return {
        ds.name: runner.evaluate(ds)
        for ds in (suite.news, suite.kore50)
    }


class TestRendering:
    def test_statistics_table(self, suite):
        lines = render_statistics(
            [dataset_statistics(d) for d in suite.datasets()]
        )
        assert lines[0].startswith("| Dataset")
        assert any("KORE50" in line for line in lines)

    def test_task_table_includes_all_systems(self, scores):
        lines = render_task_table(scores, "entity", "EL")
        body = "\n".join(lines)
        assert "TENET" in body and "Falcon" in body
        assert "News" in body and "KORE50" in body

    def test_missing_relation_scores_dashed(self, scores):
        lines = render_task_table(scores, "relation", "RL")
        kore_row = next(l for l in lines if l.startswith("| TENET"))
        assert "—" in kore_row  # KORE50 has no relation gold

    def test_error_report_section(self, suite, suite_context):
        analyzer = ErrorAnalyzer(suite_context)
        report = analyzer.analyze(FalconLinker(suite_context), suite.kore50)
        lines = render_error_report(report)
        assert any("accuracy" in line for line in lines)
        assert any("| prior_bias |" in line or "| correct |" in line
                   for line in lines)

    def test_full_report(self, scores, suite, suite_context):
        analyzer = ErrorAnalyzer(suite_context)
        error_report = analyzer.analyze(
            TenetLinker(suite_context), suite.kore50
        )
        document = render_report(
            scores,
            statistics=[dataset_statistics(d) for d in suite.datasets()],
            error_reports=[error_report],
        )
        assert document.startswith("# TENET reproduction report")
        for section in (
            "## Dataset statistics",
            "## End-to-end results",
            "### Entity linking",
            "## Error analysis",
        ):
            assert section in document

    def test_report_is_valid_markdown_tables(self, scores):
        document = render_report(scores)
        for line in document.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")


class TestBreakdownSection:
    def test_breakdown_rendered(self, scores, suite, suite_context):
        from repro.analysis import PerformanceBreakdown
        from repro.eval.report import render_breakdown, render_report

        pb = PerformanceBreakdown(suite_context)
        breakdown = pb.by_ambiguity(TenetLinker(suite_context), suite.kore50)
        lines = render_breakdown(breakdown)
        assert lines[0].startswith("### TENET")
        document = render_report(scores, breakdowns=[breakdown])
        assert "## Performance breakdowns" in document
