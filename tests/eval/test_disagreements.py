"""Disagreement analysis tests."""

import pytest

from repro.analysis.disagreements import find_disagreements
from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker


@pytest.fixture(scope="module")
def report(suite, suite_context):
    return find_disagreements(
        TenetLinker(suite_context), FalconLinker(suite_context), suite.kore50
    )


class TestDisagreements:
    def test_partition_is_total(self, report, suite):
        linkable = sum(
            1
            for d in suite.kore50
            for g in d.gold
            if g.concept_id is not None
        )
        assert report.agreements + len(report.disagreements) == linkable

    def test_tenet_wins_more_than_falcon_on_kore(self, report):
        assert len(report.a_wins()) > len(report.b_wins())

    def test_winner_classification_consistent(self, report):
        for d in report.disagreements:
            assert d.winner in ("a", "b", "neither")
            if d.winner == "a":
                assert d.a_correct and not d.b_correct
            if d.winner == "neither":
                assert not d.a_correct and not d.b_correct

    def test_predictions_differ_in_every_disagreement(self, report):
        for d in report.disagreements:
            assert d.prediction_a != d.prediction_b

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert lines[0].startswith("TENET vs Falcon")
        assert len(lines) == 5

    def test_self_comparison_has_no_disagreements(self, suite, suite_context):
        linker = TenetLinker(suite_context)
        self_report = find_disagreements(linker, linker, suite.kore50)
        assert self_report.disagreements == []
