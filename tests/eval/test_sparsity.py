"""Sparsity analysis tests (Figs. 4-5 machinery)."""

import pytest

from repro.embeddings.similarity import SimilarityIndex
from repro.eval.sparsity import DEFAULT_THRESHOLDS, sparsity_curve


@pytest.fixture(scope="module")
def similarity(suite_context):
    return SimilarityIndex(suite_context.embeddings)


class TestCurve:
    def test_one_point_per_threshold(self, suite, similarity):
        curve = sparsity_curve(suite.news, similarity)
        assert len(curve) == len(DEFAULT_THRESHOLDS)

    def test_monotone_in_threshold(self, suite, similarity):
        """More permissive thresholds can only add edges."""
        curve = sparsity_curve(suite.news, similarity)
        densities = [p.density for p in curve]
        degrees = [p.average_degree for p in curve]
        assert densities == sorted(densities)
        assert degrees == sorted(degrees)

    def test_density_bounded(self, suite, similarity):
        curve = sparsity_curve(suite.news, similarity)
        for point in curve:
            assert 0.0 <= point.density <= 1.0

    def test_sparse_at_moderate_threshold(self, suite, similarity):
        """The paper's motivating claim: at moderate distance thresholds,
        documents' gold concepts are sparsely connected."""
        curve = sparsity_curve(suite.msnbc19, similarity)
        at_half = next(p for p in curve if p.threshold == 0.5)
        assert at_half.density < 0.5

    def test_entities_only_flag(self, suite, similarity):
        entities = sparsity_curve(suite.news, similarity, entities_only=True)
        concepts = sparsity_curve(suite.news, similarity, entities_only=False)
        # concept graphs include predicates, so they have at least as many
        # nodes; the curves must simply both be well-formed
        assert len(entities) == len(concepts)

    def test_custom_thresholds(self, suite, similarity):
        curve = sparsity_curve(suite.news, similarity, thresholds=[0.2, 0.8])
        assert [p.threshold for p in curve] == [0.2, 0.8]
