"""Dataset statistics (Table 2) tests."""

from repro.datasets.schema import AnnotatedDocument, Dataset, GoldMention
from repro.eval.statistics import dataset_statistics
from repro.nlp.spans import SpanKind


def _dataset():
    doc = AnnotatedDocument(
        "d",
        "Alice studies math here",
        [
            GoldMention("Alice", 0, 5, SpanKind.NOUN, "Q1"),
            GoldMention("studies", 6, 13, SpanKind.RELATION, "P1"),
            GoldMention("math", 14, 18, SpanKind.NOUN, None),
            GoldMention("here", 19, 23, SpanKind.RELATION, None),
        ],
    )
    return Dataset("demo", [doc], has_relation_gold=True)


class TestStatistics:
    def test_counts(self):
        stats = dataset_statistics(_dataset())
        assert stats.noun_count == 2
        assert stats.non_linkable_nouns == 1
        assert stats.relation_count == 2
        assert stats.non_linkable_relations == 1

    def test_fractions(self):
        stats = dataset_statistics(_dataset())
        assert stats.non_linkable_noun_fraction == 0.5
        assert stats.non_linkable_relation_fraction == 0.5

    def test_per_document_rates(self):
        stats = dataset_statistics(_dataset())
        assert stats.nouns_per_document == 2.0
        assert stats.relations_per_document == 2.0

    def test_no_relation_gold_marks_na(self):
        ds = _dataset()
        ds.has_relation_gold = False
        stats = dataset_statistics(ds)
        assert stats.relation_count is None
        assert stats.non_linkable_relation_fraction is None

    def test_words_per_document(self):
        assert dataset_statistics(_dataset()).words_per_document == 4.0
