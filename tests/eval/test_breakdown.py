"""Performance breakdown tests."""

import pytest

from repro.analysis.breakdown import PerformanceBreakdown
from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker


@pytest.fixture(scope="module")
def breakdown(suite_context):
    return PerformanceBreakdown(suite_context)


class TestBreakdowns:
    def test_domain_totals_cover_all_linkable_gold(self, breakdown, suite, suite_context):
        result = breakdown.by_domain(TenetLinker(suite_context), suite.kore50)
        gold_total = sum(
            1
            for d in suite.kore50
            for g in d.gold_entities(linkable_only=True)
        )
        assert sum(result.total.values()) == gold_total

    def test_accuracies_bounded(self, breakdown, suite, suite_context):
        result = breakdown.by_type(TenetLinker(suite_context), suite.news)
        for category in result.categories():
            assert 0.0 <= result.accuracy(category) <= 1.0
            assert result.correct.get(category, 0) <= result.total[category]

    def test_ambiguity_buckets(self, breakdown, suite, suite_context):
        result = breakdown.by_ambiguity(TenetLinker(suite_context), suite.kore50)
        assert set(result.total) <= {"unambiguous", "2-3 senses", "4+ senses"}

    def test_falcon_suffers_on_ambiguous_bucket(self, breakdown, suite, suite_context):
        """Falcon's accuracy gap vs TENET concentrates in the ambiguous
        buckets — the quantitative form of its known weakness."""
        falcon = breakdown.by_ambiguity(FalconLinker(suite_context), suite.kore50)
        tenet = breakdown.by_ambiguity(TenetLinker(suite_context), suite.kore50)
        hard = "4+ senses"
        if falcon.total.get(hard, 0) >= 5:
            assert tenet.accuracy(hard) > falcon.accuracy(hard)

    def test_rows_render(self, breakdown, suite, suite_context):
        result = breakdown.by_domain(TenetLinker(suite_context), suite.kore50)
        rows = result.rows()
        assert rows[0].startswith("TENET")
        assert len(rows) == len(result.categories()) + 1
