"""Metric tests: the matching protocol behind Tables 3-4 and Fig. 6."""

import pytest

from repro.core.result import Link, LinkingResult
from repro.datasets.schema import AnnotatedDocument, GoldMention
from repro.eval.metrics import (
    PRF,
    aggregate,
    score_entity_linking,
    score_isolated_detection,
    score_mention_detection,
    score_relation_linking,
)
from repro.nlp.spans import Span, SpanKind


def span(text, char_start, kind=SpanKind.NOUN):
    return Span(
        text, 0, max(len(text.split()), 1), 0, kind,
        char_start=char_start, char_end=char_start + len(text),
    )


def doc(*gold):
    return AnnotatedDocument("d", "x" * 200, list(gold))


def gold(surface, start, kind=SpanKind.NOUN, concept="Q1"):
    return GoldMention(surface, start, start + len(surface), kind, concept)


class TestPRF:
    def test_zero_division_safe(self):
        empty = PRF()
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0

    def test_f1_harmonic_mean(self):
        prf = PRF(correct=1, predicted=2, gold=1)
        assert prf.precision == 0.5
        assert prf.recall == 1.0
        assert prf.f1 == pytest.approx(2 / 3)

    def test_merge(self):
        merged = PRF(1, 2, 3).merge(PRF(4, 5, 6))
        assert (merged.correct, merged.predicted, merged.gold) == (5, 7, 9)

    def test_aggregate_micro(self):
        total = aggregate([PRF(1, 1, 2), PRF(0, 1, 2)])
        assert total.precision == 0.5
        assert total.recall == 0.25


class TestEntityLinking:
    def test_correct_link(self):
        result = LinkingResult(entity_links=[Link(span("Alice", 0), "Q1")])
        prf = score_entity_linking(result, doc(gold("Alice", 0)))
        assert (prf.correct, prf.predicted, prf.gold) == (1, 1, 1)

    def test_wrong_concept_penalised(self):
        result = LinkingResult(entity_links=[Link(span("Alice", 0), "Q9")])
        prf = score_entity_linking(result, doc(gold("Alice", 0)))
        assert (prf.correct, prf.predicted) == (0, 1)

    def test_prediction_outside_annotation_ignored(self):
        result = LinkingResult(entity_links=[Link(span("Ghost", 100), "Q9")])
        prf = score_entity_linking(result, doc(gold("Alice", 0)))
        assert prf.predicted == 0

    def test_link_on_non_linkable_gold_is_error(self):
        result = LinkingResult(entity_links=[Link(span("Fresh", 0), "Q9")])
        prf = score_entity_linking(
            result, doc(gold("Fresh", 0, concept=None))
        )
        assert (prf.correct, prf.predicted) == (0, 1)

    def test_recall_over_linkable_gold_only(self):
        prf = score_entity_linking(
            LinkingResult(), doc(gold("A", 0), gold("B", 10, concept=None))
        )
        assert prf.gold == 1

    def test_overlap_matching(self):
        # predicted span overlaps gold partially but concept matches
        result = LinkingResult(entity_links=[Link(span("Nina Wilson", 0), "Q1")])
        prf = score_entity_linking(result, doc(gold("Wilson", 5)))
        assert prf.correct == 1

    def test_duplicate_predictions_count_once_for_recall(self):
        result = LinkingResult(
            entity_links=[
                Link(span("Alice", 0), "Q1"),
                Link(span("Alice", 2), "Q1"),
            ]
        )
        prf = score_entity_linking(result, doc(gold("Alice", 0)))
        assert prf.correct == 1
        assert prf.predicted == 2


class TestRelationLinking:
    def test_kind_separation(self):
        result = LinkingResult(
            relation_links=[Link(span("studies", 6, SpanKind.RELATION), "P1")]
        )
        document = doc(
            gold("Alice", 0),
            gold("studies", 6, SpanKind.RELATION, "P1"),
        )
        assert score_relation_linking(result, document).correct == 1
        assert score_entity_linking(result, document).predicted == 0


class TestMentionDetection:
    def test_exact_boundary_required(self):
        result = LinkingResult(entity_links=[Link(span("Nina Wilson", 0), "Q1")])
        exact = doc(gold("Nina Wilson", 0))
        loose = doc(gold("Wilson", 5))
        assert score_mention_detection(result, exact).correct == 1
        assert score_mention_detection(result, loose).correct == 0

    def test_non_linkable_reports_count_as_detections(self):
        result = LinkingResult(non_linkable=[span("Fresh", 0)])
        prf = score_mention_detection(result, doc(gold("Fresh", 0, concept=None)))
        assert prf.correct == 1

    def test_gold_includes_non_linkable(self):
        prf = score_mention_detection(
            LinkingResult(), doc(gold("A", 0), gold("B", 10, concept=None))
        )
        assert prf.gold == 2


class TestIsolatedDetection:
    def test_correct_report(self):
        result = LinkingResult(non_linkable=[span("Fresh", 0)])
        prf = score_isolated_detection(
            result, doc(gold("Fresh", 0, concept=None))
        )
        assert (prf.correct, prf.predicted, prf.gold) == (1, 1, 1)

    def test_report_on_linkable_gold_is_error(self):
        result = LinkingResult(non_linkable=[span("Alice", 0)])
        prf = score_isolated_detection(result, doc(gold("Alice", 0)))
        assert (prf.correct, prf.predicted) == (0, 1)

    def test_report_outside_annotation_ignored(self):
        result = LinkingResult(non_linkable=[span("Observers", 150)])
        prf = score_isolated_detection(result, doc(gold("Alice", 0)))
        assert prf.predicted == 0
