"""Timing harness tests."""

from repro.core.linker import TenetLinker
from repro.eval.timing import time_linker, time_tenet_detailed


class TestTiming:
    def test_time_linker_fields(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        sample = time_linker(linker, suite.kore50.documents[0].text)
        assert sample.system == "TENET"
        assert sample.seconds > 0
        assert sample.words > 0

    def test_best_of_repeats(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        text = suite.kore50.documents[0].text
        single = time_linker(linker, text, repeats=1)
        best = time_linker(linker, text, repeats=3)
        assert best.seconds <= single.seconds * 3  # sanity, not strict

    def test_detailed_covariates(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        sample = time_tenet_detailed(linker, suite.news.documents[0].text)
        assert sample.mentions > 0
        assert sample.groups > 0
        assert sample.cover_edges >= 0
        assert sample.candidates_per_mention == linker.config.max_candidates
