"""Evaluation runner tests."""

import pytest

from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker
from repro.eval.runner import EvaluationRunner, gold_mentions_to_spans
from repro.nlp.spans import SpanKind


@pytest.fixture(scope="module")
def runner(suite_context):
    return EvaluationRunner(
        [FalconLinker(suite_context), TenetLinker(suite_context)]
    )


class TestEvaluate:
    def test_scores_for_all_systems(self, runner, suite):
        scores = runner.evaluate(suite.kore50)
        assert set(scores) == {"Falcon", "TENET"}

    def test_dataset_recorded(self, runner, suite):
        scores = runner.evaluate(suite.kore50)
        assert scores["TENET"].dataset == "KORE50"

    def test_relation_scores_empty_without_gold(self, runner, suite):
        scores = runner.evaluate(suite.kore50)
        assert scores["TENET"].relation.gold == 0

    def test_relation_scores_present_with_gold(self, runner, suite):
        scores = runner.evaluate(suite.news)
        assert scores["TENET"].relation.gold > 0

    def test_entity_scores_plausible(self, runner, suite):
        scores = runner.evaluate(suite.news)
        for system in scores.values():
            assert 0.0 <= system.entity.f1 <= 1.0


class TestDisambiguationMode:
    def test_only_capable_systems_scored(self, suite_context, suite):
        class NoDisambiguation:
            name = "stub"

            def link(self, text):  # pragma: no cover - protocol stub
                raise NotImplementedError

        runner = EvaluationRunner(
            [TenetLinker(suite_context), NoDisambiguation()]
        )
        scores = runner.evaluate_disambiguation(suite.kore50)
        assert set(scores) == {"TENET"}

    def test_scores_plausible(self, suite_context, suite):
        runner = EvaluationRunner([TenetLinker(suite_context)])
        scores = runner.evaluate_disambiguation(suite.kore50)
        assert 0.0 < scores["TENET"].f1 <= 1.0


class TestGoldToSpans:
    def test_token_alignment(self, suite):
        document = suite.kore50.documents[0]
        spans = gold_mentions_to_spans(document, SpanKind.NOUN)
        assert spans
        for span in spans:
            assert document.text[span.char_start : span.char_end] == span.text

    def test_kind_filter(self, suite):
        document = suite.news.documents[0]
        nouns = gold_mentions_to_spans(document, SpanKind.NOUN)
        everything = gold_mentions_to_spans(document)
        assert len(everything) >= len(nouns)
        assert all(s.kind is SpanKind.NOUN for s in nouns)
