"""StructuredLogger unit tests."""

import io
import json

from repro.obs import LOG_ENV_VAR, StructuredLogger, logging_enabled_by_env


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEnvGate:
    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv(LOG_ENV_VAR, raising=False)
        assert not logging_enabled_by_env()
        assert not StructuredLogger.from_env().enabled

    def test_truthy_enables_stderr_logger(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV_VAR, "1")
        assert StructuredLogger.from_env().enabled

    def test_falsy_values(self, monkeypatch):
        for value in ("0", "false", "no", "off", ""):
            monkeypatch.setenv(LOG_ENV_VAR, value)
            assert not logging_enabled_by_env()


class TestEmission:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream)
        logger.info("request.completed", request_id="r1")
        logger.warning("request.degraded", request_id="r2")
        first, second = _lines(stream)
        assert first["event"] == "request.completed"
        assert first["level"] == "info"
        assert first["request_id"] == "r1"
        assert "ts" in first
        assert second["level"] == "warning"

    def test_none_fields_dropped(self):
        stream = io.StringIO()
        StructuredLogger(stream).info("e", kept=0, dropped=None)
        (record,) = _lines(stream)
        assert record["kept"] == 0
        assert "dropped" not in record

    def test_non_serialisable_falls_back_to_str(self):
        stream = io.StringIO()
        StructuredLogger(stream).info("e", path=object())
        (record,) = _lines(stream)
        assert isinstance(record["path"], str)

    def test_bind_carries_context(self):
        stream = io.StringIO()
        child = StructuredLogger(stream).bind(host="127.0.0.1", port=80)
        child.error("service.failed", reason="x")
        (record,) = _lines(stream)
        assert record["host"] == "127.0.0.1"
        assert record["port"] == 80
        assert record["level"] == "error"

    def test_call_fields_override_bound(self):
        stream = io.StringIO()
        StructuredLogger(stream).bind(worker=1).info("e", worker=2)
        (record,) = _lines(stream)
        assert record["worker"] == 2


class TestDisabled:
    def test_disabled_is_a_noop(self):
        logger = StructuredLogger.disabled()
        assert not logger.enabled
        logger.info("never")  # must not raise

    def test_bind_of_disabled_stays_disabled(self):
        assert not StructuredLogger.disabled().bind(a=1).enabled
