"""Tracer/Trace/Span unit tests."""

import time

import pytest

from repro.obs import (
    DEFAULT_RING_SIZE,
    TRACE_ENV_VAR,
    Trace,
    Tracer,
    new_trace_id,
    tracing_enabled_by_env,
)


class TestTraceIds:
    def test_shape(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex

    def test_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestEnvGate:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV_VAR, value)
        assert tracing_enabled_by_env()
        assert Tracer.from_env().enabled

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV_VAR, value)
        assert not tracing_enabled_by_env()
        assert not Tracer.from_env().enabled

    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert not tracing_enabled_by_env()

    def test_disabled_tracer_issues_no_traces(self):
        tracer = Tracer(enabled=False)
        assert tracer.start("r1") is None
        tracer.finish(None)  # tolerated no-op
        assert tracer.stats()["recorded_total"] == 0


class TestRecording:
    def test_record_keeps_caller_measurement(self):
        trace = Trace(request_id="r1")
        span = trace.record("extract", 0.125, words=9)
        assert span.duration == 0.125
        assert span.attributes == {"words": 9}
        assert trace.stage_durations() == {"extract": 0.125}

    def test_span_context_manager_times_itself(self):
        trace = Trace()
        with trace.span("work", size=3):
            time.sleep(0.01)
        (span,) = trace.spans
        assert span.name == "work"
        assert span.duration >= 0.01
        assert span.status == "ok"

    def test_span_context_manager_marks_abort_on_exception(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("work"):
                raise RuntimeError("boom")
        assert trace.spans[0].status == "aborted"

    def test_mark_aborted(self):
        trace = Trace()
        trace.mark_aborted("coherence")
        assert trace.status == "aborted"
        assert trace.to_json()["aborted_stage"] == "coherence"

    def test_to_json_shape(self):
        trace = Trace(request_id="r1")
        trace.record("extract", 0.01)
        trace.annotate(degraded=False)
        payload = trace.to_json()
        assert payload["request_id"] == "r1"
        assert payload["status"] == "ok"
        assert payload["attributes"] == {"degraded": False}
        (span,) = payload["spans"]
        assert span == {
            "name": "extract",
            "start_offset_seconds": span["start_offset_seconds"],
            "duration_seconds": 0.01,
            "status": "ok",
        }


class TestRingBuffer:
    def _finished(self, tracer, request_id):
        trace = tracer.start(request_id)
        trace.record("total", 0.001)
        tracer.finish(trace)
        return trace

    def test_default_ring_size(self):
        assert Tracer().ring_size == DEFAULT_RING_SIZE

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)

    def test_ring_is_bounded_newest_first(self):
        tracer = Tracer(ring_size=3)
        for i in range(5):
            self._finished(tracer, f"r{i}")
        recent = tracer.recent()
        assert [t["request_id"] for t in recent] == ["r4", "r3", "r2"]
        stats = tracer.stats()
        assert stats["buffered"] == 3
        assert stats["recorded_total"] == 5

    def test_limit(self):
        tracer = Tracer()
        for i in range(4):
            self._finished(tracer, f"r{i}")
        assert len(tracer.recent(limit=2)) == 2

    def test_slow_filter(self):
        tracer = Tracer()
        fast = tracer.start("fast")
        tracer.finish(fast)
        slow = tracer.start("slow")
        slow.duration = None
        time.sleep(0.02)
        tracer.finish(slow)
        kept = tracer.recent(slow_seconds=0.02)
        assert [t["request_id"] for t in kept] == ["slow"]

    def test_get_by_id(self):
        tracer = Tracer()
        trace = self._finished(tracer, "r1")
        found = tracer.get(trace.trace_id)
        assert found is not None and found["request_id"] == "r1"
        assert tracer.get("feedfacefeedface") is None

    def test_finish_is_idempotent(self):
        tracer = Tracer(ring_size=4)
        trace = tracer.start("r1")
        tracer.finish(trace)
        first_duration = trace.duration
        tracer.finish(trace)
        assert tracer.stats()["recorded_total"] == 1
        assert trace.duration == first_duration
