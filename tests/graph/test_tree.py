"""Rooted-tree structure tests."""

import pytest

from repro.graph.tree import RootedTree
from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture
def tree():
    #        r
    #      /   \
    #     a(1)  b(2)
    #    /  \
    #  c(3)  d(4)
    t = RootedTree("r")
    t.add_edge("r", "a", 1.0)
    t.add_edge("r", "b", 2.0)
    t.add_edge("a", "c", 3.0)
    t.add_edge("a", "d", 4.0)
    return t


class TestConstruction:
    def test_single_node_tree(self):
        t = RootedTree("solo")
        assert t.is_singleton()
        assert t.weight() == 0.0

    def test_add_edge_unknown_parent_raises(self):
        t = RootedTree("r")
        with pytest.raises(KeyError):
            t.add_edge("ghost", "x", 1.0)

    def test_add_duplicate_child_raises(self, tree):
        with pytest.raises(ValueError):
            tree.add_edge("b", "a", 1.0)

    def test_from_graph_orients_edges(self):
        g = WeightedGraph()
        g.add_edge("x", "y", 1.0)
        g.add_edge("y", "z", 2.0)
        t = RootedTree.from_graph(g, "y")
        assert t.parent("x") == "y"
        assert t.parent("z") == "y"
        assert t.parent("y") is None


class TestQueries:
    def test_weight(self, tree):
        assert tree.weight() == pytest.approx(10.0)

    def test_counts(self, tree):
        assert tree.node_count == 5
        assert tree.edge_count == 4

    def test_children(self, tree):
        assert set(tree.children("a")) == {"c", "d"}

    def test_edge_weight_to(self, tree):
        assert tree.edge_weight_to("d") == 4.0

    def test_subtree_weight(self, tree):
        assert tree.subtree_weight("a") == pytest.approx(7.0)
        assert tree.subtree_weight("c") == 0.0

    def test_subtree_nodes(self, tree):
        assert set(tree.subtree_nodes("a")) == {"a", "c", "d"}

    def test_subtree_copy(self, tree):
        sub = tree.subtree("a")
        assert sub.root == "a"
        assert sub.node_count == 3
        assert sub.weight() == pytest.approx(7.0)


class TestTraversal:
    def test_post_order_children_before_parents(self, tree):
        order = list(tree.post_order_nodes())
        assert order.index("c") < order.index("a")
        assert order.index("d") < order.index("a")
        assert order[-1] == "r"

    def test_post_order_edges_cover_all(self, tree):
        edges = list(tree.post_order_edges())
        assert len(edges) == 4
        children = {e.child for e in edges}
        assert children == {"a", "b", "c", "d"}

    def test_post_order_edge_after_subtree(self, tree):
        edges = [e.child for e in tree.post_order_edges()]
        assert edges.index("c") < edges.index("a")


class TestMutation:
    def test_detach_subtree(self, tree):
        detached = tree.detach_subtree("a")
        assert detached.root == "a"
        assert detached.node_count == 3
        assert tree.node_count == 2
        assert "c" not in tree
        # connecting edge removed from both
        assert tree.weight() == pytest.approx(2.0)
        assert detached.weight() == pytest.approx(7.0)

    def test_detach_root_raises(self, tree):
        with pytest.raises(ValueError):
            tree.detach_subtree("r")

    def test_adopt_replaces_structure(self, tree):
        other = RootedTree("r")
        other.add_edge("r", "x", 9.0)
        tree.adopt(other)
        assert tree.node_count == 2
        assert tree.weight() == pytest.approx(9.0)

    def test_adopt_wrong_root_raises(self, tree):
        with pytest.raises(ValueError):
            tree.adopt(RootedTree("different"))


class TestConversion:
    def test_to_graph_roundtrip(self, tree):
        g = tree.to_graph()
        assert g.edge_count == 4
        rebuilt = RootedTree.from_graph(g, "r")
        assert rebuilt.node_set() == tree.node_set()
        assert rebuilt.weight() == pytest.approx(tree.weight())
