"""Hopcroft--Karp tests, including maximality vs. brute force."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.graph.matching import hopcroft_karp, is_valid_matching


class TestBasics:
    def test_perfect_matching(self):
        adj = {"l1": ["r1"], "l2": ["r2"]}
        matching = hopcroft_karp(["l1", "l2"], adj)
        assert matching == {"l1": "r1", "l2": "r2"}

    def test_contested_right_vertex(self):
        adj = {"l1": ["r1"], "l2": ["r1"]}
        matching = hopcroft_karp(["l1", "l2"], adj)
        assert len(matching) == 1

    def test_augmenting_path_found(self):
        # greedy l1->r1 would block l2; augmentation resolves it
        adj = {"l1": ["r1", "r2"], "l2": ["r1"]}
        matching = hopcroft_karp(["l1", "l2"], adj)
        assert len(matching) == 2
        assert matching["l2"] == "r1"
        assert matching["l1"] == "r2"

    def test_empty_graph(self):
        assert hopcroft_karp([], {}) == {}

    def test_left_vertex_without_edges(self):
        adj = {"l1": [], "l2": ["r1"]}
        matching = hopcroft_karp(["l1", "l2"], adj)
        assert matching == {"l2": "r1"}

    def test_long_augmenting_chain(self):
        # Only three right vertices exist, so the maximum is 3 — reached
        # only by pushing l1 onto r1 and cascading the rest.
        adj = {
            "l1": ["r1"],
            "l2": ["r1", "r2"],
            "l3": ["r2", "r3"],
            "l4": ["r3"],
        }
        matching = hopcroft_karp(["l1", "l2", "l3", "l4"], adj)
        assert len(matching) == 3
        assert matching["l1"] == "r1"

    def test_matching_is_valid(self):
        adj = {"l1": ["r1", "r2"], "l2": ["r2"], "l3": ["r1", "r3"]}
        matching = hopcroft_karp(list(adj), adj)
        assert is_valid_matching(matching, adj)

    def test_is_valid_matching_rejects_duplicates(self):
        assert not is_valid_matching(
            {"l1": "r1", "l2": "r1"}, {"l1": ["r1"], "l2": ["r1"]}
        )

    def test_is_valid_matching_rejects_non_edges(self):
        assert not is_valid_matching({"l1": "r9"}, {"l1": ["r1"]})


def _brute_force_max_matching(left, adj):
    best = 0
    for assignment in itertools.product(*([[None] + adj[l] for l in left] or [[None]])):
        used = [a for a in assignment if a is not None]
        if len(used) != len(set(used)):
            continue
        best = max(best, len(used))
    return best


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.data())
def test_matching_size_matches_brute_force(n_left, n_right, data):
    left = [f"l{i}" for i in range(n_left)]
    rights = [f"r{i}" for i in range(n_right)]
    adj = {
        l: [r for r in rights if data.draw(st.booleans())] for l in left
    }
    matching = hopcroft_karp(left, adj)
    assert is_valid_matching(matching, adj)
    assert len(matching) == _brute_force_max_matching(left, adj)
