"""Kruskal MST tests, including optimality vs. brute force."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.mst import kruskal_mst, minimum_spanning_forest, sorted_edges
from repro.graph.weighted_graph import WeightedGraph


def _path_graph(weights):
    g = WeightedGraph()
    for i, w in enumerate(weights):
        g.add_edge(i, i + 1, w)
    return g


class TestKruskal:
    def test_tree_of_tree_is_itself(self):
        g = _path_graph([1.0, 2.0, 3.0])
        mst = kruskal_mst(g)
        assert mst.edge_count == 3
        assert mst.total_weight() == pytest.approx(6.0)

    def test_drops_heaviest_cycle_edge(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        g.add_edge("a", "c", 5.0)
        mst = kruskal_mst(g)
        assert not mst.has_edge("a", "c")
        assert mst.total_weight() == pytest.approx(3.0)

    def test_disconnected_raises(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_node("island")
        with pytest.raises(ValueError):
            kruskal_mst(g)

    def test_forest_handles_components(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("c", "d", 2.0)
        forest = minimum_spanning_forest(g)
        assert forest.edge_count == 2

    def test_single_node(self):
        g = WeightedGraph()
        g.add_node("solo")
        mst = kruskal_mst(g)
        assert mst.node_count == 1
        assert mst.edge_count == 0

    def test_sorted_edges_non_decreasing(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 3.0)
        g.add_edge("b", "c", 1.0)
        g.add_edge("c", "d", 2.0)
        weights = [w for _, _, w in sorted_edges(g)]
        assert weights == sorted(weights)

    def test_deterministic_under_ties(self):
        g = WeightedGraph()
        for u, v in itertools.combinations("abcd", 2):
            g.add_edge(u, v, 1.0)
        first = sorted(repr(e) for e in kruskal_mst(g).edges())
        second = sorted(repr(e) for e in kruskal_mst(g).edges())
        assert first == second


def _brute_force_mst_weight(graph: WeightedGraph) -> float:
    """Minimum spanning tree weight by exhaustive edge-subset search."""
    edges = graph.edges()
    n = graph.node_count
    best = None
    for subset in itertools.combinations(edges, n - 1):
        candidate = WeightedGraph()
        for node in graph.nodes():
            candidate.add_node(node)
        for u, v, w in subset:
            candidate.add_edge(u, v, w)
        if candidate.is_connected():
            weight = sum(w for _, _, w in subset)
            if best is None or weight < best:
                best = weight
    return best


@settings(max_examples=30, deadline=None)
@given(
    st.integers(3, 6),
    st.data(),
)
def test_mst_matches_brute_force(n, data):
    """Kruskal's MST weight equals the exhaustive optimum on small graphs."""
    g = WeightedGraph()
    nodes = list(range(n))
    # ensure connectivity with a random spanning path, then extra edges
    for i in range(n - 1):
        g.add_edge(i, i + 1, data.draw(st.floats(0.1, 10.0)))
    for u, v in itertools.combinations(nodes, 2):
        if not g.has_edge(u, v) and data.draw(st.booleans()):
            g.add_edge(u, v, data.draw(st.floats(0.1, 10.0)))
    mst = kruskal_mst(g)
    assert mst.edge_count == n - 1
    assert mst.total_weight() == pytest.approx(_brute_force_mst_weight(g))
