"""Unit and property tests for the disjoint-set forest."""

from hypothesis import given, strategies as st

from repro.graph.union_find import UnionFind


class TestBasics:
    def test_new_item_is_own_representative(self):
        uf = UnionFind()
        assert uf.find("a") == "a"

    def test_union_merges_sets(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.connected("a", "b")

    def test_union_same_set_returns_false(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.union("b", "a") is False

    def test_transitive_connectivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_disjoint_items_not_connected(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")

    def test_constructor_registers_items(self):
        uf = UnionFind(["x", "y", "z"])
        assert len(uf) == 3
        assert uf.set_count == 3

    def test_set_count_decreases_on_union(self):
        uf = UnionFind(["a", "b", "c"])
        uf.union("a", "b")
        assert uf.set_count == 2
        uf.union("b", "c")
        assert uf.set_count == 1

    def test_add_is_idempotent(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("a")
        assert len(uf) == 1

    def test_contains(self):
        uf = UnionFind(["a"])
        assert "a" in uf
        assert "b" not in uf

    def test_find_adds_unseen_items(self):
        uf = UnionFind()
        uf.find("ghost")
        assert "ghost" in uf

    def test_sets_partition(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        uf.union("c", "d")
        sets = sorted(sorted(s) for s in uf.sets())
        assert sets == [["a", "b"], ["c", "d"]]

    def test_iter_yields_all_items(self):
        uf = UnionFind(["a", "b"])
        assert sorted(uf) == ["a", "b"]

    def test_works_with_tuple_items(self):
        uf = UnionFind()
        uf.union((1, 2), (3, 4))
        assert uf.connected((1, 2), (3, 4))

    def test_deep_chain_no_recursion_error(self):
        uf = UnionFind()
        for i in range(10000):
            uf.union(i, i + 1)
        assert uf.connected(0, 10000)


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=100
        )
    )
    def test_set_count_invariant(self, unions):
        """items - successful unions == number of disjoint sets."""
        uf = UnionFind()
        successful = 0
        for a, b in unions:
            if uf.union(a, b):
                successful += 1
        assert uf.set_count == len(uf) - successful

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60
        )
    )
    def test_connectivity_matches_reference(self, unions):
        """Union-find agrees with a naive set-merging reference."""
        uf = UnionFind()
        reference = {}
        for a, b in unions:
            uf.union(a, b)
            sa = reference.setdefault(a, {a})
            sb = reference.setdefault(b, {b})
            if sa is not sb:
                merged = sa | sb
                for item in merged:
                    reference[item] = merged
        for a in reference:
            for b in reference:
                assert uf.connected(a, b) == (reference[a] is reference[b])

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15))))
    def test_representative_is_member_of_set(self, unions):
        uf = UnionFind()
        for a, b in unions:
            uf.union(a, b)
        for group in uf.sets():
            representative = uf.find(group[0])
            assert representative in group
