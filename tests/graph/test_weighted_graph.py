"""Tests for the weighted undirected graph container."""

import pytest

from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture
def triangle():
    g = WeightedGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 3.0)
    return g


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 0.5)
        assert "a" in g and "b" in g

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a", 1.0)

    def test_negative_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -0.1)

    def test_add_edge_overwrites_weight(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 2.0)
        assert g.weight("a", "b") == 2.0
        assert g.edge_count == 1

    def test_isolated_node(self):
        g = WeightedGraph()
        g.add_node("lonely")
        assert g.node_count == 1
        assert g.degree("lonely") == 0


class TestQueries:
    def test_weight_symmetric(self, triangle):
        assert triangle.weight("a", "b") == triangle.weight("b", "a")

    def test_get_weight_default(self, triangle):
        assert triangle.get_weight("a", "zz") is None
        assert triangle.get_weight("a", "zz", 9.0) == 9.0

    def test_edges_listed_once(self, triangle):
        assert len(triangle.edges()) == 3

    def test_edge_count(self, triangle):
        assert triangle.edge_count == 3

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == pytest.approx(6.0)

    def test_neighbours(self, triangle):
        assert set(triangle.neighbours("a")) == {"b", "c"}

    def test_degree(self, triangle):
        assert triangle.degree("b") == 2

    def test_has_edge(self, triangle):
        assert triangle.has_edge("a", "b")
        assert not triangle.has_edge("a", "missing")


class TestMutation:
    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "b")
        assert not triangle.has_edge("a", "b")
        assert triangle.node_count == 3

    def test_remove_edge_missing_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.remove_edge("a", "zz")

    def test_remove_node_clears_incident_edges(self, triangle):
        triangle.remove_node("a")
        assert "a" not in triangle
        assert triangle.edge_count == 1  # only (b, c) left
        assert not triangle.has_edge("b", "a")


class TestTransforms:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge("a", "b")
        assert triangle.has_edge("a", "b")

    def test_pruned_removes_heavy_edges(self, triangle):
        pruned = triangle.pruned(1.5)
        assert pruned.has_edge("a", "b")
        assert not pruned.has_edge("b", "c")
        # nodes are preserved even when isolated
        assert pruned.node_count == 3

    def test_pruned_keeps_boundary_edge(self, triangle):
        pruned = triangle.pruned(2.0)
        assert pruned.has_edge("b", "c")

    def test_subgraph(self, triangle):
        sub = triangle.subgraph(["a", "b"])
        assert sub.node_count == 2
        assert sub.has_edge("a", "b")
        assert sub.edge_count == 1

    def test_connected_components(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("c", "d", 1.0)
        g.add_node("e")
        components = sorted(sorted(c) for c in g.connected_components())
        assert components == [["a", "b"], ["c", "d"], ["e"]]

    def test_is_connected(self, triangle):
        assert triangle.is_connected()
        triangle.add_node("island")
        assert not triangle.is_connected()

    def test_empty_graph_is_connected(self):
        assert WeightedGraph().is_connected()
