"""Dijkstra shortest-path tests."""

import pytest

from repro.graph.paths import dijkstra, path_weight, shortest_path
from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture
def diamond():
    g = WeightedGraph()
    g.add_edge("s", "a", 1.0)
    g.add_edge("s", "b", 4.0)
    g.add_edge("a", "b", 1.0)
    g.add_edge("a", "t", 5.0)
    g.add_edge("b", "t", 1.0)
    return g


class TestDijkstra:
    def test_distances(self, diamond):
        distances, _ = dijkstra(diamond, "s")
        assert distances["t"] == pytest.approx(3.0)  # s-a-b-t
        assert distances["b"] == pytest.approx(2.0)  # s-a-b

    def test_source_distance_zero(self, diamond):
        distances, _ = dijkstra(diamond, "s")
        assert distances["s"] == 0.0

    def test_unknown_source_raises(self, diamond):
        with pytest.raises(KeyError):
            dijkstra(diamond, "zzz")

    def test_max_distance_truncates(self, diamond):
        distances, _ = dijkstra(diamond, "s", max_distance=2.0)
        assert "t" not in distances
        assert "b" in distances

    def test_unreachable_node_absent(self):
        g = WeightedGraph()
        g.add_edge("s", "a", 1.0)
        g.add_node("island")
        distances, _ = dijkstra(g, "s")
        assert "island" not in distances

    def test_heterogeneous_node_types_no_comparison_error(self):
        # heap tie-breaking must never compare nodes directly
        g = WeightedGraph()
        g.add_edge("s", ("tuple", 1), 1.0)
        g.add_edge("s", "string", 1.0)
        g.add_edge(("tuple", 1), "t", 1.0)
        g.add_edge("string", "t", 1.0)
        distances, _ = dijkstra(g, "s")
        assert distances["t"] == pytest.approx(2.0)


class TestShortestPath:
    def test_path_sequence(self, diamond):
        assert shortest_path(diamond, "s", "t") == ["s", "a", "b", "t"]

    def test_path_to_self(self, diamond):
        assert shortest_path(diamond, "s", "s") == ["s"]

    def test_unreachable_raises(self):
        g = WeightedGraph()
        g.add_edge("s", "a", 1.0)
        g.add_node("island")
        with pytest.raises(ValueError):
            shortest_path(g, "s", "island")

    def test_path_weight_matches_distance(self, diamond):
        path = shortest_path(diamond, "s", "t")
        distances, _ = dijkstra(diamond, "s")
        assert path_weight(diamond, path) == pytest.approx(distances["t"])
