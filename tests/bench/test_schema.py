"""Bench JSON schema: summarize() statistics and record validation."""

import pytest

from repro.bench import SCHEMA_VERSION, summarize, validate_report


class TestSummarize:
    def test_single_sample(self):
        stats = summarize([0.5])
        assert stats["count"] == 1
        assert stats["mean"] == 0.5
        assert stats["min"] == stats["max"] == stats["p50"] == 0.5
        assert stats["stdev"] == 0.0

    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["total"] == pytest.approx(10.0)
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["p50"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0])["p50"] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestValidateReport:
    def test_real_run_is_valid(self, micro_report):
        assert validate_report(micro_report) == []

    def test_schema_version_is_current(self, micro_report):
        assert micro_report["schema_version"] == SCHEMA_VERSION

    def test_non_object_rejected(self):
        assert validate_report([1, 2, 3]) != []

    def test_newer_schema_rejected(self, micro_report):
        tampered = dict(micro_report)
        tampered["schema_version"] = SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_report(tampered))

    def test_missing_scales_rejected(self, micro_report):
        tampered = dict(micro_report)
        tampered["scales"] = []
        assert any("scales" in p for p in validate_report(tampered))

    def test_missing_stage_rejected(self, micro_report):
        import copy

        tampered = copy.deepcopy(micro_report)
        del tampered["scales"][0]["stages"]["coherence"]
        assert any("coherence" in p for p in validate_report(tampered))

    def test_non_numeric_stat_rejected(self, micro_report):
        import copy

        tampered = copy.deepcopy(micro_report)
        tampered["scales"][0]["stages"]["total"]["mean"] = "fast"
        assert any("total" in p for p in validate_report(tampered))

    def test_missing_env_rejected(self, micro_report):
        tampered = dict(micro_report)
        del tampered["env"]
        assert any("env" in p for p in validate_report(tampered))

    def test_valid_deadline_block_accepted(self, micro_report):
        report = dict(micro_report)
        report["deadline"] = {
            "scale": 0.05,
            "documents": 4,
            "workers": 2,
            "deadline_seconds": 0.05,
            "wall_seconds": 0.4,
            "completed": 1,
            "degraded": 3,
            "errors": 0,
            "cancelled": 3,
            "timeouts": 0,
            "abandoned": 0,
            "aborted_stages": {"coherence": 2, "disambiguation": 1},
            "degraded_latency": summarize([0.06, 0.07, 0.08]),
            "completed_latency": None,
        }
        assert validate_report(report) == []

    def test_malformed_deadline_block_rejected(self, micro_report):
        report = dict(micro_report)
        report["deadline"] = {"documents": 4}
        problems = validate_report(report)
        assert any("deadline_seconds" in p for p in problems)
        assert any("aborted_stages" in p for p in problems)


class TestSnapshotFields:
    def test_bad_context_source_rejected(self, micro_report):
        import copy

        bad = copy.deepcopy(micro_report)
        bad["context_source"] = "lukewarm"
        assert any("context_source" in p for p in validate_report(bad))

    def test_snapshot_source_requires_block(self, micro_report):
        import copy

        bad = copy.deepcopy(micro_report)
        bad["context_source"] = "snapshot"
        bad["snapshot"] = None
        assert any("snapshot block" in p for p in validate_report(bad))

    def test_older_record_without_fields_still_valid(self, micro_report):
        import copy

        old = copy.deepcopy(micro_report)
        old.pop("context_source", None)
        old.pop("snapshot", None)
        assert validate_report(old) == []


class TestRoutingBlock:
    def test_real_run_carries_valid_routing_block(self, micro_report):
        routing = micro_report["routing"]
        assert routing["routed_fast"] + routing["routed_exact"] == (
            routing["documents"]
        )
        assert routing["config"]["cover_mode"] in ("fast", "auto")
        assert validate_report(micro_report) == []

    def test_bad_cover_mode_rejected(self, micro_report):
        import copy

        bad = copy.deepcopy(micro_report)
        bad["routing"]["config"]["cover_mode"] = "warp"
        assert any("cover_mode" in p for p in validate_report(bad))

    def test_missing_parity_numbers_rejected(self, micro_report):
        import copy

        bad = copy.deepcopy(micro_report)
        del bad["routing"]["parity"]["max_abs_delta"]
        assert any("max_abs_delta" in p for p in validate_report(bad))

    def test_non_numeric_hot_stage_rejected(self, micro_report):
        import copy

        bad = copy.deepcopy(micro_report)
        bad["routing"]["hot_stage_seconds"]["routed"] = "quick"
        assert any("hot_stage" in p for p in validate_report(bad))

    def test_version_1_record_without_routing_still_valid(
        self, micro_report
    ):
        import copy

        old = copy.deepcopy(micro_report)
        old.pop("routing", None)
        assert validate_report(old) == []
