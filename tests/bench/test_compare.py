"""bench compare: regression detection between two bench records."""

import copy

import pytest

from repro.bench import (
    BenchSchemaError,
    compare_reports,
    format_comparison,
    load_report,
)
from repro.bench.harness import write_report


def degrade(report, stage, factor, scale_index=0):
    """A deep copy with one stage's mean multiplied by *factor*."""
    worse = copy.deepcopy(report)
    block = worse["scales"][scale_index]["stages"][stage]
    block["mean"] *= factor
    return worse


class TestCompare:
    def test_identical_reports_ok(self, micro_report):
        result = compare_reports(micro_report, micro_report)
        assert result.ok
        assert result.regressions == []
        assert result.deltas  # something above the noise floor was compared

    def test_degraded_stage_fails(self, micro_report):
        worse = degrade(micro_report, "total", 2.0)
        result = compare_reports(micro_report, worse, threshold=0.25)
        assert not result.ok
        assert any(d.name == "total" for d in result.regressions)

    def test_threshold_is_respected(self, micro_report):
        worse = degrade(micro_report, "total", 1.4)
        assert not compare_reports(micro_report, worse, threshold=0.25).ok
        assert compare_reports(micro_report, worse, threshold=0.75).ok

    def test_improvement_never_fails(self, micro_report):
        better = degrade(micro_report, "total", 0.25)
        result = compare_reports(micro_report, better)
        assert result.ok
        assert any(d.name == "total" for d in result.improvements)

    def test_noise_floor_skips_fast_stages(self, micro_report):
        # A stage at 1 microsecond in both records is jitter, not signal,
        # even when the ratio is huge.
        tiny = copy.deepcopy(micro_report)
        tiny["scales"][0]["stages"]["total"]["mean"] = 1e-6
        worse = degrade(tiny, "total", 50.0)
        result = compare_reports(tiny, worse, min_seconds=0.001)
        assert all(d.name != "total" for d in result.deltas)
        assert any("total" in s for s in result.skipped)

    def test_service_throughput_compared(self, micro_report):
        worse = copy.deepcopy(micro_report)
        worse["service"]["documents_per_second"] /= 3.0
        result = compare_reports(micro_report, worse)
        assert any(
            d.name == "service.seconds_per_document" for d in result.regressions
        )

    def test_disjoint_scales_skipped(self, micro_report):
        other = copy.deepcopy(micro_report)
        other["scales"][0]["scale"] = 99.0
        result = compare_reports(micro_report, other)
        assert result.ok
        assert result.skipped

    def test_bad_threshold_rejected(self, micro_report):
        with pytest.raises(ValueError):
            compare_reports(micro_report, micro_report, threshold=0.0)


class TestRoutingParity:
    def _with_parity(self, report, ok, max_abs_delta, tolerance=0.005):
        tweaked = copy.deepcopy(report)
        parity = tweaked["routing"]["parity"]
        parity["ok"] = ok
        parity["max_abs_delta"] = max_abs_delta
        parity["tolerance"] = tolerance
        return tweaked

    def test_recorded_parity_failure_fails_compare(self, micro_report):
        drifted = self._with_parity(micro_report, ok=False, max_abs_delta=0.02)
        result = compare_reports(micro_report, drifted)
        assert not result.ok
        assert result.parity_failures
        assert result.regressions == []  # timing is clean; quality is not

    def test_baseline_parity_never_checked(self, micro_report):
        # The gate judges the CURRENT record only — an old baseline that
        # failed parity must not poison comparisons against a clean run.
        drifted = self._with_parity(micro_report, ok=False, max_abs_delta=0.02)
        assert compare_reports(drifted, micro_report).ok

    def test_tolerance_override_relaxes(self, micro_report):
        drifted = self._with_parity(micro_report, ok=False, max_abs_delta=0.02)
        relaxed = compare_reports(
            micro_report, drifted, routing_tolerance=0.05
        )
        assert relaxed.ok

    def test_tolerance_override_tightens(self, micro_report):
        # Recorded as passing, but re-judged against a stricter bar.
        passing = self._with_parity(micro_report, ok=True, max_abs_delta=0.004)
        strict = compare_reports(
            micro_report, passing, routing_tolerance=0.001
        )
        assert not strict.ok
        assert strict.parity_failures

    def test_record_without_routing_block_is_fine(self, micro_report):
        old = copy.deepcopy(micro_report)
        old.pop("routing", None)
        assert compare_reports(micro_report, old, routing_tolerance=0.0).ok

    def test_parity_failure_formats_as_fail(self, micro_report):
        drifted = self._with_parity(micro_report, ok=False, max_abs_delta=0.02)
        text = format_comparison(compare_reports(micro_report, drifted))
        assert "FAIL" in text
        assert "routing parity" in text


class TestFormatting:
    def test_ok_verdict(self, micro_report):
        text = format_comparison(compare_reports(micro_report, micro_report))
        assert "OK" in text

    def test_fail_verdict_names_stage(self, micro_report):
        worse = degrade(micro_report, "coherence", 10.0)
        text = format_comparison(compare_reports(micro_report, worse))
        assert "FAIL" in text
        assert "coherence" in text


class TestLoadReport:
    def test_roundtrip(self, micro_report, tmp_path):
        path = write_report(micro_report, tmp_path / "BENCH_x.json")
        assert load_report(path)["rev"] == micro_report["rev"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            load_report(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError):
            load_report(path)

    def test_wrong_kind_raises(self, micro_report, tmp_path):
        tampered = dict(micro_report)
        tampered["kind"] = "something-else"
        path = write_report(tampered, tmp_path / "BENCH_y.json")
        with pytest.raises(BenchSchemaError):
            load_report(path)
