"""The ``bench`` CLI: run + compare subcommands, exit codes, artifacts."""

import copy
import json

import pytest

from repro.bench import validate_report
from repro.bench.harness import write_report
from repro.cli import main


@pytest.fixture(scope="module")
def cli_report_path(tmp_path_factory):
    """One micro bench run through the real CLI entry point."""
    path = tmp_path_factory.mktemp("bench") / "BENCH_cli.json"
    rc = main(
        [
            "bench",
            "--scales",
            "0.05",
            "--repeats",
            "1",
            "--warmup",
            "0",
            "--workers",
            "2",
            "--deadline",
            "30",
            "--label",
            "cli-test",
            "--output",
            str(path),
        ]
    )
    assert rc == 0
    return path


class TestBenchRun:
    def test_writes_valid_record(self, cli_report_path):
        payload = json.loads(cli_report_path.read_text())
        assert validate_report(payload) == []
        assert payload["label"] == "cli-test"

    def test_scales_flag_respected(self, cli_report_path):
        payload = json.loads(cli_report_path.read_text())
        assert [entry["scale"] for entry in payload["scales"]] == [0.05]

    def test_deadline_flag_records_block(self, cli_report_path):
        payload = json.loads(cli_report_path.read_text())
        block = payload["deadline"]
        assert block is not None
        assert block["deadline_seconds"] == 30.0
        assert payload["config"]["deadline_seconds"] == 30.0
        # A 30s budget on the micro corpus: nothing degrades.
        assert block["completed"] == block["documents"]
        assert block["degraded"] == 0 and block["cancelled"] == 0

    def test_bad_scales_flag_errors(self, tmp_path, capsys):
        rc = main(["bench", "--scales", "fast,slow"])
        assert rc == 2
        assert "scales" in capsys.readouterr().err


class TestBenchCompare:
    def test_identical_exits_zero(self, cli_report_path):
        rc = main(
            ["bench", "compare", str(cli_report_path), str(cli_report_path)]
        )
        assert rc == 0

    def test_degraded_exits_one(self, cli_report_path, tmp_path):
        payload = json.loads(cli_report_path.read_text())
        worse = copy.deepcopy(payload)
        for block in worse["scales"][0]["stages"].values():
            block["mean"] *= 3.0
        worse_path = write_report(worse, tmp_path / "BENCH_worse.json")
        rc = main(
            ["bench", "compare", str(cli_report_path), str(worse_path)]
        )
        assert rc == 1

    def test_warn_only_exits_zero(self, cli_report_path, tmp_path):
        payload = json.loads(cli_report_path.read_text())
        worse = copy.deepcopy(payload)
        for block in worse["scales"][0]["stages"].values():
            block["mean"] *= 3.0
        worse_path = write_report(worse, tmp_path / "BENCH_worse.json")
        rc = main(
            [
                "bench",
                "compare",
                str(cli_report_path),
                str(worse_path),
                "--warn-only",
            ]
        )
        assert rc == 0

    def test_invalid_file_exits_two(self, cli_report_path, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(["bench", "compare", str(cli_report_path), str(bad)])
        assert rc == 2
        assert "invalid" in capsys.readouterr().err
