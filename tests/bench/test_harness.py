"""The benchmark harness end to end (one shared micro run)."""

import json

import pytest

from repro.bench import BenchConfig, default_report_name, git_rev, run_benchmark
from repro.bench.schema import CORE_STAGES


class TestBenchConfig:
    def test_quick_profile_is_small(self):
        quick = BenchConfig.quick()
        assert max(quick.scales) < 1.0
        assert quick.repeats == 1
        assert quick.warmup == 0

    def test_rejects_empty_scales(self):
        with pytest.raises(ValueError):
            BenchConfig(scales=())

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            BenchConfig(scales=(0.5, -1.0))

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            BenchConfig(repeats=0)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            BenchConfig(deadline_seconds=0.0)


class TestReportShape:
    def test_json_serializable(self, micro_report):
        parsed = json.loads(json.dumps(micro_report))
        assert parsed["kind"] == "tenet-bench"

    def test_all_core_stages_timed(self, micro_report):
        stages = micro_report["scales"][0]["stages"]
        for stage in CORE_STAGES:
            assert stage in stages
            assert stages[stage]["count"] > 0
            assert stages[stage]["mean"] >= 0.0

    def test_stage_counts_match_documents(self, micro_report):
        entry = micro_report["scales"][0]
        assert entry["stages"]["total"]["count"] == (
            entry["documents"] * entry["runs"]
        )

    def test_graph_sizes_recorded(self, micro_report):
        graph = micro_report["scales"][0]["graph"]
        assert graph["mentions"] > 0
        assert graph["nodes"] > graph["mentions"]  # mentions + candidates
        assert graph["edges"] > 0
        assert graph["total_weight"] > 0.0
        assert graph["max_degree"] >= 1

    def test_env_fingerprint(self, micro_report):
        env = micro_report["env"]
        assert env["numpy"]
        assert env["python"].count(".") >= 1

    def test_peak_rss_recorded(self, micro_report):
        assert micro_report["peak_rss_kb"] is None or micro_report["peak_rss_kb"] > 0

    def test_coherence_comparison_present_and_faster(self, micro_report):
        comparison = micro_report["coherence_comparison"]
        assert comparison is not None
        assert comparison["parity"] is True
        # The batched path must beat the scalar per-pair reference.
        assert comparison["speedup"] > 1.0

    def test_service_throughput_and_caches(self, micro_report):
        service = micro_report["service"]
        assert service["documents_per_second"] > 0
        assert service["errors"] == 0
        caches = service["caches"]
        # The repro.caching LRU counters are part of the trajectory.
        assert caches["candidates"]["hits"] + caches["candidates"]["misses"] > 0
        assert "similarity" in caches
        assert "alias_fuzzy" in caches
        assert "similarity_batch" in caches
        assert caches["similarity_batch"]["batch_calls"] > 0


class TestDeadlineMode:
    def test_absent_without_flag(self, micro_report):
        # The micro fixture runs without --deadline: the block is null
        # and the config records the absence.
        assert micro_report["deadline"] is None
        assert micro_report["config"]["deadline_seconds"] is None

    def test_generous_deadline_completes_everything(self, suite, suite_context):
        from repro.bench.harness import _deadline_mode
        from repro.core.config import TenetConfig

        texts = [doc.text for doc in suite.kore50.documents[:3]]
        block = _deadline_mode(
            suite_context, TenetConfig(), 0.15, texts, 2, 30.0
        )
        assert block["completed"] == 3
        assert block["degraded"] == 0
        assert block["errors"] == 0
        assert block["cancelled"] == 0
        assert block["completed_latency"]["count"] == 3
        assert block["degraded_latency"] is None

    def test_tight_deadline_degrades_and_counts_aborts(
        self, suite, suite_context
    ):
        from repro.bench.harness import _deadline_mode
        from repro.core.config import TenetConfig

        texts = [doc.text for doc in suite.kore50.documents[:3]]
        # An already-expired budget: every request aborts cooperatively
        # (usually at the first checkpoint) and degrades.
        block = _deadline_mode(
            suite_context, TenetConfig(), 0.15, texts, 2, 1e-4
        )
        assert block["completed"] == 0
        assert block["degraded"] == 3
        assert block["errors"] == 0
        assert block["degraded_latency"]["count"] == 3
        # Each degraded request was either answered by its cancelled
        # worker or degraded caller-side after the grace.
        assert block["cancelled"] + block["timeouts"] >= 3
        assert sum(block["aborted_stages"].values()) == block["cancelled"]


class TestTraceMode:
    def test_block_present_and_valid(self, micro_report):
        from repro.bench.schema import validate_report

        trace = micro_report["trace"]
        assert trace is not None
        assert micro_report["config"]["trace"] is True
        assert validate_report(micro_report) == []

    def test_every_document_traced(self, micro_report):
        trace = micro_report["trace"]
        assert trace["recorded"] == trace["documents"] > 0
        assert trace["stages"]["total"]["count"] == trace["documents"]

    def test_spans_agree_with_stage_timings(self, micro_report):
        # Spans reuse the stage stopwatch, so the parity delta is zero.
        assert micro_report["trace"]["span_stage_max_delta_seconds"] == 0.0

    def test_absent_without_flag(self, suite, suite_context):
        from repro.bench.harness import _trace_mode
        from repro.core.linker import TenetLinker

        # The harness emits null without --trace; the helper itself is
        # exercised directly on a tiny corpus here.
        linker = TenetLinker(suite_context)
        texts = [doc.text for doc in suite.kore50.documents[:2]]
        block = _trace_mode(linker, 0.15, texts)
        assert block["documents"] == 2
        assert block["span_stage_max_delta_seconds"] == 0.0
        for stage in ("extract", "candidates", "coherence", "total"):
            assert block["stages"][stage]["count"] == 2


class TestNaming:
    def test_default_report_name_embeds_rev(self):
        assert default_report_name("abc123") == "BENCH_abc123.json"

    def test_git_rev_env_override(self, monkeypatch):
        monkeypatch.setenv("BENCH_REV", "pinned")
        assert git_rev() == "pinned"
        assert default_report_name() == "BENCH_pinned.json"


class TestWarmStart:
    def test_cold_run_is_labelled_cold(self, micro_report):
        assert micro_report["context_source"] == "cold"
        assert micro_report["snapshot"] is None
        assert micro_report["context_build_seconds"] > 0.0

    def test_snapshot_run_records_identity(self, tmp_path):
        from repro.bench import validate_report

        config = BenchConfig(
            scales=(0.05,),
            repeats=1,
            warmup=0,
            service_workers=2,
            scalar_baseline=False,
            label="micro-warm",
        )
        report = run_benchmark(config, snapshot_path=tmp_path / "store")
        assert validate_report(report) == []
        assert report["context_source"] == "snapshot"
        snapshot = report["snapshot"]
        assert snapshot["id"].startswith("snap-")
        # First run pays the build (load-or-build), and says so.
        assert snapshot["source"] == "built"
        assert snapshot["load_seconds"] > 0.0
        # Second run warm-starts from the persisted snapshot.
        rerun = run_benchmark(config, snapshot_path=tmp_path / "store")
        assert rerun["snapshot"]["source"] == "warm"
        assert rerun["snapshot"]["content_digest"] == snapshot["content_digest"]

    def test_warm_and_cold_stage_structure_agree(self, micro_report, tmp_path):
        config = BenchConfig(
            scales=(0.05,),
            repeats=1,
            warmup=0,
            service_workers=2,
            scalar_baseline=False,
        )
        warm = run_benchmark(config, snapshot_path=tmp_path / "store")
        cold_entry = micro_report["scales"][0]
        warm_entry = warm["scales"][0]
        # Same corpus, same graph: the warm context links identically.
        assert warm_entry["documents"] == cold_entry["documents"]
        assert warm_entry["graph"] == cold_entry["graph"]
