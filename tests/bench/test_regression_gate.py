"""The CI regression gate against the committed baseline.

Two halves: (1) explicit per-stage mean-seconds ceilings over
``benchmarks/results/BENCH_baseline.json`` — the committed numbers must
live inside their budget with a tolerance band, so a regressed baseline
cannot be silently re-committed; (2) the ``bench compare`` gate itself,
proven by injecting a synthetic regression and watching the comparison
(and the CLI exit code) fail.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.bench import compare_reports, load_report
from repro.cli import main

BASELINE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "results"
    / "BENCH_baseline.json"
)

# Budget for every per-stage mean in the committed baseline, in seconds.
# Roughly 3x the recorded means at the time the gate was introduced —
# wide enough for recording-machine variance, tight enough that a real
# algorithmic regression (2x on the solver, say) cannot land silently.
STAGE_CEILINGS_SECONDS = {
    "extract": 0.005,
    "candidates": 0.002,
    "coherence": 0.008,
    "tree_cover": 0.008,
    "grouping": 0.005,
    "disambiguation": 0.011,
    "total": 0.035,
}

# Serving throughput floor: the baseline's service pass must sustain at
# least this many documents/second (recorded: ~79 docs/s over 2 workers).
SERVICE_MIN_DOCS_PER_SECOND = 25.0


@pytest.fixture(scope="module")
def baseline():
    return load_report(BASELINE_PATH)


class TestBaselineCeilings:
    def test_baseline_exists_and_validates(self, baseline):
        assert baseline["kind"] == "tenet-bench"
        assert baseline["scales"], "baseline records no scales"

    def test_every_stage_mean_under_its_ceiling(self, baseline):
        over_budget = []
        for entry in baseline["scales"]:
            for stage, ceiling in STAGE_CEILINGS_SECONDS.items():
                mean = entry["stages"][stage]["mean"]
                if mean > ceiling:
                    over_budget.append(
                        f"{stage}@{entry['scale']:g}: "
                        f"mean {1000 * mean:.2f}ms > "
                        f"ceiling {1000 * ceiling:.2f}ms"
                    )
        assert not over_budget, (
            "committed baseline exceeds its stage budget (either revert "
            "the regression or consciously raise the ceiling): "
            + "; ".join(over_budget)
        )

    def test_ceilings_cover_every_core_stage(self, baseline):
        for entry in baseline["scales"]:
            missing = set(STAGE_CEILINGS_SECONDS) - set(entry["stages"])
            assert not missing, f"baseline lost stages {missing}"

    def test_service_throughput_floor(self, baseline):
        dps = baseline["service"]["documents_per_second"]
        assert dps >= SERVICE_MIN_DOCS_PER_SECOND, (
            f"baseline service throughput {dps:.1f} docs/s below the "
            f"{SERVICE_MIN_DOCS_PER_SECOND:g} docs/s floor"
        )


def _inject_regression(report, stage="tree_cover", factor=2.0):
    """A deep-copied record with one stage slowed at every scale."""
    degraded = copy.deepcopy(report)
    for entry in degraded["scales"]:
        entry["stages"][stage]["mean"] *= factor
    return degraded


class TestSyntheticRegressionFailsTheGate:
    def test_compare_reports_flags_it(self, baseline):
        degraded = _inject_regression(baseline, factor=2.0)
        result = compare_reports(baseline, degraded, threshold=0.5)
        assert not result.ok
        assert any(
            delta.name == "tree_cover" for delta in result.regressions
        )
        # The same wobble inside the band passes.
        mild = _inject_regression(baseline, factor=1.3)
        assert compare_reports(baseline, mild, threshold=0.5).ok

    def test_cli_exits_nonzero(self, baseline, tmp_path):
        current = tmp_path / "BENCH_current.json"
        current.write_text(
            json.dumps(_inject_regression(baseline, factor=2.0))
        )
        rc = main(
            [
                "bench",
                "compare",
                str(BASELINE_PATH),
                str(current),
                "--threshold",
                "0.5",
            ]
        )
        assert rc == 1
        # --warn-only (explicitly requested) still reports but passes.
        rc = main(
            [
                "bench",
                "compare",
                str(BASELINE_PATH),
                str(current),
                "--threshold",
                "0.5",
                "--warn-only",
            ]
        )
        assert rc == 0

    def test_unregressed_copy_passes_cli(self, baseline, tmp_path):
        current = tmp_path / "BENCH_same.json"
        current.write_text(json.dumps(baseline))
        rc = main(
            ["bench", "compare", str(BASELINE_PATH), str(current)]
        )
        assert rc == 0


def _with_load_block(report, p95, goodput, mode="open"):
    augmented = copy.deepcopy(report)
    augmented["load"] = {
        "config": {"mode": mode},
        "goodput_rps": goodput,
        "latency": {"p95_seconds": p95},
    }
    return augmented


class TestLoadBlockJoinsTheGate:
    def test_load_p95_regression_fails(self, baseline):
        before = _with_load_block(baseline, p95=0.1, goodput=50.0)
        after = _with_load_block(baseline, p95=0.3, goodput=50.0)
        result = compare_reports(before, after, threshold=0.5)
        assert not result.ok
        assert any(
            delta.name == "load.p95_seconds" for delta in result.regressions
        )

    def test_goodput_drop_fails(self, baseline):
        before = _with_load_block(baseline, p95=0.1, goodput=60.0)
        after = _with_load_block(baseline, p95=0.1, goodput=20.0)
        result = compare_reports(before, after, threshold=0.5)
        assert not result.ok
        assert any(
            delta.name == "load.seconds_per_goodput_request"
            for delta in result.regressions
        )

    def test_mixed_modes_are_skipped_not_compared(self, baseline):
        before = _with_load_block(baseline, p95=0.1, goodput=60.0, mode="open")
        after = _with_load_block(
            baseline, p95=9.9, goodput=1.0, mode="closed"
        )
        result = compare_reports(before, after, threshold=0.5)
        assert result.ok
        assert any("loop modes" in reason for reason in result.skipped)

    def test_absent_load_block_compares_nothing(self, baseline):
        result = compare_reports(baseline, baseline, threshold=0.5)
        assert not any(d.name.startswith("load.") for d in result.deltas)
