"""The load generator: accounting invariants over a real server.

The live tests boot the actual serving stack on an ephemeral port and
run very short load windows; they assert *invariants* (every offered
request is accounted for exactly once, shed requests carry their hint,
the block passes schema validation) rather than wall-clock numbers.
"""

import threading

import pytest

from repro.bench.load import (
    LoadConfig,
    format_load_summary,
    percentile,
    run_load,
)
from repro.bench.schema import validate_report
from repro.service.engine import LinkingService, ServiceConfig
from repro.service.overload import OverloadConfig
from repro.service.server import create_server

TEXTS = (
    "Alerio Vantra presented the quarterly results in Sentara City.",
    "The Sentara Council elected a new chair after the harbour vote.",
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4, 1.0]
        assert percentile(values, 0.5) == pytest.approx(0.3)
        assert percentile(values, 0.99) == pytest.approx(1.0)
        assert percentile(values, 0.0) == pytest.approx(0.1)

    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLoadConfig:
    def test_defaults_valid(self):
        config = LoadConfig()
        assert config.mode == "closed"
        assert config.to_json()["qps"] is None  # closed loop has no rate

    def test_open_loop_reports_qps(self):
        assert LoadConfig(mode="open", qps=5.0).to_json()["qps"] == 5.0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "sawtooth"},
            {"duration_seconds": 0},
            {"concurrency": 0},
            {"qps": 0},
            {"clients": 0},
            {"timeout_seconds": 0},
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            LoadConfig(**overrides)


def _stub_report(load_block):
    """Minimal valid record embedding *load_block* for schema checks."""
    stats = {
        "count": 1, "total": 0.1, "mean": 0.1, "min": 0.1,
        "max": 0.1, "p50": 0.1, "stdev": 0.0,
    }
    stages = {
        stage: dict(stats)
        for stage in (
            "extract", "candidates", "coherence", "tree_cover",
            "grouping", "disambiguation", "total",
        )
    }
    return {
        "schema_version": 1,
        "kind": "tenet-bench",
        "rev": "test",
        "env": {"python": "3", "platform": "test", "numpy": "0"},
        "scales": [{"scale": 1.0, "documents": 1, "stages": stages}],
        "load": load_block,
    }


@pytest.fixture(scope="module")
def plain_server(suite_context):
    service = LinkingService(suite_context, ServiceConfig(workers=2))
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def _assert_accounting(block):
    """Every offered request lands in exactly one outcome bucket."""
    assert block["offered"] > 0
    assert (
        block["completed"]
        + block["rejected"]
        + block["errors_5xx"]
        + block["errors_other"]
        == block["offered"]
    )
    assert sum(block["status_counts"].values()) == block["offered"]
    assert 0.0 <= block["shed_rate"] <= 1.0


class TestClosedLoop:
    def test_accounting_and_schema(self, plain_server):
        url, _service = plain_server
        block = run_load(
            url,
            TEXTS,
            LoadConfig(mode="closed", duration_seconds=0.5, concurrency=2),
        )
        _assert_accounting(block)
        assert block["completed"] > 0
        assert block["errors_5xx"] == 0
        latency = block["latency"]
        assert latency is not None
        assert latency["p50_seconds"] <= latency["p99_seconds"]
        assert validate_report(_stub_report(block)) == []

    def test_summary_line(self, plain_server):
        url, _service = plain_server
        block = run_load(
            url,
            TEXTS,
            LoadConfig(mode="closed", duration_seconds=0.25, concurrency=1),
        )
        line = format_load_summary(block)
        assert "goodput" in line and "p99" in line and "closed" in line

    def test_empty_corpus_rejected(self, plain_server):
        url, _service = plain_server
        with pytest.raises(ValueError):
            run_load(url, [], LoadConfig())


class TestOpenLoop:
    def test_offered_follows_schedule_not_capacity(self, plain_server):
        url, _service = plain_server
        block = run_load(
            url,
            TEXTS,
            LoadConfig(
                mode="open", duration_seconds=0.5, qps=20.0, concurrency=4
            ),
        )
        # The open loop *always* offers the planned arrivals, no matter
        # how the server is keeping up — that is the point of the mode.
        assert block["offered"] == 10
        _assert_accounting(block)
        assert validate_report(_stub_report(block)) == []


class TestSheddingVisibleToClients:
    def test_rate_limited_server_sheds_with_retry_after(self, suite_context):
        service = LinkingService(
            suite_context,
            ServiceConfig(
                workers=2,
                overload=OverloadConfig(
                    rate_limit_per_second=0.001, rate_limit_burst=1
                ),
            ),
        )
        server = create_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            block = run_load(
                f"http://{host}:{port}",
                TEXTS,
                LoadConfig(
                    mode="closed",
                    duration_seconds=0.75,
                    concurrency=2,
                    clients=3,
                ),
            )
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)
        _assert_accounting(block)
        # burst=1 per client, three client ids: exactly three requests
        # are admitted, everything else is shed as 429.
        assert block["completed"] == 3
        assert block["rejected"] == block["offered"] - 3
        assert block["shed_rate"] > 0
        assert block["errors_5xx"] == 0
        # Every 429 carried its Retry-After header.
        assert block["retry_after_missing"] == 0
        # Client-observed shedding reconciles with the engine counters.
        counters = service.snapshot()["counters"]
        assert counters["requests.rejected"] == block["rejected"]
