"""Shared fixtures: one micro benchmark run reused across bench tests."""

import pytest

from repro.bench import BenchConfig, run_benchmark


@pytest.fixture(scope="session")
def micro_report():
    """A real (tiny) harness run: one scale, one repeat, no warmup."""
    config = BenchConfig(
        scales=(0.05,),
        repeats=1,
        warmup=0,
        service_workers=2,
        trace=True,
        label="micro",
    )
    return run_benchmark(config)
