"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.canopies import build_mention_groups
from repro.eval.metrics import PRF
from repro.kb.alias_index import AliasIndex
from repro.kb.dump import kb_from_json_dump, kb_to_json_dump
from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase
from repro.nlp.sentences import split_sentences
from repro.nlp.spans import Span, SpanKind, spans_overlap
from repro.nlp.tokenizer import tokenize
from repro.textnorm import normalize_phrase

# ---------------------------------------------------------------------------
# text normalisation
# ---------------------------------------------------------------------------

text_strategy = st.text(
    alphabet=string.ascii_letters + string.digits + " .,:'-!?",
    max_size=60,
)


class TestTextNormProperties:
    @given(text_strategy)
    def test_idempotent(self, text):
        once = normalize_phrase(text)
        assert normalize_phrase(once) == once

    @given(text_strategy)
    def test_case_insensitive(self, text):
        assert normalize_phrase(text.upper()) == normalize_phrase(text.lower())

    @given(text_strategy)
    def test_no_leading_trailing_space(self, text):
        normalized = normalize_phrase(text)
        assert normalized == normalized.strip()


# ---------------------------------------------------------------------------
# tokenizer / sentences
# ---------------------------------------------------------------------------

class TestTokenizerProperties:
    @given(text_strategy)
    def test_offsets_reconstruct_tokens(self, text):
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    @given(text_strategy)
    def test_tokens_non_overlapping_and_ordered(self, text):
        tokens = tokenize(text)
        for a, b in zip(tokens, tokens[1:]):
            assert a.end <= b.start

    @given(text_strategy)
    def test_sentences_partition_tokens(self, text):
        tokens = tokenize(text)
        sentences = split_sentences(tokens)
        covered = []
        for sentence in sentences:
            covered.extend(range(sentence.token_start, sentence.token_end))
        assert covered == list(range(len(tokens)))


# ---------------------------------------------------------------------------
# alias index
# ---------------------------------------------------------------------------

alias_strategy = st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=20)


class TestAliasIndexProperties:
    @given(
        st.lists(
            st.tuples(alias_strategy, st.integers(1, 200)),
            min_size=1,
            max_size=8,
        )
    )
    def test_priors_sum_to_one_per_alias(self, entries):
        kb = KnowledgeBase()
        shared = "shared alias"
        for i, (label, popularity) in enumerate(entries):
            kb.add_entity(
                EntityRecord(
                    f"Q{i}", f"{label} {i}", aliases=(shared,),
                    popularity=popularity,
                )
            )
        index = AliasIndex.from_kb(kb)
        hits = index.lookup_entities(shared)
        assert len(hits) == len(entries)
        assert sum(h.prior for h in hits) == pytest.approx(1.0)
        priors = [h.prior for h in hits]
        assert priors == sorted(priors, reverse=True)


# ---------------------------------------------------------------------------
# KB dump round trip
# ---------------------------------------------------------------------------

ident = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def small_kbs(draw):
    kb = KnowledgeBase()
    n_entities = draw(st.integers(1, 6))
    n_predicates = draw(st.integers(1, 3))
    for i in range(n_entities):
        kb.add_entity(
            EntityRecord(
                f"Q{i}",
                draw(ident),
                aliases=tuple(draw(st.lists(ident, max_size=2))),
                types=tuple(draw(st.lists(ident, max_size=2))),
                popularity=draw(st.integers(0, 100)),
            )
        )
    for i in range(n_predicates):
        kb.add_predicate(PredicateRecord(f"P{i}", draw(ident)))
    for _ in range(draw(st.integers(0, 8))):
        s = f"Q{draw(st.integers(0, n_entities - 1))}"
        p = f"P{draw(st.integers(0, n_predicates - 1))}"
        if draw(st.booleans()):
            kb.add_fact(Triple(s, p, f"Q{draw(st.integers(0, n_entities - 1))}"))
        else:
            kb.add_fact(Triple(s, p, draw(ident), object_is_literal=True))
    return kb


class TestDumpProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_kbs())
    def test_round_trip_lossless(self, kb):
        rebuilt = kb_from_json_dump(kb_to_json_dump(kb))
        assert {t.as_tuple() for t in rebuilt.triples()} == {
            t.as_tuple() for t in kb.triples()
        }
        for entity in kb.entities():
            assert rebuilt.get_entity(entity.entity_id) == entity
        for predicate in kb.predicates():
            assert rebuilt.get_predicate(predicate.predicate_id) == predicate

    @settings(max_examples=40, deadline=None)
    @given(small_kbs())
    def test_dump_is_fixed_point(self, kb):
        """dump(load(dump(kb))) == dump(kb) — the canonical-bytes
        property the snapshot store's content hashes rely on."""
        dump = kb_to_json_dump(kb)
        assert kb_to_json_dump(kb_from_json_dump(dump)) == dump

    @settings(max_examples=40, deadline=None)
    @given(small_kbs())
    def test_record_insertion_order_is_canonicalised(self, kb):
        """Two KBs holding the same records produce identical dumps even
        when entities/predicates were registered in different orders
        (claims keep insertion order — it is part of KB identity)."""
        shuffled = KnowledgeBase()
        for entity in reversed(list(kb.entities())):
            shuffled.add_entity(entity)
        for predicate in reversed(list(kb.predicates())):
            shuffled.add_predicate(predicate)
        for triple in kb.triples():
            shuffled.add_fact(triple)
        assert kb_to_json_dump(shuffled) == kb_to_json_dump(kb)


# ---------------------------------------------------------------------------
# canopies
# ---------------------------------------------------------------------------

class TestCanopyProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 100))
    def test_all_singles_always_present(self, n, seed):
        """For any feature-joined chain, the all-singles canopy exists and
        every canopy covers the chain's token extent exactly once."""
        words = " of ".join(f"Word{i}" for i in range(n))
        text = f"{words}."
        tokens = tokenize(text)
        inventory = [
            Span(f"Word{i}", 2 * i, 2 * i + 1, 0, SpanKind.NOUN)
            for i in range(n)
        ]
        # add the full merge span when n > 1
        if n > 1:
            inventory.append(
                Span(words, 0, 2 * n - 1, 0, SpanKind.NOUN)
            )
        groups = build_mention_groups(tokens, inventory, [])
        chain_groups = [g for g in groups if len(g.short_mentions) == n]
        assert chain_groups
        group = chain_groups[0]
        sizes = {len(c.members) for c in group.canopies}
        assert n in sizes  # all-singles
        for canopy in group.canopies:
            # members of one canopy never overlap each other
            members = list(canopy.members)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    assert not spans_overlap(a, b)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetricProperties:
    @given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50))
    def test_prf_bounds(self, correct, extra_predicted, extra_gold):
        prf = PRF(
            correct=correct,
            predicted=correct + extra_predicted,
            gold=correct + extra_gold,
        )
        assert 0.0 <= prf.precision <= 1.0
        assert 0.0 <= prf.recall <= 1.0
        assert min(prf.precision, prf.recall) - 1e-9 <= prf.f1
        assert prf.f1 <= max(prf.precision, prf.recall) + 1e-9

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
            max_size=10,
        )
    )
    def test_merge_associative(self, triples):
        from repro.eval.metrics import aggregate

        prfs = [
            PRF(c, c + p, c + g) for c, p, g in triples
        ]
        total = aggregate(prfs)
        assert total.correct == sum(p.correct for p in prfs)
        assert total.predicted == sum(p.predicted for p in prfs)
        assert total.gold == sum(p.gold for p in prfs)
