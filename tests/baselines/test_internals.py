"""White-box unit tests of each baseline's disambiguation core."""

import numpy as np
import pytest

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.core.candidates import MentionCandidates
from repro.core.linker import LinkingContext
from repro.embeddings.store import EmbeddingStore
from repro.kb.alias_index import CandidateHit
from repro.kb.records import EntityRecord, PredicateRecord
from repro.kb.store import KnowledgeBase
from repro.nlp.spans import Span, SpanKind


@pytest.fixture(scope="module")
def toy_context():
    """A hand-built context with controlled geometry.

    Embeddings: A-cluster concepts share one direction, B-cluster
    another; priors come from popularities set below.
    """
    kb = KnowledgeBase()
    kb.add_entity(EntityRecord("A1", "Anna Cluster", aliases=("Shared",), popularity=70))
    kb.add_entity(EntityRecord("A2", "Andy Cluster", popularity=50))
    kb.add_entity(EntityRecord("B1", "Beta Cluster", aliases=("Shared",), popularity=30))
    kb.add_entity(EntityRecord("B2", "Bobby Cluster", popularity=50))
    kb.add_predicate(PredicateRecord("P1", "knows", aliases=("knows",)))
    context = LinkingContext.build(kb)
    # overwrite embeddings with a controlled geometry
    store = EmbeddingStore(4)
    store.add("A1", np.array([1.0, 0.1, 0.0, 0.0]))
    store.add("A2", np.array([1.0, -0.1, 0.0, 0.0]))
    store.add("B1", np.array([0.0, 0.0, 1.0, 0.1]))
    store.add("B2", np.array([0.0, 0.0, 1.0, -0.1]))
    store.add("P1", np.array([0.5, 0.5, 0.5, 0.5]))
    context.embeddings = store
    return context


def _noun(text, start, sentence=0):
    n = len(text.split())
    return Span(text, start, start + n, sentence, SpanKind.NOUN,
                char_start=start * 10, char_end=start * 10 + len(text))


def _candidates(mapping):
    return MentionCandidates(dict(mapping))


class TestEarlDensity:
    def test_density_counts_connected_top_candidates(self, toy_context):
        earl = EarlLinker(toy_context)
        shared = _noun("Shared", 0)
        anchor = _noun("Andy Cluster", 5)
        candidates = _candidates(
            {
                shared: [
                    CandidateHit("A1", 0.7, "entity"),
                    CandidateHit("B1", 0.3, "entity"),
                ],
                anchor: [CandidateHit("A2", 1.0, "entity")],
            }
        )
        # density of A1 (connected to top candidate A2) vs B1 (not)
        d_a1 = earl._connection_density(
            CandidateHit("A1", 0.7, "entity"), shared, [shared, anchor], candidates
        )
        d_b1 = earl._connection_density(
            CandidateHit("B1", 0.3, "entity"), shared, [shared, anchor], candidates
        )
        assert d_a1 == 1.0
        assert d_b1 == 0.0

    def test_earl_picks_connected_candidate(self, toy_context):
        earl = EarlLinker(toy_context)
        shared = _noun("Shared", 0)
        anchor = _noun("Andy Cluster", 5)
        chosen = earl._disambiguate(
            None,
            _candidates(
                {
                    shared: [
                        CandidateHit("A1", 0.3, "entity"),
                        CandidateHit("B1", 0.7, "entity"),
                    ],
                    anchor: [CandidateHit("A2", 1.0, "entity")],
                }
            ),
        )
        assert chosen[shared].concept_id == "A1"  # density beats prior


class TestKBPearl:
    def test_document_graph_contains_all_pairs(self, toy_context):
        kbp = KBPearlLinker(toy_context)
        a, b = _noun("x", 0), _noun("y", 5)
        candidates = _candidates(
            {
                a: [CandidateHit("A1", 1.0, "entity")],
                b: [CandidateHit("B1", 1.0, "entity")],
            }
        )
        graph = kbp._build_document_graph([a, b], candidates)
        assert ("A1", "B1") in graph
        assert graph[("A1", "B1")] == graph[("B1", "A1")]

    def test_near_neighbours_window(self, toy_context):
        kbp = KBPearlLinker(toy_context, window=1)
        mentions = [_noun(t, i * 5) for i, t in enumerate("abcde")]
        neighbours = kbp._near_neighbours(mentions, 2)
        assert neighbours == [mentions[1], mentions[3]]

    def test_threshold_blocks_weak_links(self, toy_context):
        strict = KBPearlLinker(toy_context, link_threshold=0.99)
        a = _noun("x", 0)
        chosen = strict._disambiguate(
            None, _candidates({a: [CandidateHit("A1", 0.5, "entity")]})
        )
        assert a not in chosen

    def test_prior_coherence_blend(self, toy_context):
        kbp = KBPearlLinker(toy_context, link_threshold=0.0)
        shared = _noun("Shared", 0)
        anchor = _noun("Andy Cluster", 5)
        chosen = kbp._disambiguate(
            None,
            _candidates(
                {
                    shared: [
                        CandidateHit("A1", 0.45, "entity"),
                        CandidateHit("B1", 0.55, "entity"),
                    ],
                    anchor: [CandidateHit("A2", 1.0, "entity")],
                }
            ),
        )
        # 0.5*0.45 + 0.5*~1.0 for A1 beats 0.5*0.55 + 0.5*~0 for B1
        assert chosen[shared].concept_id == "A1"


class TestQKBfly:
    def test_peeling_keeps_coherent_candidates(self, toy_context):
        qkb = QKBflyLinker(toy_context, coherence_threshold=0.0)
        shared = _noun("Shared", 0)
        anchor = _noun("Andy Cluster", 5)
        chosen = qkb._disambiguate(
            None,
            _candidates(
                {
                    shared: [
                        CandidateHit("A1", 0.3, "entity"),
                        CandidateHit("B1", 0.7, "entity"),
                    ],
                    anchor: [CandidateHit("A2", 1.0, "entity")],
                }
            ),
        )
        assert chosen[shared].concept_id == "A1"

    def test_threshold_drops_incoherent_survivors(self, toy_context):
        qkb = QKBflyLinker(toy_context, coherence_threshold=0.9)
        a = _noun("x", 0)
        b = _noun("y", 5)
        chosen = qkb._disambiguate(
            None,
            _candidates(
                {
                    a: [CandidateHit("A1", 1.0, "entity")],
                    b: [CandidateHit("B1", 1.0, "entity")],  # orthogonal
                }
            ),
        )
        assert chosen == {}

    def test_single_mention_always_links(self, toy_context):
        qkb = QKBflyLinker(toy_context, coherence_threshold=0.9)
        a = _noun("x", 0)
        chosen = qkb._disambiguate(
            None, _candidates({a: [CandidateHit("A1", 1.0, "entity")]})
        )
        assert chosen[a].concept_id == "A1"

    def test_relations_ignored(self, toy_context):
        qkb = QKBflyLinker(toy_context)
        rel = Span("knows", 2, 3, 0, SpanKind.RELATION)
        chosen = qkb._disambiguate(
            None, _candidates({rel: [CandidateHit("P1", 1.0, "predicate")]})
        )
        assert chosen == {}


class TestMinTree:
    def test_minimum_pair_edge_commits_both(self, toy_context):
        mt = MinTreeLinker(toy_context)
        a, b = _noun("x", 0), _noun("y", 5)
        chosen = mt._disambiguate(
            None,
            _candidates(
                {
                    a: [
                        CandidateHit("A1", 0.5, "entity"),
                        CandidateHit("B1", 0.5, "entity"),
                    ],
                    b: [CandidateHit("A2", 1.0, "entity")],
                }
            ),
        )
        assert chosen[a].concept_id == "A1"
        assert chosen[b].concept_id == "A2"

    def test_forced_connectivity_single_mention(self, toy_context):
        mt = MinTreeLinker(toy_context)
        a = _noun("x", 0)
        chosen = mt._disambiguate(
            None,
            _candidates(
                {
                    a: [
                        CandidateHit("A1", 0.9, "entity"),
                        CandidateHit("B1", 0.1, "entity"),
                    ]
                }
            ),
        )
        # no pair edges exist; falls back to the prior
        assert chosen[a].concept_id == "A1"


class TestFalconExtraction:
    def test_capitalised_prefix_limited_to_three_tokens(self, context, world):
        falcon = FalconLinker(context)
        extraction = falcon.pipeline.extract(
            "Royal Heritage Society Council Foundation arrived."
        )
        mentions = falcon.select_mentions(extraction)
        noun_mentions = [m for m in mentions if m.kind is SpanKind.NOUN]
        assert all(m.length <= 3 for m in noun_mentions)
