"""Baseline linker tests: each system's characteristic behaviour."""

import pytest

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.nlp.spans import SpanKind


@pytest.fixture(scope="module")
def ambiguous_doc(world):
    """A document whose subject surface is an alias trap: gold is NOT the
    most popular owner, but gold is coherent with the object."""
    from repro.textnorm import normalize_phrase

    kb = world.kb
    owners = {}
    for e in kb.entities():
        for alias in e.aliases:
            owners.setdefault(normalize_phrase(alias), []).append(e)
    for alias_key, entities in owners.items():
        if len(entities) < 2:
            continue
        top = max(entities, key=lambda e: e.popularity)
        for gold in entities:
            if gold is top or "person" not in gold.types:
                continue
            field = next(
                (
                    t.obj
                    for t in kb.triples()
                    if t.subject == gold.entity_id
                    and t.predicate == world.predicate("field")
                ),
                None,
            )
            if field is None:
                continue
            surface = next(
                a for a in gold.aliases if normalize_phrase(a) == alias_key
            )
            topic = kb.get_entity(field)
            return {
                "text": f"{surface} studies {topic.label}.",
                "gold": gold.entity_id,
                "top": top.entity_id,
                "surface": surface,
            }
    pytest.skip("no trap alias found in world")


class TestFalcon:
    def test_links_by_prior(self, context, ambiguous_doc):
        falcon = FalconLinker(context)
        result = falcon.link(ambiguous_doc["text"])
        link = result.find_entity(ambiguous_doc["surface"])
        if link is not None:
            # Falcon must pick the most popular sense, never the coherent one
            assert link.concept_id == ambiguous_doc["top"]

    def test_no_isolated_detection(self, context):
        falcon = FalconLinker(context)
        result = falcon.link("Glowberry Cleanse is located in Brooklyn.")
        assert result.non_linkable == []

    def test_short_text_extraction_misses_lowercase_topics(self, context, world):
        falcon = FalconLinker(context)
        topic = world.kb.get_entity(
            world.entities_of_type("computer_science", "field")[0]
        )
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = falcon.link(f"{person.label} studies {topic.label}.")
        # lowercase topical phrases are outside Falcon's recogniser
        assert result.find_entity(topic.label) is None

    def test_links_relations(self, context, world):
        falcon = FalconLinker(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = falcon.link(f"{person.label} was awarded gold.")
        assert result.find_relation("was awarded") is not None


class TestCoherenceBaselines:
    @pytest.mark.parametrize(
        "factory",
        [EarlLinker, KBPearlLinker, MinTreeLinker, QKBflyLinker],
        ids=["earl", "kbpearl", "mintree", "qkbfly"],
    )
    def test_links_something(self, context, world, factory):
        linker = factory(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = linker.link(f"{person.label} studies databases.")
        assert result.find_entity(person.label) is not None

    def test_mintree_entities_only(self, context, world):
        linker = MinTreeLinker(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = linker.link(f"{person.label} was awarded gold.")
        assert result.relation_links == []

    def test_qkbfly_entities_only(self, context, world):
        linker = QKBflyLinker(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = linker.link(f"{person.label} was awarded gold.")
        assert result.relation_links == []

    def test_qkbfly_detects_isolated(self, context):
        linker = QKBflyLinker(context)
        result = linker.link("Glowberry Cleanse is located in Brooklyn.")
        # Glowberry has no candidates; QKBfly reports it as new concept
        assert any("Glowberry" in s.text for s in result.non_linkable)

    def test_kbpearl_detects_isolated(self, context):
        linker = KBPearlLinker(context)
        result = linker.link("Glowberry Cleanse is located in Brooklyn.")
        assert any("Glowberry" in s.text for s in result.non_linkable)

    def test_earl_shallow_candidates(self, context):
        assert EarlLinker(context).generator.max_candidates == 2

    def test_earl_relation_normalisation_misses_multiword(self, context, world):
        linker = EarlLinker(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        city = world.kb.get_entity(world.cities[0])
        result = linker.link(f"{person.label} was born in {city.label}.")
        # "was born in" reduces to head lemma "born"/"bear": not an alias
        assert result.find_relation("was born in") is None

    def test_disambiguate_mentions_mode(self, context, world, suite, suite_context):
        from repro.eval.runner import gold_mentions_to_spans

        linker = MinTreeLinker(suite_context)
        document = suite.kore50.documents[0]
        spans = gold_mentions_to_spans(document, SpanKind.NOUN)
        result = linker.disambiguate_mentions(document.text, spans)
        assert result.entity_links


class TestSharedExtraction:
    def test_all_systems_use_same_pipeline_class(self, context):
        linkers = [
            FalconLinker(context),
            EarlLinker(context),
            KBPearlLinker(context),
            MinTreeLinker(context),
            QKBflyLinker(context),
        ]
        for linker in linkers:
            assert type(linker.pipeline).__name__ == "ExtractionPipeline"
