"""Deterministic workload generators and their snapshot payload."""

from __future__ import annotations

import random

import pytest

from repro.session.workloads import (
    SESSION_WORKLOAD_FORMAT_VERSION,
    build_session_workloads,
    conversation_scripts,
    split_text,
    stream_chunkings,
    workloads_from_payload,
)


class TestSplitText:
    def test_concatenation_identity(self):
        text = "Alpha beta gamma. Delta epsilon zeta. Eta theta iota."
        for chunks in (2, 3, 5, 20):
            for seed in range(5):
                parts = split_text(text, chunks, random.Random(seed))
                assert "".join(parts) == text
                assert all(parts)

    def test_sentence_aligned_cuts_land_after_periods(self):
        text = "One sentence here. Another one there. And a third one."
        parts = split_text(text, 3, random.Random(0), sentence_aligned=True)
        assert "".join(parts) == text
        for part in parts[:-1]:
            assert part.endswith(". ")

    def test_sentence_aligned_falls_back_to_whitespace(self):
        text = "no sentence boundary in this text at all"
        parts = split_text(text, 3, random.Random(0), sentence_aligned=True)
        assert "".join(parts) == text
        assert len(parts) == 3

    def test_unsplittable_text_returned_whole(self):
        assert split_text("word", 4, random.Random(0)) == ["word"]

    def test_deterministic_for_seed(self):
        text = "Alpha beta gamma delta. Epsilon zeta eta theta."
        first = split_text(text, 3, random.Random(42))
        second = split_text(text, 3, random.Random(42))
        assert first == second


class TestStreamChunkings:
    def test_chunks_reassemble_documents(self, documents):
        workloads = stream_chunkings(documents, chunks=4, seed=7, limit=None)
        by_doc_id = {document.doc_id: document for document in documents}
        assert workloads
        for workload in workloads:
            assert workload.text == by_doc_id[workload.doc_id].text
            assert len(workload.chunks) >= 2
            assert workload.gold == tuple(by_doc_id[workload.doc_id].gold)

    def test_deterministic_and_limited(self, documents):
        first = stream_chunkings(documents, chunks=3, seed=9, limit=4)
        second = stream_chunkings(documents, chunks=3, seed=9, limit=4)
        assert first == second
        assert len(first) <= 4

    def test_rejects_single_chunk(self, documents):
        with pytest.raises(ValueError):
            stream_chunkings(documents, chunks=1)


class TestConversationScripts:
    def test_script_shape(self, documents):
        scripts = conversation_scripts(documents, seed=7, limit=None)
        assert scripts
        for script in scripts:
            exercises = [turn.exercises for turn in script.turns]
            assert exercises == ["opening", "anaphora", "re-mention"]
            # The anaphora turn's pronoun refers back into the opening.
            assert script.turns[1].utterance.startswith("He ")
            assert script.turns[1].expected_concepts
            assert script.turns[2].expected_concepts

    def test_deterministic(self, documents):
        assert conversation_scripts(documents, seed=7) == conversation_scripts(
            documents, seed=7
        )


class TestPayloadRoundTrip:
    def test_round_trips_losslessly(self, documents):
        payload = build_session_workloads(documents, seed=7, chunks=4)
        assert payload["format_version"] == SESSION_WORKLOAD_FORMAT_VERSION
        streams, scripts = workloads_from_payload(payload)
        assert streams == stream_chunkings(documents, chunks=4, seed=7)
        assert scripts == conversation_scripts(documents, seed=7)

    def test_rejects_unknown_format_version(self, documents):
        payload = build_session_workloads(documents, seed=7)
        payload["format_version"] = SESSION_WORKLOAD_FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            workloads_from_payload(payload)

    def test_payload_is_json_safe(self, documents):
        import json

        payload = build_session_workloads(documents, seed=7)
        assert json.loads(json.dumps(payload)) == payload
