"""IncrementalLinker: parity, rollback, scoped re-solve, conversations."""

from __future__ import annotations

import random

import pytest

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.eval.metrics import (
    aggregate,
    score_entity_linking,
    score_relation_linking,
)
from repro.session import ConversationSession, SessionConfig, StreamingSession
from repro.session.workloads import split_text, stream_chunkings
from tests.session.conftest import canonical


class TestFullMode:
    def test_byte_parity_with_one_shot(self, linker, stream_workloads):
        for workload in stream_workloads:
            session = StreamingSession(linker, SessionConfig(mode="full"))
            for chunk in workload.chunks:
                outcome = session.feed(chunk)
            one_shot = linker.link(workload.text)
            assert canonical(session.result) == canonical(one_shot)
            assert outcome.increment == len(workload.chunks)

    def test_byte_parity_survives_mid_word_cuts(self, linker, documents):
        # Cuts at arbitrary whitespace (not sentence-aligned) re-tokenise
        # earlier text; full mode must still match one-shot exactly.
        text = documents[0].text
        rng = random.Random(3)
        parts = split_text(text, 5, rng, sentence_aligned=False)
        assert "".join(parts) == text
        session = StreamingSession(linker, SessionConfig(mode="full"))
        for part in parts:
            session.feed(part)
        assert canonical(session.result) == canonical(linker.link(text))

    def test_increments_and_text_accumulate(self, linker, documents):
        session = StreamingSession(linker)
        parts = split_text(documents[1].text, 3, random.Random(0))
        for i, part in enumerate(parts, start=1):
            outcome = session.feed(part)
            assert outcome.increment == i
            assert session.increment == i
        assert session.text == documents[1].text

    def test_empty_chunk_rejected(self, linker):
        session = StreamingSession(linker)
        with pytest.raises(ValueError):
            session.feed("   ")

    def test_deadline_abort_rolls_back(self, linker, documents):
        session = StreamingSession(linker)
        session.feed(documents[0].text)
        before_increment = session.increment
        before_text = session.text
        before = canonical(session.result)
        expired = Deadline.after(0.0)
        with pytest.raises(DeadlineExceeded):
            session.feed(" More text arrives later.", deadline=expired)
        assert session.increment == before_increment
        assert session.text == before_text
        assert canonical(session.result) == before
        # The session stays usable after the abort.
        outcome = session.feed(" More text arrives later.")
        assert outcome.increment == before_increment + 1


class TestMentionAccounting:
    def test_new_reused_removed_reconcile(self, linker, stream_workloads):
        # Per feed: reused + new = mentions now, removed = before - reused.
        for workload in stream_workloads[:3]:
            session = StreamingSession(linker)
            previous_total = 0
            for chunk in workload.chunks:
                outcome = session.feed(chunk)
                assert outcome.removed_mentions == (
                    previous_total - outcome.reused_mentions
                )
                assert outcome.reused_mentions <= previous_total
                previous_total = outcome.new_mentions + outcome.reused_mentions
            assert previous_total > 0


class TestScopedMode:
    @pytest.mark.parametrize("sentence_aligned", [True, False])
    def test_converges_within_tolerance(
        self, linker, documents, sentence_aligned
    ):
        tolerance = 0.02
        workloads = stream_chunkings(
            documents,
            chunks=4,
            seed=7,
            limit=6,
            sentence_aligned=sentence_aligned,
        )
        by_doc_id = {document.doc_id: document for document in documents}
        one_shot_entity, one_shot_relation = [], []
        scoped_entity, scoped_relation = [], []
        for workload in workloads:
            session = StreamingSession(linker, SessionConfig(mode="scoped"))
            for chunk in workload.chunks:
                session.feed(chunk)
            document = by_doc_id[workload.doc_id]
            one_shot = linker.link(workload.text)
            one_shot_entity.append(score_entity_linking(one_shot, document))
            one_shot_relation.append(score_relation_linking(one_shot, document))
            scoped_entity.append(score_entity_linking(session.result, document))
            scoped_relation.append(
                score_relation_linking(session.result, document)
            )
        assert abs(
            aggregate(one_shot_entity).f1 - aggregate(scoped_entity).f1
        ) <= tolerance
        assert abs(
            aggregate(one_shot_relation).f1 - aggregate(scoped_relation).f1
        ) <= tolerance

    def test_scoped_solves_actually_happen(self, linker, stream_workloads):
        # Sentence-aligned chunks keep earlier tokenisation stable, so at
        # least some increments must take the scoped path (otherwise the
        # subsystem silently degraded to relink-everything).
        solves = {}
        for workload in stream_workloads:
            session = StreamingSession(linker, SessionConfig(mode="scoped"))
            for chunk in workload.chunks:
                outcome = session.feed(chunk)
                solves[outcome.solve] = solves.get(outcome.solve, 0) + 1
        assert solves.get("initial", 0) == len(stream_workloads)
        assert solves.get("scoped", 0) > 0

    def test_guard_falls_back_when_everything_is_dirty(
        self, linker, documents
    ):
        # A dirty fraction bound of ~0 makes every region too large, so
        # every non-initial increment must take the full-solve fallback.
        config = SessionConfig(mode="scoped", scoped_dirty_fraction=1e-9)
        session = StreamingSession(linker, config)
        parts = split_text(
            documents[0].text, 4, random.Random(1), sentence_aligned=True
        )
        solves = []
        for part in parts:
            solves.append(session.feed(part).solve)
        assert solves[0] == "initial"
        assert all(solve == "full" for solve in solves[1:])


class TestConversationSession:
    def test_turns_accumulate_seen_concepts(self, linker, documents):
        session = ConversationSession(linker)
        first = session.turn(documents[0].text)
        assert first.increment == 1
        linked_once = set(session.seen_concepts)
        assert linked_once  # gold documents always link something
        session.turn("The discussion continued on the same topic.")
        assert linked_once <= set(session.seen_concepts)

    def test_turns_join_with_newlines(self, linker):
        session = ConversationSession(linker)
        session.turn("First utterance about nothing in particular.")
        session.turn("Second utterance, equally inert.")
        assert "\n" in session.text

    def test_repeat_mention_keeps_reading(self, linker, documents):
        # A concept linked in turn 1 and mentioned again in turn 3 must
        # still resolve to the same concept (the context prior boost
        # reinforces, never flips, an established reading).
        document = documents[0]
        session = ConversationSession(linker)
        session.turn(document.text)
        established = dict(session.seen_concepts)
        session.turn("That was the whole first story.")
        final = session.turn(document.text.split(". ")[0] + ".")
        final_concepts = {link.concept_id for link in final.result.links}
        assert final_concepts & set(established)


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(mode="incremental")

    def test_bad_guard_knobs_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(scoped_dirty_fraction=0.0)
        with pytest.raises(ValueError):
            SessionConfig(scoped_dirty_fraction=1.5)
        with pytest.raises(ValueError):
            SessionConfig(scoped_mean_candidates=0.0)

    def test_bad_boost_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(context_prior_boost=1.5)
