"""Session-test fixtures.

Everything expensive is shared: the linker rides the session-scoped
``suite_context`` (one synthetic world for the whole test run) and the
gold documents come from the one ``suite`` build, so adding the session
suite keeps tier-1 wall-clock flat.  Chunked workloads are generated
once per module from those documents — the generators are pure
functions of (documents, seed), so module scope loses no coverage.
"""

from __future__ import annotations

import json
from typing import List

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.session.workloads import stream_chunkings


@pytest.fixture(scope="module")
def linker(suite_context) -> TenetLinker:
    return TenetLinker(suite_context, TenetConfig())


@pytest.fixture(scope="module")
def documents(suite) -> List[object]:
    return [
        document
        for dataset in suite.datasets()
        for document in dataset.documents
    ]


@pytest.fixture(scope="module")
def stream_workloads(documents):
    workloads = stream_chunkings(documents, chunks=4, seed=7, limit=6)
    assert workloads, "generator produced no stream workloads"
    return workloads


def canonical(result) -> str:
    """The byte-parity key: deterministic payload, timings stripped."""
    return json.dumps(result.to_json(include_timings=False), sort_keys=True)
