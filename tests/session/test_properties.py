"""Property tests: any chunking converges, and counters reconcile.

The headline session invariant — a full-mode session fed ANY
decomposition of a document (including mid-word cuts) ends in exactly
the state a one-shot link of that document produces — is exercised here
with hypothesis-drawn cut points over real gold documents.  The linker
and documents ride the shared session fixtures, and the example counts
are kept small because every example runs real linking solves.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.session import SessionConfig, StreamingSession
from tests.session.conftest import canonical

SESSION_EXAMPLES = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def cut_into(text: str, cuts) -> list:
    """Split *text* at the (sorted, deduplicated, in-range) cut points.

    Whitespace-only pieces are folded into their neighbour (sessions
    reject blank chunks), so the pieces always concatenate back to
    *text* and every piece is feedable.
    """
    positions = sorted({cut % (len(text) - 1) + 1 for cut in cuts})
    parts = []
    previous = 0
    for position in positions:
        if position > previous:
            parts.append(text[previous:position])
            previous = position
    parts.append(text[previous:])
    merged = []
    carry = ""
    for part in parts:
        if part.strip():
            merged.append(carry + part)
            carry = ""
        else:
            carry += part
    if carry and merged:
        merged[-1] += carry
    return merged


class TestAnyChunkingConverges:
    @given(cuts=st.lists(st.integers(min_value=0), min_size=1, max_size=5))
    @SESSION_EXAMPLES
    def test_full_mode_byte_parity(self, linker, documents, cuts):
        text = documents[0].text
        parts = cut_into(text, cuts)
        assert "".join(parts) == text
        session = StreamingSession(linker, SessionConfig(mode="full"))
        for part in parts:
            session.feed(part)
        assert session.text == text
        assert canonical(session.result) == canonical(linker.link(text))

    @given(cuts=st.lists(st.integers(min_value=0), min_size=1, max_size=4))
    @SESSION_EXAMPLES
    def test_counters_reconcile_under_any_chunking(
        self, linker, documents, cuts
    ):
        # new/reused/removed must reconcile feed over feed no matter how
        # the text is cut: reused + new = total now, removed = lost.
        text = documents[1].text
        session = StreamingSession(linker, SessionConfig(mode="full"))
        previous_total = 0
        memo_hits = memo_misses = 0
        for part in cut_into(text, cuts):
            outcome = session.feed(part)
            assert outcome.new_mentions >= 0
            assert 0 <= outcome.reused_mentions <= previous_total
            assert outcome.removed_mentions == (
                previous_total - outcome.reused_mentions
            )
            previous_total = outcome.new_mentions + outcome.reused_mentions
            memo_hits += outcome.memo_hits
            memo_misses += outcome.memo_misses
        # The memo is consulted once per mention per feed: hits + misses
        # must cover every mention the session ever resolved.
        assert memo_hits + memo_misses >= previous_total
