"""Session workloads ride the snapshot: persisted, verified, regenerable."""

from repro.session.workloads import (
    build_session_workloads,
    workloads_from_payload,
)


class TestPersistedWorkloads:
    def test_persisted_scale_loads_from_disk(self, warm, snap_spec):
        scale = snap_spec.scales[0]
        assert scale in warm.session_workloads
        payload = warm.session_workloads_for_scale(scale)
        assert payload is warm.session_workloads[scale]
        streams, scripts = workloads_from_payload(payload)
        assert streams and scripts

    def test_persisted_matches_regeneration(self, warm, snap_spec):
        # The payload on disk must equal what the generators produce from
        # the snapshot's own gold sets — same seed, same documents.
        scale = snap_spec.scales[0]
        documents = [
            document
            for dataset in warm.datasets_for_scale(scale)
            for document in dataset.documents
        ]
        regenerated = build_session_workloads(documents, seed=snap_spec.seed)
        assert warm.session_workloads_for_scale(scale) == regenerated

    def test_unpersisted_scale_regenerates(self, warm):
        # A scale the snapshot never stored still yields a payload —
        # older snapshots (pre-session) take the same path.
        payload = warm.session_workloads_for_scale(0.1)
        assert 0.1 not in warm.session_workloads
        streams, scripts = workloads_from_payload(payload)
        assert streams

    def test_workloads_artifact_is_hashed(self, warm):
        names = {entry.name for entry in warm.manifest.artifacts}
        assert any(
            name.startswith("session_workloads:") for name in names
        ), names
