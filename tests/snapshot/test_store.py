"""Snapshot store tests: identity, build, verify, load, list, gc."""

import json
import shutil

import pytest

from repro.embeddings.trainer import TrainerConfig
from repro.snapshot import (
    MANIFEST_NAME,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotManifest,
    SnapshotNotFoundError,
    SnapshotSpec,
    build_snapshot,
    gc_snapshots,
    list_snapshots,
    load_or_build,
    load_snapshot,
    verify_snapshot,
)
from repro.snapshot.manifest import ArtifactEntry, sha256_file


def _flip_one_byte(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def _fake_snapshot(root, snap_id, created):
    """A minimal but schema-valid snapshot directory (for list/gc tests)."""
    directory = root / snap_id
    directory.mkdir(parents=True)
    blob = directory / "blob.bin"
    blob.write_bytes(b"x")
    SnapshotManifest(
        snapshot_id=snap_id,
        spec={"seed": 1, "scales": [1.0]},
        artifacts=[ArtifactEntry("blob", "blob.bin", sha256_file(blob), 1)],
        created_unix=created,
    ).save(directory)
    return directory


class TestSpecIdentity:
    def test_same_spec_same_id(self):
        a = SnapshotSpec(seed=7, scales=(0.15,))
        b = SnapshotSpec(seed=7, scales=(0.15,))
        assert a.snapshot_id == b.snapshot_id

    def test_scale_order_and_duplicates_normalised(self):
        a = SnapshotSpec(seed=7, scales=(0.3, 0.1))
        b = SnapshotSpec(seed=7, scales=(0.1, 0.3, 0.1))
        assert a.snapshot_id == b.snapshot_id

    def test_seed_changes_id(self):
        assert (
            SnapshotSpec(seed=7).snapshot_id != SnapshotSpec(seed=8).snapshot_id
        )

    def test_scales_change_id(self):
        assert (
            SnapshotSpec(scales=(0.15,)).snapshot_id
            != SnapshotSpec(scales=(0.3,)).snapshot_id
        )

    def test_trainer_config_changes_id(self):
        assert (
            SnapshotSpec(trainer_config=TrainerConfig(dimension=64)).snapshot_id
            != SnapshotSpec().snapshot_id
        )

    def test_cache_seed_settings_change_id(self):
        assert (
            SnapshotSpec(include_cache_seed=False).snapshot_id
            != SnapshotSpec().snapshot_id
        )

    def test_id_shape(self):
        snapshot_id = SnapshotSpec().snapshot_id
        assert snapshot_id.startswith("snap-")
        assert len(snapshot_id) == len("snap-") + 12

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SnapshotSpec(scales=(0.15, 0.0))

    def test_negative_cache_seed_limit_rejected(self):
        with pytest.raises(ValueError, match="cache_seed_limit"):
            SnapshotSpec(cache_seed_limit=-1)


class TestBuild:
    def test_verify_clean(self, snap_path):
        assert verify_snapshot(snap_path) == []

    def test_expected_artifacts(self, snap_path):
        manifest = SnapshotManifest.load(snap_path)
        names = set(manifest.artifact_names())
        assert {
            "kb",
            "world",
            "alias_index",
            "embeddings_matrix",
            "embeddings_ids",
            "cache_seed",
        } <= names
        for dataset in ("news", "t-rex42", "kore50", "msnbc19"):
            assert f"dataset:s0.15:{dataset}" in names
        for entry in manifest.artifacts:
            assert (snap_path / entry.path).stat().st_size == entry.bytes

    def test_no_temp_litter_after_build(self, snap_root):
        assert not list(snap_root.glob(".tmp-*"))

    def test_skip_existing_without_force(self, snap_root, snap_spec, snap_path):
        created = SnapshotManifest.load(snap_path).created_unix
        messages = []
        assert build_snapshot(snap_spec, snap_root, echo=messages.append) == snap_path
        assert SnapshotManifest.load(snap_path).created_unix == created
        assert any("skipping" in m for m in messages)

    def test_force_rebuilds(self, snap_spec, tmp_path):
        first = build_snapshot(snap_spec, tmp_path)
        created = SnapshotManifest.load(first).created_unix
        second = build_snapshot(snap_spec, tmp_path, force=True)
        assert second == first
        assert SnapshotManifest.load(second).created_unix > created
        assert verify_snapshot(second) == []

    def test_failed_build_publishes_nothing(self, snap_spec, tmp_path, monkeypatch):
        import repro.snapshot.store as store_module

        def explode(*_args, **_kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(store_module, "save_dump", explode)
        with pytest.raises(RuntimeError, match="disk on fire"):
            build_snapshot(snap_spec, tmp_path)
        assert not (tmp_path / snap_spec.snapshot_id).exists()
        assert not list(tmp_path.glob(".tmp-*"))

    def test_cache_seed_phrases_sorted_and_capped(self, warm, snap_spec):
        phrases = warm.cache_seed_phrases
        assert phrases
        assert phrases == sorted(phrases)
        assert len(phrases) == len(set(phrases))
        assert len(phrases) <= snap_spec.cache_seed_limit


class TestVerifyAndCorruption:
    def test_every_artifact_corruption_detected(self, snap_path, tmp_path):
        manifest = SnapshotManifest.load(snap_path)
        for index, entry in enumerate(manifest.artifacts):
            copy = tmp_path / f"corrupt-{index}"
            shutil.copytree(snap_path, copy)
            _flip_one_byte(copy / entry.path)
            problems = verify_snapshot(copy)
            assert problems, f"corrupting {entry.path} went undetected"
            assert any(entry.path in problem for problem in problems)
            with pytest.raises(SnapshotIntegrityError):
                load_snapshot(copy)

    def test_missing_artifact_detected(self, snap_copy):
        (snap_copy / "kb.json").unlink()
        problems = verify_snapshot(snap_copy)
        assert any("missing artifact kb.json" in p for p in problems)

    def test_truncation_reports_size_drift(self, snap_copy):
        target = snap_copy / "kb.json"
        target.write_bytes(target.read_bytes()[:-100])
        problems = verify_snapshot(snap_copy)
        assert any("size" in p for p in problems)

    def test_tampered_manifest_detected(self, snap_copy):
        manifest_path = snap_copy / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["artifacts"][0]["sha256"] = "f" * 64
        manifest_path.write_text(json.dumps(payload))
        problems = verify_snapshot(snap_copy)
        assert problems and "content_digest" in problems[0]

    def test_integrity_error_carries_problems(self, snap_copy):
        _flip_one_byte(snap_copy / "kb.json")
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            load_snapshot(snap_copy)
        assert excinfo.value.path == snap_copy
        assert excinfo.value.problems
        assert "kb.json" in str(excinfo.value)

    def test_load_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError):
            load_snapshot(tmp_path / "nope")


class TestLoad:
    def test_context_is_usable(self, warm):
        assert warm.context.kb.entity_count > 0
        assert len(warm.context.embeddings) > 0
        hits = warm.context.alias_index.lookup_entities("Brooklyn")
        assert hits

    def test_datasets_loaded_for_stored_scale(self, warm):
        assert set(warm.datasets) == {0.15}
        datasets = warm.datasets[0.15]
        assert [d.name for d in datasets] == [
            "News",
            "T-REx42",
            "KORE50",
            "MSNBC19",
        ]

    def test_seed_fuzzy_cache_counts_phrases(self, snap_path):
        fresh = load_snapshot(snap_path)
        assert fresh.seed_fuzzy_cache() == len(fresh.cache_seed_phrases) > 0

    def test_load_records_identity(self, warm, snap_path):
        info = warm.info()
        manifest = SnapshotManifest.load(snap_path)
        assert info["id"] == manifest.snapshot_id
        assert info["content_digest"] == manifest.content_digest
        assert info["source"] == "warm"
        assert info["load_seconds"] > 0.0
        assert set(info["artifacts"]) == set(manifest.artifact_names())


class TestLoadOrBuild:
    def test_builds_then_warm_starts(self, tmp_path):
        spec = SnapshotSpec(seed=7, scales=(0.15,))
        store = tmp_path / "store"
        first = load_or_build(store, spec)
        assert first.source == "built"
        second = load_or_build(store, spec)
        assert second.source == "warm"
        assert second.manifest.content_digest == first.manifest.content_digest
        assert len(list_snapshots(store)) == 1

    def test_direct_path_loads_exact_snapshot(self, snap_path, snap_spec):
        assert load_or_build(snap_path, snap_spec).source == "warm"

    def test_direct_path_seed_mismatch_rejected(self, snap_path):
        with pytest.raises(SnapshotError, match="seed"):
            load_or_build(snap_path, SnapshotSpec(seed=8, scales=(0.15,)))

    def test_scales_compatible_snapshot_reused(self, snap_root, snap_path):
        # Different requested scales, same everything else: the stored
        # snapshot is reused (datasets regenerate deterministically)
        # instead of paying a duplicate build.
        warm = load_or_build(snap_root, SnapshotSpec(seed=7, scales=(0.3,)))
        assert warm.path == snap_path
        assert warm.source == "warm"
        assert len(list_snapshots(snap_root)) == 1

    def test_corrupt_store_raises_instead_of_rebuilding(self, snap_copy, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        snap_copy.rename(store / snap_copy.name)
        _flip_one_byte(store / snap_copy.name / "kb.json")
        with pytest.raises(SnapshotIntegrityError):
            load_or_build(store, SnapshotSpec(seed=7, scales=(0.15,)))


class TestListAndGc:
    def test_list_newest_first(self, tmp_path):
        _fake_snapshot(tmp_path, "snap-old", 100.0)
        _fake_snapshot(tmp_path, "snap-new", 200.0)
        entries = list_snapshots(tmp_path)
        assert [e["id"] for e in entries] == ["snap-new", "snap-old"]
        assert entries[0]["bytes"] == 1
        assert entries[0]["artifacts"] == 1

    def test_list_reports_broken_snapshots(self, tmp_path):
        _fake_snapshot(tmp_path, "snap-good", 100.0)
        broken = tmp_path / "snap-broken"
        broken.mkdir()
        (broken / MANIFEST_NAME).write_text("{not json")
        entries = list_snapshots(tmp_path)
        assert len(entries) == 2
        by_id = {e["id"]: e for e in entries}
        assert "error" in by_id["snap-broken"]
        assert "error" not in by_id["snap-good"]

    def test_list_missing_root(self, tmp_path):
        assert list_snapshots(tmp_path / "nothing") == []

    def test_gc_sweeps_litter_and_old_snapshots(self, tmp_path):
        kept_new = _fake_snapshot(tmp_path, "snap-c", 300.0)
        kept_mid = _fake_snapshot(tmp_path, "snap-b", 200.0)
        dropped = _fake_snapshot(tmp_path, "snap-a", 100.0)
        litter = tmp_path / ".tmp-snap-x-deadbeef"
        litter.mkdir()
        headless = tmp_path / "snap-headless"
        headless.mkdir()
        unrelated = tmp_path / "not-a-snapshot"
        unrelated.mkdir()
        removed = set(gc_snapshots(tmp_path, keep=2))
        assert removed == {dropped, litter, headless}
        assert kept_new.is_dir() and kept_mid.is_dir() and unrelated.is_dir()

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        stale = _fake_snapshot(tmp_path, "snap-a", 100.0)
        removed = gc_snapshots(tmp_path, keep=0, dry_run=True)
        assert removed == [stale]
        assert stale.is_dir()

    def test_gc_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            gc_snapshots(tmp_path, keep=-1)
