"""Shared snapshot fixtures: one built store per test session.

The spec matches the session ``world``/``context`` fixtures (seed 7,
default trainer) so parity tests can compare warm against the exact
cold build every other test uses; scale 0.15 matches the ``suite``
fixture.
"""

from __future__ import annotations

import shutil

import pytest

from repro.snapshot import SnapshotSpec, build_snapshot, load_snapshot


@pytest.fixture(scope="session")
def snap_spec() -> SnapshotSpec:
    return SnapshotSpec(seed=7, scales=(0.15,))


@pytest.fixture(scope="session")
def snap_root(tmp_path_factory, snap_spec):
    root = tmp_path_factory.mktemp("snapstore")
    build_snapshot(snap_spec, root)
    return root


@pytest.fixture(scope="session")
def snap_path(snap_root, snap_spec):
    return snap_root / snap_spec.snapshot_id


@pytest.fixture(scope="session")
def warm(snap_path):
    return load_snapshot(snap_path)


@pytest.fixture
def snap_copy(snap_path, tmp_path):
    """A throwaway copy of the session snapshot, safe to corrupt."""
    copy = tmp_path / snap_path.name
    shutil.copytree(snap_path, copy)
    return copy
