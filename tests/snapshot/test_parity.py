"""Cold-vs-warm parity: a warm-started context is byte-identical in use.

The session ``world``/``context`` fixtures are the cold build for the
exact spec the session snapshot was created from (seed 7, default
trainer), so every comparison here is cold-build vs. snapshot-load of
the same inputs.
"""

import json

import numpy as np

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.datasets.benchmarks import (
    build_kore50,
    build_msnbc19,
    build_news,
    build_trex42,
)
from repro.datasets.loaders import dataset_to_json

_BUILDERS = (
    (build_news, 1),
    (build_trex42, 2),
    (build_kore50, 3),
    (build_msnbc19, 4),
)


def _result_json(linker, text):
    return linker.link(text).to_json(include_timings=False)


class TestContextParity:
    def test_kb_identical(self, warm, world):
        cold = world.kb
        assert warm.context.kb.entity_count == cold.entity_count
        assert [e.entity_id for e in warm.context.kb.entities()] == [
            e.entity_id for e in cold.entities()
        ]
        assert [p.predicate_id for p in warm.context.kb.predicates()] == [
            p.predicate_id for p in cold.predicates()
        ]
        assert [t.as_tuple() for t in warm.context.kb.triples()] == [
            t.as_tuple() for t in cold.triples()
        ]

    def test_embeddings_identical(self, warm, context):
        ids = context.embeddings.ids()
        assert warm.context.embeddings.ids() == ids
        cold_rows, cold_known = context.embeddings.rows(ids)
        warm_rows, warm_known = warm.context.embeddings.rows(ids)
        assert np.array_equal(cold_known, warm_known)
        assert np.array_equal(cold_rows, warm_rows)

    def test_alias_lookups_identical(self, warm, context, world):
        # Postings must come back in the same order, not merely as the
        # same set: downstream candidate ranking is order-sensitive.
        surfaces = [
            world.kb.get_entity(eid).label
            for eid in list(world.kb.entity_ids())[:50]
        ]
        for surface in surfaces:
            cold = [
                (h.concept_id, h.prior)
                for h in context.alias_index.lookup_entities(surface)
            ]
            hot = [
                (h.concept_id, h.prior)
                for h in warm.context.alias_index.lookup_entities(surface)
            ]
            assert hot == cold


class TestLinkingParity:
    def test_pinned_documents_byte_identical(self, warm, tenet):
        warm_linker = TenetLinker(warm.context, TenetConfig())
        documents = [
            document
            for dataset in warm.datasets[0.15]
            for document in dataset.documents[:3]
        ]
        assert documents
        for document in documents:
            cold = _result_json(tenet, document.text)
            hot = _result_json(warm_linker, document.text)
            assert json.dumps(hot, sort_keys=True) == json.dumps(
                cold, sort_keys=True
            )

    def test_cache_seeding_never_changes_results(self, snap_path, tenet):
        from repro.snapshot import load_snapshot

        fresh = load_snapshot(snap_path)
        linker = TenetLinker(fresh.context, TenetConfig())
        text = fresh.datasets[0.15][0].documents[0].text
        before = _result_json(linker, text)
        assert fresh.seed_fuzzy_cache() > 0
        after = _result_json(linker, text)
        assert after == before == _result_json(tenet, text)


class TestDatasetParity:
    def test_stored_datasets_match_cold_generation(self, warm, world):
        # The gold sets inside the snapshot are exactly what a cold
        # process generates from a freshly-built world.
        seed = warm.manifest.spec["seed"]
        for (builder, offset), stored in zip(_BUILDERS, warm.datasets[0.15]):
            cold = builder(world, seed=seed * 100 + offset, scale=0.15)
            assert dataset_to_json(cold) == dataset_to_json(stored)

    def test_unstored_scale_regenerates_byte_identical(self, warm, world):
        # Scales not persisted in the snapshot regenerate from the
        # *reloaded* world — byte-identical to the cold build because
        # the KB dump preserves iteration order.
        seed = warm.manifest.spec["seed"]
        regenerated = warm.datasets_for_scale(0.05)
        for (builder, offset), hot in zip(_BUILDERS, regenerated):
            cold = builder(world, seed=seed * 100 + offset, scale=0.05)
            assert dataset_to_json(cold) == dataset_to_json(hot)
