"""Manifest schema, hashing, and (de)serialisation tests."""

import hashlib
import json

import pytest

from repro.snapshot.manifest import (
    MANIFEST_NAME,
    SNAPSHOT_SCHEMA_VERSION,
    ArtifactEntry,
    SnapshotManifest,
    SnapshotSchemaError,
    canonical_json,
    sha256_file,
    sha256_text,
)


@pytest.fixture
def manifest():
    return SnapshotManifest(
        snapshot_id="snap-abc123",
        spec={"seed": 7, "scales": [0.15]},
        artifacts=[
            ArtifactEntry("kb", "kb.json", "a" * 64, 10),
            ArtifactEntry("world", "world.json", "b" * 64, 20),
        ],
        created_unix=1700000000.0,
        build_seconds=1.5,
        env={"python": "3.12"},
    )


class TestHashing:
    def test_canonical_json_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
            {"a": [2, 3], "b": 1}
        )

    def test_canonical_json_no_whitespace(self):
        assert " " not in canonical_json({"a": 1, "b": [1, 2]})

    def test_sha256_file_matches_hashlib(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"snapshot bytes" * 1000)
        assert sha256_file(path) == hashlib.sha256(path.read_bytes()).hexdigest()

    def test_sha256_text(self):
        assert sha256_text("x") == hashlib.sha256(b"x").hexdigest()


class TestContentDigest:
    def test_order_independent(self, manifest):
        reversed_artifacts = SnapshotManifest(
            snapshot_id=manifest.snapshot_id,
            spec=manifest.spec,
            artifacts=list(reversed(manifest.artifacts)),
        )
        assert reversed_artifacts.content_digest == manifest.content_digest

    def test_changes_with_any_artifact_hash(self, manifest):
        tampered = SnapshotManifest(
            snapshot_id=manifest.snapshot_id,
            spec=manifest.spec,
            artifacts=[
                manifest.artifacts[0],
                ArtifactEntry("world", "world.json", "c" * 64, 20),
            ],
        )
        assert tampered.content_digest != manifest.content_digest


class TestRoundTrip:
    def test_json_round_trip(self, manifest):
        clone = SnapshotManifest.from_json(manifest.to_json())
        assert clone.snapshot_id == manifest.snapshot_id
        assert clone.spec == manifest.spec
        assert clone.artifacts == manifest.artifacts
        assert clone.created_unix == manifest.created_unix
        assert clone.build_seconds == manifest.build_seconds
        assert clone.env == manifest.env
        assert clone.content_digest == manifest.content_digest

    def test_file_round_trip(self, manifest, tmp_path):
        manifest.save(tmp_path)
        assert (tmp_path / MANIFEST_NAME).is_file()
        clone = SnapshotManifest.load(tmp_path)
        assert clone.artifacts == manifest.artifacts

    def test_artifact_entry_round_trip(self):
        entry = ArtifactEntry("kb", "kb.json", "a" * 64, 42)
        assert ArtifactEntry.from_json(entry.to_json()) == entry

    def test_artifact_lookup(self, manifest):
        assert manifest.artifact("kb").path == "kb.json"
        assert manifest.artifact_names() == ["kb", "world"]
        with pytest.raises(KeyError):
            manifest.artifact("nope")


class TestSchemaRejection:
    def test_newer_schema_version_rejected(self, manifest):
        payload = manifest.to_json()
        payload["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(SnapshotSchemaError, match="newer"):
            SnapshotManifest.from_json(payload)

    def test_wrong_kind_rejected(self, manifest):
        payload = manifest.to_json()
        payload["kind"] = "tenet-bench"
        with pytest.raises(SnapshotSchemaError, match="kind"):
            SnapshotManifest.from_json(payload)

    @pytest.mark.parametrize("field", ["snapshot_id", "spec", "artifacts"])
    def test_missing_field_rejected(self, manifest, field):
        payload = manifest.to_json()
        del payload[field]
        with pytest.raises(SnapshotSchemaError):
            SnapshotManifest.from_json(payload)

    def test_empty_artifacts_rejected(self, manifest):
        payload = manifest.to_json()
        payload["artifacts"] = []
        with pytest.raises(SnapshotSchemaError, match="non-empty"):
            SnapshotManifest.from_json(payload)

    def test_non_object_rejected(self):
        with pytest.raises(SnapshotSchemaError):
            SnapshotManifest.from_json(["not", "a", "manifest"])

    def test_edited_artifact_hash_breaks_content_digest(self, manifest):
        payload = manifest.to_json()
        payload["artifacts"][0]["sha256"] = "f" * 64
        with pytest.raises(SnapshotSchemaError, match="content_digest"):
            SnapshotManifest.from_json(payload)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SnapshotSchemaError, match=MANIFEST_NAME):
            SnapshotManifest.load(tmp_path)

    def test_load_unparseable_file(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotSchemaError, match="unparseable"):
            SnapshotManifest.load(tmp_path)

    def test_version_checked_before_other_fields(self, tmp_path):
        # A future manifest with unknown layout must fail on the version,
        # not on whatever field happens to be missing.
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps(
                {
                    "schema_version": SNAPSHOT_SCHEMA_VERSION + 5,
                    "kind": "something-new",
                }
            )
        )
        with pytest.raises(SnapshotSchemaError, match="newer"):
            SnapshotManifest.load(tmp_path)
