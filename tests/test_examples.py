"""Smoke tests: every example script must run end to end.

Examples are documentation; a broken example is a broken promise.  Each
script is executed in-process (sharing the interpreter keeps the world
construction fast) with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    # benchmark_evaluation accepts an optional scale argument; keep the
    # smoke run small for every script.
    monkeypatch.setattr(sys, "argv", [str(script), "0.1"])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
