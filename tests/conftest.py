"""Shared fixtures: one synthetic world / context / suite per session."""

from __future__ import annotations

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import BenchmarkSuite, build_benchmark_suite
from repro.kb.synthetic import SyntheticKBConfig, SyntheticWorld, build_synthetic_world


@pytest.fixture(scope="session")
def world() -> SyntheticWorld:
    return build_synthetic_world(SyntheticKBConfig(seed=7))


@pytest.fixture(scope="session")
def context(world) -> LinkingContext:
    return LinkingContext.build(world.kb, world.taxonomy)


@pytest.fixture(scope="session")
def tenet(context) -> TenetLinker:
    return TenetLinker(context, TenetConfig())


@pytest.fixture(scope="session")
def suite() -> BenchmarkSuite:
    # Small but non-trivial corpus shared by dataset/eval/integration tests.
    return build_benchmark_suite(seed=7, scale=0.15)


@pytest.fixture(scope="session")
def suite_context(suite) -> LinkingContext:
    return LinkingContext.build(suite.world.kb, suite.world.taxonomy)
