"""JSON dump round-trip tests."""

import pytest

from repro.kb.dump import (
    kb_from_json_dump,
    kb_to_json_dump,
    load_dump,
    save_dump,
)


class TestRoundTrip:
    def test_counts_preserved(self, world):
        dump = kb_to_json_dump(world.kb)
        rebuilt = kb_from_json_dump(dump)
        assert rebuilt.entity_count == world.kb.entity_count
        assert rebuilt.predicate_count == world.kb.predicate_count
        assert rebuilt.triple_count == world.kb.triple_count

    def test_records_preserved(self, world):
        rebuilt = kb_from_json_dump(kb_to_json_dump(world.kb))
        for entity in world.kb.entities():
            clone = rebuilt.get_entity(entity.entity_id)
            assert clone == entity

    def test_facts_preserved(self, world):
        rebuilt = kb_from_json_dump(kb_to_json_dump(world.kb))
        originals = {t.as_tuple() for t in world.kb.triples()}
        clones = {t.as_tuple() for t in rebuilt.triples()}
        assert originals == clones

    def test_file_round_trip(self, world, tmp_path):
        path = tmp_path / "dump.json"
        save_dump(world.kb, path)
        rebuilt = load_dump(path)
        assert rebuilt.entity_count == world.kb.entity_count

    def test_unknown_version_rejected(self, world):
        dump = kb_to_json_dump(world.kb)
        dump["format_version"] = 99
        with pytest.raises(ValueError):
            kb_from_json_dump(dump)

    def test_dump_is_json_serialisable(self, world):
        import json

        json.dumps(kb_to_json_dump(world.kb))


class TestCanonicalOrder:
    """The dump is a fixed point: stable bytes, stable iteration order.

    The snapshot store's content hashes and its warm-start parity both
    rest on these properties (see docs/snapshots.md)."""

    def test_dump_fixed_point(self, world):
        dump = kb_to_json_dump(world.kb)
        assert kb_to_json_dump(kb_from_json_dump(dump)) == dump

    def test_save_is_byte_deterministic(self, world, tmp_path):
        save_dump(world.kb, tmp_path / "a.json")
        save_dump(world.kb, tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_records_in_natural_id_order(self, world):
        from repro.kb.dump import _natural_id_key

        dump = kb_to_json_dump(world.kb)
        for kind in ("entities", "predicates"):
            ids = [record["id"] for record in dump[kind]]
            assert ids == sorted(ids, key=_natural_id_key)

    def test_natural_key_orders_numerically(self):
        from repro.kb.dump import _natural_id_key

        ids = ["Q10", "Q2", "Q1", "P3", "P10"]
        assert sorted(ids, key=_natural_id_key) == [
            "P3",
            "P10",
            "Q1",
            "Q2",
            "Q10",
        ]

    def test_reload_preserves_iteration_order(self, world):
        # Seeded consumers (the dataset generator) iterate the KB, so a
        # reloaded KB must yield entities/predicates/triples in the same
        # order the builder produced them.
        rebuilt = kb_from_json_dump(kb_to_json_dump(world.kb))
        assert [e.entity_id for e in rebuilt.entities()] == [
            e.entity_id for e in world.kb.entities()
        ]
        assert [p.predicate_id for p in rebuilt.predicates()] == [
            p.predicate_id for p in world.kb.predicates()
        ]
        assert [t.as_tuple() for t in rebuilt.triples()] == [
            t.as_tuple() for t in world.kb.triples()
        ]
