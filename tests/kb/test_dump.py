"""JSON dump round-trip tests."""

import pytest

from repro.kb.dump import (
    kb_from_json_dump,
    kb_to_json_dump,
    load_dump,
    save_dump,
)


class TestRoundTrip:
    def test_counts_preserved(self, world):
        dump = kb_to_json_dump(world.kb)
        rebuilt = kb_from_json_dump(dump)
        assert rebuilt.entity_count == world.kb.entity_count
        assert rebuilt.predicate_count == world.kb.predicate_count
        assert rebuilt.triple_count == world.kb.triple_count

    def test_records_preserved(self, world):
        rebuilt = kb_from_json_dump(kb_to_json_dump(world.kb))
        for entity in world.kb.entities():
            clone = rebuilt.get_entity(entity.entity_id)
            assert clone == entity

    def test_facts_preserved(self, world):
        rebuilt = kb_from_json_dump(kb_to_json_dump(world.kb))
        originals = {t.as_tuple() for t in world.kb.triples()}
        clones = {t.as_tuple() for t in rebuilt.triples()}
        assert originals == clones

    def test_file_round_trip(self, world, tmp_path):
        path = tmp_path / "dump.json"
        save_dump(world.kb, path)
        rebuilt = load_dump(path)
        assert rebuilt.entity_count == world.kb.entity_count

    def test_unknown_version_rejected(self, world):
        dump = kb_to_json_dump(world.kb)
        dump["format_version"] = 99
        with pytest.raises(ValueError):
            kb_from_json_dump(dump)

    def test_dump_is_json_serialisable(self, world):
        import json

        json.dumps(kb_to_json_dump(world.kb))
