"""Entity/predicate/triple record tests."""

import pytest

from repro.kb.records import EntityRecord, PredicateRecord, Triple


class TestEntityRecord:
    def test_label_auto_added_to_aliases(self):
        e = EntityRecord("Q1", "Ada Lovelace", aliases=("Ada",))
        assert e.aliases[0] == "Ada Lovelace"
        assert "Ada" in e.aliases

    def test_label_not_duplicated(self):
        e = EntityRecord("Q1", "Ada", aliases=("Ada", "A. L."))
        assert e.aliases.count("Ada") == 1

    def test_negative_popularity_rejected(self):
        with pytest.raises(ValueError):
            EntityRecord("Q1", "X", popularity=-1)

    def test_frozen(self):
        e = EntityRecord("Q1", "X")
        with pytest.raises(AttributeError):
            e.label = "Y"

    def test_defaults(self):
        e = EntityRecord("Q1", "X")
        assert e.types == ()
        assert e.domain is None
        assert e.popularity == 1


class TestPredicateRecord:
    def test_label_auto_added_to_aliases(self):
        p = PredicateRecord("P1", "educated at", aliases=("studied at",))
        assert "educated at" in p.aliases

    def test_negative_popularity_rejected(self):
        with pytest.raises(ValueError):
            PredicateRecord("P1", "x", popularity=-5)


class TestTriple:
    def test_as_tuple(self):
        t = Triple("Q1", "P1", "Q2")
        assert t.as_tuple() == ("Q1", "P1", "Q2")

    def test_literal_flag(self):
        t = Triple("Q1", "P1", "42", object_is_literal=True)
        assert t.object_is_literal

    def test_equality(self):
        assert Triple("Q1", "P1", "Q2") == Triple("Q1", "P1", "Q2")
        assert Triple("Q1", "P1", "Q2") != Triple("Q1", "P1", "Q3")
