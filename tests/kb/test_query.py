"""Triple-pattern query tests."""

import pytest

from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    for i in range(4):
        kb.add_entity(EntityRecord(f"Q{i}", f"E{i}"))
    kb.add_predicate(PredicateRecord("P1", "knows"))
    kb.add_predicate(PredicateRecord("P2", "likes"))
    kb.add_fact(Triple("Q0", "P1", "Q1"))
    kb.add_fact(Triple("Q0", "P1", "Q2"))
    kb.add_fact(Triple("Q0", "P2", "Q1"))
    kb.add_fact(Triple("Q3", "P1", "Q1"))
    kb.add_fact(Triple("Q3", "P2", "1984", object_is_literal=True))
    return kb


class TestQuery:
    def test_fully_bound_hit(self, kb):
        facts = kb.query(subject="Q0", predicate="P1", obj="Q1")
        assert len(facts) == 1
        assert facts[0].as_tuple() == ("Q0", "P1", "Q1")

    def test_fully_bound_miss(self, kb):
        assert kb.query(subject="Q1", predicate="P1", obj="Q0") == []

    def test_subject_predicate(self, kb):
        facts = kb.query(subject="Q0", predicate="P1")
        assert {f.obj for f in facts} == {"Q1", "Q2"}

    def test_predicate_object(self, kb):
        facts = kb.query(predicate="P1", obj="Q1")
        assert {f.subject for f in facts} == {"Q0", "Q3"}

    def test_subject_object(self, kb):
        facts = kb.query(subject="Q0", obj="Q1")
        assert {f.predicate for f in facts} == {"P1", "P2"}

    def test_subject_only(self, kb):
        assert len(kb.query(subject="Q0")) == 3

    def test_predicate_only(self, kb):
        assert len(kb.query(predicate="P2")) == 2

    def test_object_only(self, kb):
        assert len(kb.query(obj="Q1")) == 3

    def test_unbound_returns_everything(self, kb):
        assert len(kb.query()) == kb.triple_count

    def test_literal_flag_preserved(self, kb):
        facts = kb.query(subject="Q3", predicate="P2")
        assert facts[0].object_is_literal

    def test_consistency_with_full_scan(self, kb):
        indexed = {t.as_tuple() for t in kb.query(predicate="P1", obj="Q1")}
        scanned = {
            t.as_tuple()
            for t in kb.query()
            if t.predicate == "P1" and t.obj == "Q1"
        }
        assert indexed == scanned
