"""Type taxonomy tests."""

import pytest

from repro.kb.types import DEFAULT_TAXONOMY, ROOT_TYPE, TypeTaxonomy


@pytest.fixture
def tax():
    t = TypeTaxonomy()
    t.add_type("agent")
    t.add_type("person", ["agent"])
    t.add_type("organization", ["agent"])
    t.add_type("location")
    t.add_type("city", ["location"])
    return t


class TestStructure:
    def test_root_exists(self):
        assert ROOT_TYPE in TypeTaxonomy()

    def test_add_type_with_unknown_parent_raises(self, tax):
        with pytest.raises(KeyError):
            tax.add_type("x", ["nope"])

    def test_readd_merges_parents(self, tax):
        tax.add_type("person", ["location"])  # now person is-a location too
        assert tax.is_subtype("person", "location")

    def test_ancestors_transitive(self, tax):
        assert tax.ancestors("city") == {"location", ROOT_TYPE}
        assert tax.ancestors("person") == {"agent", ROOT_TYPE}

    def test_ancestors_unknown_raises(self, tax):
        with pytest.raises(KeyError):
            tax.ancestors("ghost")


class TestCompatibility:
    def test_subtype_compatible(self, tax):
        assert tax.compatible("person", "agent")
        assert tax.compatible("agent", "person")

    def test_siblings_incompatible(self, tax):
        assert not tax.compatible("person", "organization")

    def test_unrelated_incompatible(self, tax):
        assert not tax.compatible("person", "city")

    def test_self_compatible(self, tax):
        assert tax.compatible("person", "person")

    def test_unknown_type_compatible_with_all(self, tax):
        # the paper's pipeline never rejects candidates on unknown types
        assert tax.compatible("made-up", "person")

    def test_compatible_any(self, tax):
        assert tax.compatible_any("person", ["city", "agent"])
        assert not tax.compatible_any("person", ["city", "organization"])

    def test_compatible_any_empty_is_true(self, tax):
        assert tax.compatible_any("person", [])


class TestDefaultTaxonomy:
    def test_expected_types_present(self):
        for name in ("person", "organization", "city", "film", "award", "field"):
            assert name in DEFAULT_TAXONOMY

    def test_team_is_organization(self):
        assert DEFAULT_TAXONOMY.is_subtype("team", "organization")

    def test_film_is_creative_work(self):
        assert DEFAULT_TAXONOMY.is_subtype("film", "creative_work")
