"""Synthetic world generator tests."""


from repro.kb.synthetic import SyntheticKBConfig, build_synthetic_world
from repro.textnorm import normalize_phrase


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_synthetic_world(SyntheticKBConfig(seed=11))
        b = build_synthetic_world(SyntheticKBConfig(seed=11))
        assert a.kb.entity_count == b.kb.entity_count
        assert [t.as_tuple() for t in a.kb.triples()] == [
            t.as_tuple() for t in b.kb.triples()
        ]

    def test_different_seed_different_world(self):
        a = build_synthetic_world(SyntheticKBConfig(seed=11))
        b = build_synthetic_world(SyntheticKBConfig(seed=12))
        assert [t.as_tuple() for t in a.kb.triples()] != [
            t.as_tuple() for t in b.kb.triples()
        ]


class TestStructure:
    def test_all_domains_populated(self, world):
        for domain in world.config.domains:
            assert world.entities_in_domain(domain)

    def test_people_per_domain(self, world):
        for domain in world.config.domains:
            people = world.entities_of_type(domain, "person")
            assert len(people) == world.config.people_per_domain

    def test_predicates_registered(self, world):
        for key in ("field", "educated", "member", "born", "residence"):
            pid = world.predicate(key)
            assert world.kb.has_predicate(pid)

    def test_cities_located_in_countries(self, world):
        located = world.predicate("located")
        for city in world.cities:
            assert world.kb.objects_of(city, located)

    def test_every_person_has_facts(self, world):
        for domain in world.config.domains:
            for person in world.entities_of_type(domain, "person"):
                assert world.kb.facts_about(person)

    def test_referential_integrity(self, world):
        for triple in world.kb.triples():
            assert world.kb.has_entity(triple.subject)
            assert world.kb.has_predicate(triple.predicate)
            if not triple.object_is_literal:
                assert world.kb.has_entity(triple.obj)

    def test_work_titles_unique(self, world):
        titles = [
            e.label
            for e in world.kb.entities()
            if len(e.label.split()) >= 4 and e.label.startswith("The ")
        ]
        assert len(titles) == len(set(titles))

    def test_domain_facts_filter(self, world):
        facts = world.domain_facts("computer_science")
        members = set(world.entities_in_domain("computer_science"))
        assert facts
        assert all(t.subject in members for t in facts)


class TestAmbiguity:
    def test_shared_aliases_exist(self, world):
        owners = {}
        for entity in world.kb.entities():
            for alias in entity.aliases:
                owners.setdefault(normalize_phrase(alias), []).append(
                    entity.entity_id
                )
        shared = [k for k, v in owners.items() if len(v) >= 2]
        assert len(shared) >= world.config.ambiguous_person_pairs

    def test_injected_receivers_are_unpopular(self, world):
        """Injected cross-domain alias receivers keep a low popularity so
        the dominant sense stays clearly dominant."""
        label_owner = {}
        for entity in world.kb.entities():
            label_owner.setdefault(normalize_phrase(entity.label), entity)
        for entity in world.kb.entities():
            for alias in entity.aliases:
                key = normalize_phrase(alias)
                donor = label_owner.get(key)
                if (
                    donor is not None
                    and donor.entity_id != entity.entity_id
                    and "person" in entity.types
                    and "person" in donor.types
                    and alias != entity.label
                    and len(alias.split()) == 2
                    and alias.split()[-1] != entity.label.split()[-1]
                ):
                    assert entity.popularity <= 12

    def test_predicate_alias_collisions(self, world):
        owners = {}
        for predicate in world.kb.predicates():
            for alias in predicate.aliases:
                owners.setdefault(normalize_phrase(alias), []).append(
                    predicate.predicate_id
                )
        assert len(owners.get("studies", [])) == 2
        assert len(owners.get("live in", [])) == 2
        assert len(owners.get("joined", [])) >= 2

    def test_surname_aliases(self, world):
        person = next(
            e for e in world.kb.entities() if "person" in e.types
        )
        assert person.label.split()[-1] in person.aliases

    def test_acronym_aliases_for_orgs(self, world):
        orgs = [
            e
            for e in world.kb.entities()
            if any(t in ("university", "company", "team", "organization")
                   for t in e.types)
        ]
        assert orgs
        sample = orgs[0]
        acronyms = [a for a in sample.aliases if a.isupper()]
        assert acronyms


class TestWorldSerialisation:
    """world_to_json / world_from_json round trip (snapshot artifact)."""

    def test_round_trip_preserves_insertion_order(self, world):
        import json

        from repro.kb.synthetic import world_from_json, world_to_json

        # Route through a key-sorting serializer on purpose: the
        # snapshot store writes world.json with sort_keys=True, and the
        # dataset generator iterates these dicts, so insertion order
        # must survive exactly that path.
        payload = json.loads(
            json.dumps(world_to_json(world), sort_keys=True)
        )
        rebuilt = world_from_json(payload, world.kb)
        assert list(rebuilt.domain_entities) == list(world.domain_entities)
        assert rebuilt.domain_entities == world.domain_entities
        assert list(rebuilt.predicate_ids) == list(world.predicate_ids)
        assert rebuilt.predicate_ids == world.predicate_ids
        assert rebuilt.cities == world.cities
        assert rebuilt.countries == world.countries
        assert rebuilt.config == world.config

    def test_unknown_version_rejected(self, world):
        import pytest

        from repro.kb.synthetic import world_from_json, world_to_json

        payload = world_to_json(world)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            world_from_json(payload, world.kb)
