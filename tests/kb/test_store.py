"""Triple store tests."""

import pytest

from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_entity(EntityRecord("Q1", "Alice", types=("person",)))
    kb.add_entity(EntityRecord("Q2", "Acme University", types=("university",)))
    kb.add_entity(EntityRecord("Q3", "Springfield", types=("city",)))
    kb.add_predicate(PredicateRecord("P1", "educated at"))
    kb.add_predicate(PredicateRecord("P2", "located in"))
    kb.add_fact(Triple("Q1", "P1", "Q2"))
    kb.add_fact(Triple("Q2", "P2", "Q3"))
    kb.add_fact(Triple("Q1", "P2", "1984", object_is_literal=True))
    return kb


class TestRecords:
    def test_counts(self, kb):
        assert kb.entity_count == 3
        assert kb.predicate_count == 2
        assert kb.triple_count == 3

    def test_duplicate_entity_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add_entity(EntityRecord("Q1", "Clone"))

    def test_duplicate_predicate_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add_predicate(PredicateRecord("P1", "clone"))

    def test_get_entity(self, kb):
        assert kb.get_entity("Q1").label == "Alice"

    def test_replace_entity(self, kb):
        kb.replace_entity(EntityRecord("Q1", "Alice", popularity=99))
        assert kb.get_entity("Q1").popularity == 99

    def test_replace_unknown_entity_raises(self, kb):
        with pytest.raises(KeyError):
            kb.replace_entity(EntityRecord("Q99", "Ghost"))

    def test_has_entity(self, kb):
        assert kb.has_entity("Q1")
        assert not kb.has_entity("Q99")


class TestFacts:
    def test_duplicate_fact_returns_false(self, kb):
        assert kb.add_fact(Triple("Q1", "P1", "Q2")) is False
        assert kb.triple_count == 3

    def test_unknown_subject_rejected(self, kb):
        with pytest.raises(KeyError):
            kb.add_fact(Triple("Q99", "P1", "Q2"))

    def test_unknown_predicate_rejected(self, kb):
        with pytest.raises(KeyError):
            kb.add_fact(Triple("Q1", "P99", "Q2"))

    def test_unknown_entity_object_rejected(self, kb):
        with pytest.raises(KeyError):
            kb.add_fact(Triple("Q1", "P1", "Q99"))

    def test_literal_object_allowed(self, kb):
        assert kb.has_fact("Q1", "P2", "1984")

    def test_has_fact(self, kb):
        assert kb.has_fact("Q1", "P1", "Q2")
        assert not kb.has_fact("Q2", "P1", "Q1")


class TestIndexes:
    def test_objects_of(self, kb):
        assert kb.objects_of("Q1", "P1") == {"Q2"}
        assert kb.objects_of("Q1") == {"Q2", "1984"}

    def test_subjects_of(self, kb):
        assert kb.subjects_of("Q2", "P1") == {"Q1"}
        assert kb.subjects_of("Q3") == {"Q2"}

    def test_predicates_between(self, kb):
        assert kb.predicates_between("Q1", "Q2") == {"P1"}
        assert kb.predicates_between("Q2", "Q1") == set()

    def test_facts_about_includes_object_position(self, kb):
        facts = kb.facts_about("Q2")
        assert len(facts) == 2  # subject of one, object of another

    def test_entity_neighbours(self, kb):
        assert kb.entity_neighbours("Q2") == {"Q1", "Q3"}

    def test_entity_neighbours_excludes_literals(self, kb):
        assert "1984" not in kb.entity_neighbours("Q1")

    def test_entity_degree(self, kb):
        assert kb.entity_degree("Q2") == 2

    def test_predicates_used_with(self, kb):
        assert kb.predicates_used_with("Q2") == {"P1", "P2"}

    def test_concept_ids(self, kb):
        assert set(kb.concept_ids()) == {"Q1", "Q2", "Q3", "P1", "P2"}

    def test_facts_with_predicate(self, kb):
        assert len(kb.facts_with_predicate("P2")) == 2
