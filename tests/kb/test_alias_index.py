"""Alias index tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kb.alias_index import AliasIndex
from repro.kb.records import EntityRecord, PredicateRecord
from repro.kb.store import KnowledgeBase
from repro.kb.types import build_default_taxonomy


@pytest.fixture
def index():
    kb = KnowledgeBase()
    kb.add_entity(
        EntityRecord(
            "Q1", "Michael Jordan", aliases=("Jordan",),
            types=("person",), popularity=70,
        )
    )
    kb.add_entity(
        EntityRecord(
            "Q2", "Michael Jordan", aliases=("Jordan", "M. Jordan"),
            types=("person",), popularity=30,
        )
    )
    kb.add_entity(
        EntityRecord("Q3", "Jordan", types=("country",), popularity=50)
    )
    kb.add_predicate(
        PredicateRecord("P1", "field of work", aliases=("studies",), popularity=60)
    )
    kb.add_predicate(
        PredicateRecord("P2", "educated at", aliases=("studies",), popularity=40)
    )
    return AliasIndex.from_kb(kb, build_default_taxonomy())


class TestEntityLookup:
    def test_priors_proportional_to_popularity(self, index):
        hits = index.lookup_entities("Michael Jordan")
        assert [h.concept_id for h in hits] == ["Q1", "Q2"]
        assert hits[0].prior == pytest.approx(0.7)
        assert hits[1].prior == pytest.approx(0.3)

    def test_priors_sum_to_one(self, index):
        hits = index.lookup_entities("Jordan")
        assert sum(h.prior for h in hits) == pytest.approx(1.0)

    def test_case_insensitive(self, index):
        assert index.lookup_entities("michael jordan")
        assert index.lookup_entities("MICHAEL JORDAN")

    def test_edge_punctuation_stripped(self, index):
        assert index.lookup_entities("  Michael Jordan, ")

    def test_unknown_phrase_empty(self, index):
        assert index.lookup_entities("Zaphod Beeblebrox") == []

    def test_limit(self, index):
        hits = index.lookup_entities("Jordan", limit=1)
        assert len(hits) == 1

    def test_type_filter(self, index):
        hits = index.lookup_entities("Jordan", mention_type="country")
        assert [h.concept_id for h in hits] == ["Q3"]

    def test_type_filter_person(self, index):
        hits = index.lookup_entities("Jordan", mention_type="person")
        assert {h.concept_id for h in hits} == {"Q1", "Q2"}

    def test_local_distance(self, index):
        hit = index.lookup_entities("Michael Jordan")[0]
        assert hit.local_distance == pytest.approx(0.3)

    def test_has_entity_alias(self, index):
        assert index.has_entity_alias("M. Jordan")
        assert not index.has_entity_alias("nothing here")


class TestPredicateLookup:
    def test_shared_alias_ranked_by_popularity(self, index):
        hits = index.lookup_predicates("studies")
        assert [h.concept_id for h in hits] == ["P1", "P2"]
        assert hits[0].prior == pytest.approx(0.6)

    def test_label_lookup(self, index):
        hits = index.lookup_predicates("educated at")
        assert hits[0].concept_id == "P2"

    def test_kind_marker(self, index):
        assert index.lookup_predicates("studies")[0].kind == "predicate"
        assert index.lookup_entities("Jordan")[0].kind == "entity"

    def test_predicate_aliases_listing(self, index):
        assert "studies" in index.predicate_aliases()

    def test_has_predicate_alias(self, index):
        assert index.has_predicate_alias("Studies")


class TestFuzzyLookup:
    def test_token_subset_matches(self, index):
        hits = index.fuzzy_lookup_entities("Michael")
        assert any(h.concept_id in ("Q1", "Q2") for h in hits)

    def test_fuzzy_weaker_than_exact(self, index):
        exact = index.lookup_entities("Michael Jordan")[0].prior
        fuzzy = index.fuzzy_lookup_entities("Michael")[0].prior
        assert fuzzy < exact

    def test_fuzzy_no_match(self, index):
        assert index.fuzzy_lookup_entities("completely unrelated words") == []

    def test_short_tokens_ignored(self, index):
        assert index.fuzzy_lookup_entities("a an of") == []


class TestVocabulary:
    def test_entity_alias_tokens(self, index):
        tokens = index.entity_alias_tokens()
        assert "michael" in tokens
        assert "jordan" in tokens

    def test_alias_count(self, index):
        # michael jordan, jordan, m. jordan
        assert index.entity_alias_count() == 3


class TestFuzzyCache:
    def test_repeat_lookup_hits_memo(self, index):
        first = index.fuzzy_lookup_entities("Michael")
        stats = index.fuzzy_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = index.fuzzy_lookup_entities("Michael")
        stats = index.fuzzy_cache_stats()
        assert stats["hits"] == 1
        assert second == first

    def test_memo_keyed_on_normalised_phrase(self, index):
        index.fuzzy_lookup_entities("Michael")
        index.fuzzy_lookup_entities("  MICHAEL  ")
        assert index.fuzzy_cache_stats()["hits"] == 1

    def test_adding_entity_invalidates_memo(self, index):
        from repro.kb.records import EntityRecord

        assert index.fuzzy_lookup_entities("Maxwell") == []
        index.add_entity(
            EntityRecord("Q9", "James Maxwell", types=("person",), popularity=10)
        )
        hits = index.fuzzy_lookup_entities("Maxwell")
        assert [h.concept_id for h in hits] == ["Q9"]

    def test_cached_results_are_fresh_lists(self, index):
        first = index.fuzzy_lookup_entities("Michael")
        first.append("mutated")
        second = index.fuzzy_lookup_entities("Michael")
        assert "mutated" not in second

    def test_memo_can_be_disabled(self):
        index = AliasIndex(fuzzy_cache_size=None)
        index.add_entity(
            EntityRecord("Q1", "Michael Jordan", types=("person",), popularity=1)
        )
        index.fuzzy_lookup_entities("Michael")
        index.fuzzy_lookup_entities("Michael")
        assert index.fuzzy_cache_stats()["hits"] == 0

    def test_different_limits_share_one_memo_entry(self, index):
        # The memo stores the unsliced tuple per normalised phrase and
        # slices per call: three lookups, one miss, two hits, one entry.
        unlimited = index.fuzzy_lookup_entities("Jordan")
        top_one = index.fuzzy_lookup_entities("Jordan", limit=1)
        top_two = index.fuzzy_lookup_entities("Jordan", limit=2)
        stats = index.fuzzy_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1
        assert top_one == unlimited[:1]
        assert top_two == unlimited[:2]

    def test_limit_slicing_matches_uncached_path(self, index):
        for limit in (None, 1, 2, 10):
            cached = index.fuzzy_lookup_entities("Michael", limit=limit)
            assert cached == index._fuzzy_lookup_uncached("Michael", limit)


class TestFuzzyOverlapClamp:
    @pytest.fixture
    def single_token_index(self):
        index = AliasIndex()
        index.add_entity(
            EntityRecord("Q1", "Tesla", types=("organization",), popularity=10)
        )
        return index

    def test_repeated_query_tokens_do_not_inflate_overlap(
        self, single_token_index
    ):
        # "tesla tesla tesla" has three content tokens but one distinct
        # token; against the one-token alias the raw ratio would be 3.0.
        exact = single_token_index.lookup_entities("Tesla")[0].prior
        fuzzy = single_token_index.fuzzy_lookup_entities("Tesla Tesla Tesla")
        assert fuzzy
        assert fuzzy[0].prior <= 0.5 * exact

    def test_fuzzy_never_outranks_exact(self, index):
        exact = index.lookup_entities("Jordan")[0].prior
        for phrase in ("Jordan Jordan", "Jordan Jordan Jordan Michael"):
            for hit in index.fuzzy_lookup_entities(phrase):
                assert hit.prior < exact

    @given(
        st.lists(
            st.sampled_from(["michael", "jordan", "tesla", "maxwell"]),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fuzzy_prior_bounded_by_half(self, tokens):
        # Priors are scaled by overlap * 0.5 and overlap is clamped to
        # 1.0, so no fuzzy hit can ever exceed 0.5 — with or without
        # repeated content tokens in the query.
        index = AliasIndex()
        index.add_entity(
            EntityRecord("Q1", "Michael Jordan", types=("person",), popularity=5)
        )
        index.add_entity(
            EntityRecord("Q2", "Tesla", types=("organization",), popularity=5)
        )
        for hit in index.fuzzy_lookup_entities(" ".join(tokens)):
            assert 0.0 < hit.prior <= 0.5
