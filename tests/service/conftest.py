"""Service-test fixtures.

``TENET_TEST_WORKERS`` scales the worker pools used by the service
tests so CI can re-run the suite under real contention (workers=8)
without editing any test.
"""

import os

import pytest


@pytest.fixture(scope="session")
def service_workers() -> int:
    """Worker-pool size for service tests (default 4)."""
    return int(os.environ.get("TENET_TEST_WORKERS", "4"))
