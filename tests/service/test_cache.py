"""LRU primitive and cross-request cache wiring tests."""

import threading

import pytest

from repro.caching import LRUCache, make_cache
from repro.core.candidates import CandidateGenerator
from repro.core.linker import TenetLinker
from repro.service.cache import LinkerCacheConfig, LinkerCaches, attach_caches


class TestLRUCache:
    def test_get_put(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing", "default") == "default"

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        snapshot = cache.snapshot()
        assert snapshot["size"] == 1 and snapshot["maxsize"] == 2

    def test_get_or_compute(self):
        cache = LRUCache(2)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert value == "v" and len(calls) == 1
        value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert value == "v" and len(calls) == 1

    def test_falsy_values_are_cached(self):
        cache = LRUCache(2)
        cache.put("zero", 0.0)
        calls = []
        assert cache.get_or_compute("zero", lambda: calls.append(1) or 1) == 0.0
        assert not calls

    def test_mapping_protocol(self):
        cache = LRUCache(2)
        cache["k"] = 5
        assert cache["k"] == 5
        assert len(cache) == 1
        with pytest.raises(KeyError):
            cache["missing"]

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_make_cache(self):
        assert make_cache(None) is None
        assert make_cache(0) is None
        assert isinstance(make_cache(3), LRUCache)

    def test_concurrent_access_is_consistent(self):
        cache = LRUCache(64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = (base + i) % 32
                    value = cache.get_or_compute(key, lambda k=key: k * 2)
                    assert value == key * 2
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64

    def test_concurrent_snapshot_is_never_torn(self):
        # The snapshot must be one consistent state of the counters: its
        # hit_rate always recomputes from its own hits/misses, even while
        # workers are mutating the stats (the old implementation read the
        # stats outside the lock and could report a torn triple).
        cache = LRUCache(8)
        cache.put("hot", 1)
        stop = threading.Event()
        errors = []
        rounds = [0] * 4

        def churn(base):
            i = 0
            while not stop.is_set():
                cache.get("hot")
                cache.get(("miss", base, i))
                i += 1
            rounds[base] = i

        def observer():
            try:
                while not stop.is_set():
                    snap = cache.snapshot()
                    lookups = snap["hits"] + snap["misses"]
                    expected = (
                        round(snap["hits"] / lookups, 4) if lookups else 0.0
                    )
                    assert snap["hit_rate"] == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(n,)) for n in range(4)]
        threads += [threading.Thread(target=observer) for _ in range(2)]
        for t in threads:
            t.start()
        threading.Event().wait(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        # After the churn quiesces the counters balance exactly: every
        # round was one hit on "hot" plus one unique-key miss (plain
        # ``get`` never inserts, so "hot" is never evicted).
        final = cache.snapshot()
        assert final["hits"] == sum(rounds)
        assert final["misses"] == sum(rounds)


class TestCandidateGeneratorCache:
    def test_cached_matches_uncached(self, context, tenet):
        cached = CandidateGenerator(context.alias_index, cache=LRUCache(128))
        plain = CandidateGenerator(context.alias_index)
        extraction = tenet.pipeline.extract(
            "Brooklyn is twinned with Brooklyn. Brooklyn grew."
        )
        assert cached.generate(extraction).by_mention == plain.generate(
            extraction
        ).by_mention
        # The repeated mention is served from the memo.
        assert cached.cache.stats.hits > 0

    def test_cached_results_are_fresh_lists(self, context, tenet):
        generator = CandidateGenerator(context.alias_index, cache=LRUCache(16))
        span = tenet.pipeline.extract("Brooklyn grew.").noun_spans[0]
        first = generator.entity_candidates(span)
        first.append("mutated")
        assert "mutated" not in generator.entity_candidates(span)


class TestLinkerCaches:
    def test_disabled_bundle(self):
        caches = LinkerCaches.disabled()
        assert not caches.enabled
        snapshot = caches.snapshot()
        assert snapshot["candidates"] is None and snapshot["similarity"] is None

    def test_attach_and_snapshot(self, context):
        caches = LinkerCaches(LinkerCacheConfig(candidate_cache_size=64))
        linker = attach_caches(TenetLinker(context), caches)
        linker.link("Brooklyn is twinned with Brooklyn.")
        snapshot = caches.snapshot(linker)
        assert snapshot["enabled"]
        assert snapshot["candidates"]["size"] > 0
        assert snapshot["similarity"]["size"] >= 0
        assert "alias_fuzzy" in snapshot

    def test_attached_linker_matches_plain(self, context):
        text = "Brooklyn is twinned with Brooklyn. Brooklyn grew."
        plain = TenetLinker(context).link(text)
        caches = LinkerCaches()
        cached_linker = attach_caches(TenetLinker(context), caches)
        # Twice: the second pass is served from warm caches.
        first = cached_linker.link(text)
        second = cached_linker.link(text)
        assert first.to_json(include_timings=False) == plain.to_json(
            include_timings=False
        )
        assert second.to_json(include_timings=False) == plain.to_json(
            include_timings=False
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LinkerCacheConfig(candidate_cache_size=-1)
