"""Engine tests: concurrency parity, caching parity, degradation, metrics."""

import threading

import pytest

from repro.core.linker import TenetLinker
from repro.service.cache import LinkerCacheConfig
from repro.service.engine import LinkingService, ServiceConfig
from repro.service.schema import BatchLinkRequest, LinkRequest


@pytest.fixture(scope="module")
def documents(suite):
    texts = [doc.text for doc in suite.kore50.documents[:4]]
    texts += [doc.text for doc in suite.news.documents[:4]]
    # Repeat the workload so cross-request caches see repeated mentions.
    return texts * 2


@pytest.fixture(scope="module")
def sequential_payloads(suite_context, documents):
    linker = TenetLinker(suite_context)
    return [linker.link(text).to_json(include_timings=False) for text in documents]


@pytest.fixture()
def service(suite_context, service_workers):
    with LinkingService(
        suite_context, ServiceConfig(workers=service_workers)
    ) as svc:
        yield svc


class TestParity:
    def test_sequential_service_matches_linker(
        self, service, documents, sequential_payloads
    ):
        for text, expected in zip(documents, sequential_payloads):
            response = service.link(LinkRequest(text=text))
            assert response.ok and not response.degraded
            assert response.result == expected

    def test_concurrent_requests_match_sequential(
        self, service, documents, sequential_payloads
    ):
        results = [None] * len(documents)
        errors = []

        def client(indices):
            try:
                for i in indices:
                    results[i] = service.link(LinkRequest(text=documents[i])).result
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(range(n, len(documents), 8),))
            for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == sequential_payloads

    def test_cache_disabled_matches_enabled(
        self, suite_context, documents, sequential_payloads
    ):
        config = ServiceConfig(workers=2, cache=LinkerCacheConfig(enabled=False))
        with LinkingService(suite_context, config) as uncached:
            assert not uncached.caches.enabled
            for text, expected in zip(documents, sequential_payloads):
                assert uncached.link(LinkRequest(text=text)).result == expected

    def test_batch_matches_sequential(self, service, documents, sequential_payloads):
        batch = BatchLinkRequest.of_texts(*documents)
        response = service.link_batch(batch)
        assert response.ok
        assert [r.result for r in response.responses] == sequential_payloads

    def test_enqueue_matches_sequential(self, service, documents, sequential_payloads):
        futures = [service.enqueue(LinkRequest(text=t)) for t in documents]
        payloads = [f.result(timeout=60).result for f in futures]
        assert payloads == sequential_payloads


class TestCaching:
    def test_repeated_workload_exceeds_half_hit_rate(self, suite_context, documents):
        with LinkingService(suite_context, ServiceConfig(workers=2)) as svc:
            for text in documents:
                svc.link(LinkRequest(text=text))
            stats = svc.caches.snapshot(svc.linker)["candidates"]
            assert stats["hit_rate"] > 0.5


class TestDegradation:
    def test_timeout_falls_back_to_prior_only(self, suite_context, documents):
        text = documents[0]
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            release = threading.Event()
            try:
                # Saturate the single worker so the request cannot start
                # before its deadline — deterministic timeout.
                blocker = svc._pool.submit(release.wait)
                response = svc.link(LinkRequest(text=text, timeout_seconds=0.05))
            finally:
                release.set()
            blocker.result(timeout=5)
            assert response.ok
            assert response.degraded
            expected = svc.linker.link_prior_only(text)
            assert response.result == expected.to_json(include_timings=False)
            assert svc.metrics.counter("requests.timeouts") == 1

    def test_degraded_entities_subset_of_candidates(self, suite_context, documents):
        # The fallback is meaningful: it still links the unambiguous
        # high-prior mentions of the document.
        with LinkingService(suite_context) as svc:
            result = svc.linker.link_prior_only(documents[0])
            degraded_surfaces = {l.surface for l in result.entity_links}
            assert degraded_surfaces  # not empty on a real document
            assert "prior_only" in result.stage_seconds

    def test_handle_wraps_errors(self, suite_context, monkeypatch):
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            def boom(text, deadline=None, trace=None):
                raise RuntimeError("kaput")

            monkeypatch.setattr(svc.linker, "link", boom)
            response = svc.handle(LinkRequest(text="whatever text"))
            assert not response.ok
            assert response.error.code == "internal"
            assert "kaput" in response.error.message
            assert svc.metrics.counter("requests.errors") == 1


class TestMetricsIntegration:
    def test_counters_and_latencies_increment(self, suite_context, documents):
        with LinkingService(suite_context, ServiceConfig(workers=2)) as svc:
            svc.link(LinkRequest(text=documents[0]))
            svc.link_batch(BatchLinkRequest.of_texts(documents[1], documents[2]))
            snapshot = svc.snapshot()
            counters = snapshot["counters"]
            assert counters["requests.total"] == 3
            assert counters["requests.completed"] == 3
            assert counters["requests.batches"] == 1
            assert counters["requests.batched_documents"] == 2
            assert snapshot["latencies"]["latency.link"]["count"] == 3
            # Stage timings flow from LinkingResult.stage_seconds.
            assert snapshot["latencies"]["stage.total"]["count"] == 3
            assert snapshot["caches"]["enabled"]

    def test_request_id_echoed(self, suite_context, documents):
        with LinkingService(suite_context) as svc:
            response = svc.link(LinkRequest(text=documents[0], request_id="abc-1"))
            assert response.request_id == "abc-1"
            assert response.to_json()["request_id"] == "abc-1"


class TestMicroBatcher:
    def test_coalesces_up_to_max_size(self, suite_context, documents):
        config = ServiceConfig(
            workers=2, batch_max_size=4, batch_max_delay_seconds=0.2
        )
        with LinkingService(suite_context, config) as svc:
            futures = [
                svc.enqueue(LinkRequest(text=documents[i])) for i in range(4)
            ]
            for future in futures:
                assert future.result(timeout=60).ok
            assert svc.metrics.counter("batcher.documents") == 4
            # With a generous delay window the four requests coalesce
            # into at most two dispatch groups.
            assert svc.metrics.counter("batcher.batches") <= 2

    def test_closed_batcher_rejects(self, suite_context):
        svc = LinkingService(suite_context, ServiceConfig(workers=1))
        svc.close()
        with pytest.raises(RuntimeError):
            svc.enqueue(LinkRequest(text="too late"))


class TestConfigValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            ServiceConfig(default_timeout_seconds=-1)

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            ServiceConfig(batch_max_size=0)
