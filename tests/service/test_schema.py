"""Wire-schema round-trip and validation tests."""

import json

import pytest

from repro.service.schema import (
    BatchLinkRequest,
    BatchLinkResponse,
    LinkRequest,
    LinkResponse,
    SchemaError,
    ServiceError,
)


class TestLinkRequest:
    def test_round_trip(self):
        request = LinkRequest(text="Brooklyn grew.", request_id="r1", timeout_seconds=0.5)
        rebuilt = LinkRequest.from_json(json.loads(json.dumps(request.to_json())))
        assert rebuilt == request

    def test_minimal_round_trip(self):
        request = LinkRequest(text="x")
        assert LinkRequest.from_json(request.to_json()) == request
        assert "request_id" not in request.to_json()

    def test_empty_text_rejected(self):
        with pytest.raises(SchemaError):
            LinkRequest(text="   ")

    def test_non_string_text_rejected(self):
        with pytest.raises(SchemaError):
            LinkRequest.from_json({"text": 42})

    def test_missing_text_rejected(self):
        with pytest.raises(SchemaError):
            LinkRequest.from_json({})

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            LinkRequest.from_json({"text": "x", "bogus": 1})

    def test_negative_timeout_rejected(self):
        with pytest.raises(SchemaError):
            LinkRequest(text="x", timeout_seconds=-1)

    def test_non_object_rejected(self):
        with pytest.raises(SchemaError):
            LinkRequest.from_json("just text")


class TestLinkResponse:
    def test_round_trip(self):
        response = LinkResponse(
            result={"entities": [], "relations": [], "non_linkable": []},
            request_id="r1",
            degraded=True,
            elapsed_seconds=0.25,
            timings={"extract": 0.1, "total": 0.25},
        )
        rebuilt = LinkResponse.from_json(json.loads(json.dumps(response.to_json())))
        assert rebuilt == response
        assert rebuilt.ok

    def test_error_round_trip(self):
        response = LinkResponse(error=ServiceError("internal", "boom"))
        rebuilt = LinkResponse.from_json(response.to_json())
        assert not rebuilt.ok
        assert rebuilt.error.code == "internal"


class TestBatch:
    def test_round_trip(self):
        batch = BatchLinkRequest.of_texts("one doc", "another doc")
        rebuilt = BatchLinkRequest.from_json(json.loads(json.dumps(batch.to_json())))
        assert rebuilt == batch

    def test_bare_strings_accepted(self):
        batch = BatchLinkRequest.from_json({"documents": ["a doc", {"text": "b doc"}]})
        assert [r.text for r in batch.requests] == ["a doc", "b doc"]

    def test_empty_batch_rejected(self):
        with pytest.raises(SchemaError):
            BatchLinkRequest.from_json({"documents": []})

    def test_response_round_trip(self):
        response = BatchLinkResponse(
            (LinkResponse(result={"entities": []}), LinkResponse(degraded=True))
        )
        rebuilt = BatchLinkResponse.from_json(response.to_json())
        assert rebuilt == response
        assert rebuilt.ok
