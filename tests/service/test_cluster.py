"""Multi-process cluster serving: parity, dispatch, death, drain.

Every cluster here boots from one shared on-disk snapshot store (built
once per module), which is both the production shape and what keeps
worker boot fast enough for tests.  Parity is the load-bearing property:
a worker process runs the exact single-process ``LinkingService.handle``
path over a context deserialised from the same artifact, so its result
payloads must be byte-identical to the in-process engine's.
"""

import json
import threading
import time

import pytest

from repro.service import (
    ClusterConfig,
    LinkingService,
    LinkRequest,
    ServiceConfig,
    WorkerDiedError,
    create_cluster_service,
)
from repro.service.cluster import _HashRing
from repro.service.schema import BatchLinkRequest
from repro.snapshot.store import SnapshotSpec, load_or_build

SEED = 7
SCALE = 0.1


@pytest.fixture(scope="module")
def snapshot_store(tmp_path_factory):
    """One snapshot store shared by every cluster boot in this module."""
    root = tmp_path_factory.mktemp("cluster-store")
    warm = load_or_build(root, SnapshotSpec(seed=SEED, scales=(SCALE,)))
    return root, warm


@pytest.fixture(scope="module")
def corpus(snapshot_store):
    _root, warm = snapshot_store
    datasets = warm.datasets_for_scale(SCALE)
    texts = [
        document.text
        for dataset in datasets
        for document in dataset.documents
    ][:6]
    assert len(texts) >= 3, "snapshot corpus unexpectedly small"
    return texts


@pytest.fixture(scope="module")
def cluster(snapshot_store):
    root, _warm = snapshot_store
    service = create_cluster_service(
        processes=2, snapshot_path=root, seed=SEED, scales=(SCALE,)
    )
    yield service
    service.close()


def _canonical(responses):
    return [json.dumps(r.result, sort_keys=True) for r in responses.responses]


def _wait_until(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestParity:
    def test_output_identical_across_worker_counts(
        self, snapshot_store, corpus
    ):
        """`link` output is byte-identical across --workers 1,
        --workers 4, and the single-process engine over the same
        snapshot."""
        root, warm = snapshot_store
        requests = tuple(
            LinkRequest(text=text, request_id=f"parity-{i}")
            for i, text in enumerate(corpus)
        )
        with LinkingService(warm.context, ServiceConfig(workers=1)) as single:
            reference = _canonical(single.link_batch(BatchLinkRequest(requests)))
        for processes in (1, 4):
            service = create_cluster_service(
                processes=processes,
                snapshot_path=root,
                seed=SEED,
                scales=(SCALE,),
            )
            try:
                got = _canonical(service.link_batch(BatchLinkRequest(requests)))
            finally:
                service.close()
            assert got == reference, (
                f"cluster with {processes} worker(s) diverged from the "
                f"single-process engine"
            )

    def test_expired_deadline_degrades_like_single_process(
        self, cluster, corpus
    ):
        """The deadline envelope travels: a request submitted with no
        budget left comes back as the degraded prior-only answer, not an
        error and not a hang."""
        response = cluster.link(
            LinkRequest(text=corpus[0], request_id="dead", timeout_seconds=0.0)
        )
        assert response.error is None
        assert response.degraded


class TestDispatchAndMetrics:
    def test_cluster_block_and_folded_counters(self, cluster, corpus):
        for i, text in enumerate(corpus[:4]):
            response = cluster.link(
                LinkRequest(text=text, request_id=f"doc-{i}")
            )
            assert response.error is None
        payload = cluster.snapshot()
        block = payload["cluster"]
        assert block["workers"] == 2
        assert block["alive"] == 2
        assert block["deaths"] == 0
        assert {w["id"] for w in block["per_worker"]} == {"w0", "w1"}
        dispatched = sum(w["dispatched"] for w in block["per_worker"])
        assert dispatched >= 4
        dispatch = block["dispatch"]
        assert (
            dispatch["least_loaded"] + dispatch["hash_fallback"] >= 4
        )
        counters = payload["counters"]
        # Per-worker engine counters folded in under the worker prefix.
        folded = sum(
            counters.get(f"cluster.worker.w{i}.requests.total", 0)
            for i in range(2)
        )
        assert folded >= 4
        assert payload["gauges"]["cluster.workers"] == 2

    def test_hash_ring_is_deterministic(self):
        ring = _HashRing(points=32)
        for worker_id in ("w0", "w1", "w2"):
            ring.add(worker_id)
        picks = {ring.pick("doc-42", ("w0", "w1", "w2")) for _ in range(10)}
        assert len(picks) == 1
        assert ring.pick("doc-42", ("w1",)) == "w1"
        assert ring.pick("doc-42", ()) is None


class TestWorkerDeath:
    def test_kill_fails_inflight_with_503_and_respawns(self, snapshot_store):
        """A killed worker's in-flight requests resolve with the clean
        `unavailable` envelope (no hung futures), and a replacement
        respawns from the same snapshot."""
        root, _warm = snapshot_store
        service = create_cluster_service(
            processes=2, snapshot_path=root, seed=SEED, scales=(SCALE,)
        )
        try:
            victim = service.registry.get("w0")
            old_pid = victim.pid
            # Park the (serial) worker loop so the next dispatch is
            # deterministically in flight when the process dies.
            parked = victim.call("sleep", 30.0)
            pending = victim.dispatch(
                LinkRequest(text="doomed document", request_id="doomed"), None
            )
            victim.kill()
            with pytest.raises(WorkerDiedError):
                pending.result(timeout=30)
            with pytest.raises(WorkerDiedError):
                parked.result(timeout=30)

            # The service-level path wraps the same failure as a 503.
            assert _wait_until(
                lambda: (
                    service.registry.get("w0") is not victim
                    and service.registry.get("w0").alive
                )
            ), "worker w0 was never respawned"
            replacement = service.registry.get("w0")
            assert replacement.pid != old_pid
            assert service.registry.deaths == 1
            assert service.registry.respawns == 1

            # The cluster keeps serving through (and after) the respawn.
            response = service.link(
                LinkRequest(text="still serving", request_id="after")
            )
            assert response.error is None
        finally:
            service.close()

    def test_all_workers_dead_yields_unavailable(self, snapshot_store):
        """respawn=False + dead fleet: requests get the 503 envelope."""
        root, _warm = snapshot_store
        service = create_cluster_service(
            processes=1,
            snapshot_path=root,
            seed=SEED,
            scales=(SCALE,),
            cluster_config=ClusterConfig(processes=1, respawn=False),
        )
        try:
            handle = service.registry.get("w0")
            handle.kill()
            assert _wait_until(lambda: not handle.alive)
            response = service.link(
                LinkRequest(text="nobody home", request_id="orphan")
            )
            assert response.error is not None
            assert response.error.code == "unavailable"
            counters = service.snapshot()["counters"]
            assert counters.get("cluster.no_worker", 0) >= 1
        finally:
            service.close()


class TestDrain:
    def test_close_resolves_every_inflight_future(self, snapshot_store, corpus):
        """Graceful drain: close() while requests are in flight resolves
        every future with a real response or the clean 503 envelope —
        never a hang."""
        root, _warm = snapshot_store
        service = create_cluster_service(
            processes=2, snapshot_path=root, seed=SEED, scales=(SCALE,)
        )
        futures = []
        try:
            for i in range(8):
                futures.append(
                    service.submit(
                        LinkRequest(
                            text=corpus[i % len(corpus)],
                            request_id=f"drain-{i}",
                        )
                    )
                )
        finally:
            closer = threading.Thread(target=service.close)
            closer.start()
            closer.join(timeout=120)
            assert not closer.is_alive(), "cluster close() hung"
        for future in futures:
            assert future.done(), "a future was left pending across close()"
            response = future.result(timeout=0)
            assert response.error is None or response.error.code == (
                "unavailable"
            )

    def test_link_after_close_is_clean_503(self, snapshot_store):
        root, _warm = snapshot_store
        service = create_cluster_service(
            processes=1, snapshot_path=root, seed=SEED, scales=(SCALE,)
        )
        service.close()
        response = service.link(LinkRequest(text="late", request_id="late"))
        assert response.error is not None
        assert response.error.code == "unavailable"
