"""Metrics registry and histogram tests."""

import threading

import pytest

from repro.service.metrics import LatencyHistogram, MetricsRegistry


class TestLatencyHistogram:
    def test_observe_and_snapshot(self):
        histogram = LatencyHistogram()
        for value in (0.002, 0.003, 0.2):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum_seconds"] == pytest.approx(0.205)
        assert snapshot["min_seconds"] == pytest.approx(0.002)
        assert snapshot["max_seconds"] == pytest.approx(0.2)
        assert snapshot["mean_seconds"] == pytest.approx(0.205 / 3)

    def test_quantiles_monotone(self):
        histogram = LatencyHistogram()
        for i in range(100):
            histogram.observe(i / 1000.0)
        p50, p90, p99 = (
            histogram.quantile(0.5),
            histogram.quantile(0.9),
            histogram.quantile(0.99),
        )
        assert p50 <= p90 <= p99

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) is None
        assert histogram.snapshot()["count"] == 0

    def test_overflow_bucket(self):
        histogram = LatencyHistogram(buckets=(0.1,))
        histogram.observe(5.0)
        assert histogram.snapshot()["overflow"] == 1


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.incr("requests")
        metrics.incr("requests", 2)
        assert metrics.counter("requests") == 3
        assert metrics.counter("unknown") == 0

    def test_observe_stages(self):
        metrics = MetricsRegistry()
        metrics.observe_stages({"extract": 0.01, "total": 0.05})
        snapshot = metrics.snapshot()
        assert snapshot["latencies"]["stage.extract"]["count"] == 1
        assert snapshot["latencies"]["stage.total"]["count"] == 1

    def test_thread_safety(self):
        metrics = MetricsRegistry()

        def worker():
            for _ in range(500):
                metrics.incr("n")
                metrics.observe("lat", 0.01)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("n") == 4000
        assert metrics.snapshot()["latencies"]["lat"]["count"] == 4000
