"""Metrics registry and histogram tests."""

import threading

import pytest

from repro.service.metrics import LatencyHistogram, MetricsRegistry


class TestLatencyHistogram:
    def test_observe_and_snapshot(self):
        histogram = LatencyHistogram()
        for value in (0.002, 0.003, 0.2):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum_seconds"] == pytest.approx(0.205)
        assert snapshot["min_seconds"] == pytest.approx(0.002)
        assert snapshot["max_seconds"] == pytest.approx(0.2)
        assert snapshot["mean_seconds"] == pytest.approx(0.205 / 3)

    def test_quantiles_monotone(self):
        histogram = LatencyHistogram()
        for i in range(100):
            histogram.observe(i / 1000.0)
        p50, p90, p99 = (
            histogram.quantile(0.5),
            histogram.quantile(0.9),
            histogram.quantile(0.99),
        )
        assert p50 <= p90 <= p99

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) is None
        assert histogram.snapshot()["count"] == 0

    def test_overflow_bucket(self):
        histogram = LatencyHistogram(buckets=(0.1,))
        histogram.observe(5.0)
        assert histogram.snapshot()["overflow"] == 1


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.incr("requests")
        metrics.incr("requests", 2)
        assert metrics.counter("requests") == 3
        assert metrics.counter("unknown") == 0

    def test_observe_stages(self):
        metrics = MetricsRegistry()
        metrics.observe_stages({"extract": 0.01, "total": 0.05})
        snapshot = metrics.snapshot()
        assert snapshot["latencies"]["stage.extract"]["count"] == 1
        assert snapshot["latencies"]["stage.total"]["count"] == 1

    def test_thread_safety(self):
        metrics = MetricsRegistry()

        def worker():
            for _ in range(500):
                metrics.incr("n")
                metrics.observe("lat", 0.01)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("n") == 4000
        assert metrics.snapshot()["latencies"]["lat"]["count"] == 4000


class TestMergeCounters:
    def test_basic_fold(self):
        metrics = MetricsRegistry()
        metrics.incr("requests.total", 5)
        metrics.merge_counters({"requests.total": 3, "noop": 0})
        assert metrics.counter("requests.total") == 8
        # zero deltas are skipped entirely — no key is created
        assert "noop" not in metrics.snapshot()["counters"]

    def test_prefix(self):
        metrics = MetricsRegistry()
        metrics.merge_counters({"requests.total": 2}, prefix="cluster.worker.w0.")
        assert metrics.counter("cluster.worker.w0.requests.total") == 2
        assert metrics.counter("requests.total") == 0

    def test_contended_fold_is_exact(self, service_workers):
        """N threads folding worker deltas + incrementing directly must
        lose nothing: every read-modify-write happens under the registry
        lock (run with TENET_TEST_WORKERS=8 for real contention)."""
        metrics = MetricsRegistry()
        rounds = 300

        def folder(worker_id: int) -> None:
            prefix = f"cluster.worker.w{worker_id}."
            for _ in range(rounds):
                metrics.merge_counters(
                    {"requests.total": 1, "requests.completed": 1},
                    prefix=prefix,
                )
                metrics.merge_counters({"shared.total": 1})
                metrics.incr("shared.incr")

        threads = [
            threading.Thread(target=folder, args=(i,))
            for i in range(service_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("shared.total") == service_workers * rounds
        assert metrics.counter("shared.incr") == service_workers * rounds
        for i in range(service_workers):
            assert (
                metrics.counter(f"cluster.worker.w{i}.requests.total") == rounds
            )


class TestSimilarityStatsContention:
    def test_batch_counters_are_exact_under_threads(self, service_workers):
        """SimilarityIndex.batch_calls/batch_pairs are read-modify-write
        counters shared across service workers; the per-call lock must
        make the totals exact, not approximately right."""
        import numpy as np

        from repro.embeddings.similarity import SimilarityIndex
        from repro.embeddings.store import EmbeddingStore

        store = EmbeddingStore.from_matrix(
            ["a", "b", "c", "d"], np.eye(4, dtype=np.float32)
        )
        index = SimilarityIndex(store)
        calls_per_thread = 200
        ids = ["a", "b", "c"]  # 3 unordered pairs per call

        def worker() -> None:
            for _ in range(calls_per_thread):
                index.batch_similarity(ids)

        threads = [
            threading.Thread(target=worker) for _ in range(service_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = index.batch_stats()
        expected_calls = service_workers * calls_per_thread
        assert stats["batch_calls"] == expected_calls
        assert stats["batch_pairs"] == expected_calls * 3
