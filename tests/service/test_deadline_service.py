"""Deadline propagation through the service: cooperative cancellation,
partial-result salvage, worker release, and batch deadline anchoring."""

import threading
import time

import pytest

from repro.core.deadline import Deadline
from repro.service.engine import (
    LinkingService,
    ServiceClosedError,
    ServiceConfig,
)
from repro.service.schema import BatchLinkRequest, LinkRequest


@pytest.fixture(scope="module")
def document(suite):
    return suite.kore50.documents[0].text


def _block_generation(svc, release, monkeypatch):
    """Make candidate generation park on *release* after completing.

    The worker then sits between the ``candidates`` and ``coherence``
    checkpoints until released — a deterministic stand-in for a slow
    pipeline stage.
    """
    real_generate = svc.linker.generator.generate

    def slow_generate(extraction):
        result = real_generate(extraction)
        release.wait(timeout=30)
        return result

    monkeypatch.setattr(svc.linker.generator, "generate", slow_generate)


class TestCooperativeCancellation:
    def test_cancelled_worker_salvages_candidates_and_releases(
        self, suite_context, document, monkeypatch
    ):
        # Generous grace: the caller waits for the worker's own abort,
        # which must deliver the partial-based degraded response.
        config = ServiceConfig(workers=1, cancel_grace_seconds=10.0)
        with LinkingService(suite_context, config) as svc:
            release = threading.Event()
            _block_generation(svc, release, monkeypatch)
            # Release the worker shortly after the 0.05s deadline trips:
            # it resumes, hits the next checkpoint, and aborts.
            timer = threading.Timer(0.25, release.set)
            timer.start()
            try:
                response = svc.link(
                    LinkRequest(text=document, timeout_seconds=0.05)
                )
            finally:
                timer.cancel()
                release.set()

            assert response.ok and response.degraded
            assert response.aborted_stage == "coherence"
            expected = svc.linker.link_prior_only(document)
            assert response.result == expected.to_json(include_timings=False)
            assert svc.metrics.counter("requests.cancelled") == 1
            assert svc.metrics.counter("stage.coherence.aborted") == 1
            assert svc.metrics.counter("requests.abandoned") == 0
            # The worker was released, not abandoned: the single-thread
            # pool serves a fresh request promptly and at full quality.
            follow_up = svc.link(LinkRequest(text=document))
            assert follow_up.ok and not follow_up.degraded
            assert svc.metrics.gauge("pool.active_workers") == 0.0

    def test_blown_grace_degrades_caller_side(
        self, suite_context, document, monkeypatch
    ):
        # Zero grace: the caller does not wait for the parked worker and
        # answers from the prior-only path in its own thread.
        config = ServiceConfig(workers=1, cancel_grace_seconds=0.0)
        with LinkingService(suite_context, config) as svc:
            release = threading.Event()
            _block_generation(svc, release, monkeypatch)
            try:
                response = svc.link(
                    LinkRequest(text=document, timeout_seconds=0.05)
                )
            finally:
                release.set()

            assert response.ok and response.degraded
            expected = svc.linker.link_prior_only(document)
            assert response.result == expected.to_json(include_timings=False)
            assert svc.metrics.counter("requests.abandoned") == 1
            assert svc.metrics.counter("requests.timeouts") == 1
        # Context-manager close joined the pool: the released worker
        # finished its abort and recorded the cooperative cancellation.
        assert svc.metrics.counter("requests.cancelled") == 1

    def test_handle_with_expired_deadline_is_prior_only(
        self, suite_context, document
    ):
        # Cancellation landing before candidate generation: nothing to
        # salvage, the degraded answer recomputes the prior-only path.
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            response = svc.handle(
                LinkRequest(text=document), deadline=Deadline.after(0.0)
            )
            assert response.ok and response.degraded
            assert response.aborted_stage == "extract"
            expected = svc.linker.link_prior_only(document)
            assert response.result == expected.to_json(include_timings=False)
            assert svc.metrics.counter("requests.cancelled") == 1
            assert svc.metrics.counter("stage.extract.aborted") == 1

    def test_metrics_snapshot_reports_cancellation_counters(
        self, suite_context, document
    ):
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            svc.handle(
                LinkRequest(text=document), deadline=Deadline.after(0.0)
            )
            snapshot = svc.snapshot()
            assert snapshot["counters"]["requests.cancelled"] == 1
            assert snapshot["counters"]["stage.extract.aborted"] == 1
            assert snapshot["gauges"]["pool.worker_count"] == 1
            assert snapshot["config"]["cancel_grace_seconds"] == 0.1


class TestBatchDeadlineAnchoring:
    def test_batch_deadlines_anchor_at_submission(self, suite_context, document):
        # Three requests behind a saturated 1-worker pool, each with a
        # 0.2s budget.  Anchored at submission the windows overlap and
        # the whole batch resolves in ~one budget, not three; the old
        # per-turn ``future.result(timeout)`` accumulated them.
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            release = threading.Event()
            try:
                blocker = svc._pool.submit(release.wait, 30)
                batch = BatchLinkRequest(
                    tuple(
                        LinkRequest(
                            text=document,
                            request_id=f"b-{i}",
                            timeout_seconds=0.2,
                        )
                        for i in range(3)
                    )
                )
                started = time.perf_counter()
                response = svc.link_batch(batch)
                wall = time.perf_counter() - started
            finally:
                release.set()
            blocker.result(timeout=5)

            assert response.ok
            assert [r.request_id for r in response.responses] == [
                "b-0",
                "b-1",
                "b-2",
            ]
            assert all(r.degraded for r in response.responses)
            assert wall < 0.45
            for r in response.responses:
                # elapsed measures from each request's own submission.
                assert r.elapsed_seconds < 0.45
            assert svc.metrics.counter("requests.timeouts") == 3


class TestMicroBatcherShutdownRace:
    def test_close_vs_enqueue_leaves_no_pending_future(self, suite_context):
        # Hammer enqueue from several threads while close() lands: every
        # accepted future must resolve (response or typed shutdown
        # error), every rejected enqueue must raise the typed error, and
        # nothing may hang.
        for _ in range(3):
            svc = LinkingService(
                suite_context,
                ServiceConfig(workers=2, batch_max_delay_seconds=0.001),
            )
            futures = []
            futures_lock = threading.Lock()
            errors = []

            def hammer():
                for _ in range(300):
                    try:
                        future = svc.enqueue(LinkRequest(text="short doc"))
                    except ServiceClosedError:
                        return
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    with futures_lock:
                        futures.append(future)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.01)
            svc.close()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()
            assert not errors

            for future in futures:
                try:
                    response = future.result(timeout=10)
                except ServiceClosedError:
                    continue  # drained behind the shutdown sentinel
                assert response is not None

            with pytest.raises(ServiceClosedError):
                svc.enqueue(LinkRequest(text="too late"))
