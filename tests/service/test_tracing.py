"""Request-scoped tracing through the pipeline and the serving engine."""

import io
import json
import time

from repro.core.linker import TenetLinker
from repro.obs import StructuredLogger, Trace
from repro.service.engine import LinkingService, ServiceConfig
from repro.service.schema import BatchLinkRequest, LinkRequest


def _traced_service(suite_context, **overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("trace_enabled", True)
    return LinkingService(suite_context, ServiceConfig(**overrides))


class TestPipelineSpans:
    def test_spans_reuse_the_stage_stopwatch(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        trace = Trace(request_id="direct")
        result = linker.link(suite.kore50.documents[0].text, trace=trace)
        durations = trace.stage_durations()
        # Identical floats: the span records the same perf_counter
        # measurement that feeds LinkingResult.stage_seconds.
        for stage, seconds in result.stage_seconds.items():
            assert durations[stage] == seconds

    def test_stage_attributes_carry_sizes(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        trace = Trace()
        linker.link(suite.news.documents[0].text, trace=trace)
        by_name = {span.name: span for span in trace.spans}
        assert by_name["extract"].attributes["words"] > 0
        assert by_name["candidates"].attributes["mentions"] > 0
        assert by_name["coherence"].attributes["nodes"] > 0
        assert "entity_links" in by_name["disambiguation"].attributes

    def test_untraced_link_is_unchanged(self, suite_context, suite):
        linker = TenetLinker(suite_context)
        text = suite.kore50.documents[0].text
        traced = linker.link(text, trace=Trace())
        plain = linker.link(text)
        assert plain.to_json(include_timings=False) == traced.to_json(
            include_timings=False
        )


class TestEngineTracing:
    def test_response_trace_resolves_with_engine_spans(
        self, suite_context, suite
    ):
        with _traced_service(suite_context) as svc:
            response = svc.link(
                LinkRequest(text=suite.news.documents[0].text, request_id="r1")
            )
            assert response.trace_id is not None
            trace = svc.tracer.get(response.trace_id)
        assert trace is not None
        assert trace["request_id"] == "r1"
        spans = {s["name"]: s["duration_seconds"] for s in trace["spans"]}
        for stage, seconds in response.timings.items():
            assert spans[stage] == seconds
        assert "queue_wait" in spans
        assert "cache_lookups" in spans

    def test_queue_wait_is_measured_and_observed(self, suite_context, suite):
        with _traced_service(suite_context) as svc:
            svc.link(LinkRequest(text=suite.kore50.documents[0].text))
            snapshot = svc.snapshot()
        assert snapshot["latencies"]["latency.queue_wait"]["count"] >= 1
        assert snapshot["tracing"]["recorded_total"] >= 1
        assert snapshot["config"]["trace_enabled"] is True

    def test_batch_requests_get_distinct_traces(self, suite_context, suite):
        texts = [doc.text for doc in suite.kore50.documents[:3]]
        with _traced_service(suite_context) as svc:
            responses = svc.link_batch(BatchLinkRequest.of_texts(*texts))
            ids = [r.trace_id for r in responses.responses]
            assert all(ids)
            assert len(set(ids)) == 3
            assert svc.tracer.stats()["recorded_total"] >= 3

    def test_tracing_disabled_by_default(
        self, suite_context, suite, monkeypatch
    ):
        monkeypatch.delenv("TENET_TRACE", raising=False)
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            assert not svc.tracer.enabled
            response = svc.link(
                LinkRequest(text=suite.kore50.documents[0].text)
            )
            assert response.trace_id is None
            assert svc.tracer.stats()["recorded_total"] == 0

    def test_degraded_request_trace_marks_abort(self, suite_context, suite):
        with _traced_service(
            suite_context, workers=1, default_timeout_seconds=1e-4
        ) as svc:
            response = svc.link(
                LinkRequest(text=suite.news.documents[0].text)
            )
            assert response.degraded
            assert response.trace_id is not None
            # The worker owns the trace and seals it when it aborts;
            # after a caller-side degrade that can lag the response.
            trace = None
            for _ in range(100):
                trace = svc.tracer.get(response.trace_id)
                if trace is not None:
                    break
                time.sleep(0.01)
        assert trace is not None
        assert trace["status"] == "aborted"
        assert trace["aborted_stage"]

    def test_error_requests_are_traced(self, suite_context, monkeypatch):
        with _traced_service(suite_context, workers=1) as svc:
            def boom(text, deadline=None, trace=None):
                raise RuntimeError("kaput")

            monkeypatch.setattr(svc.linker, "link", boom)
            response = svc.handle(LinkRequest(text="whatever text"))
            assert not response.ok
            assert response.trace_id is not None
            trace = svc.tracer.get(response.trace_id)
        assert trace["attributes"]["error_code"] == "internal"


class TestStructuredRequestLogs:
    def test_completed_request_emits_one_json_line(
        self, suite_context, suite
    ):
        stream = io.StringIO()
        service = LinkingService(
            suite_context,
            ServiceConfig(workers=1, trace_enabled=True),
            logger=StructuredLogger(stream),
        )
        with service as svc:
            response = svc.link(
                LinkRequest(text=suite.kore50.documents[0].text, request_id="r1")
            )
        (record,) = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert record["event"] == "request.completed"
        assert record["level"] == "info"
        assert record["request_id"] == "r1"
        assert record["trace_id"] == response.trace_id
        assert record["stages"]
        assert "cache" in record

    def test_logging_disabled_by_default(self, suite_context, monkeypatch):
        monkeypatch.delenv("TENET_LOG", raising=False)
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            assert not svc.logger.enabled


class TestTracerConfig:
    def test_ring_size_flows_from_config(self, suite_context):
        with LinkingService(
            suite_context,
            ServiceConfig(workers=1, trace_enabled=True, trace_ring_size=7),
        ) as svc:
            assert svc.tracer.ring_size == 7
            assert svc.snapshot()["config"]["trace_ring_size"] == 7

    def test_rejects_empty_ring(self):
        import pytest

        with pytest.raises(ValueError):
            ServiceConfig(trace_ring_size=0)

    def test_env_var_enables_tracing(self, suite_context, monkeypatch):
        monkeypatch.setenv("TENET_TRACE", "1")
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            assert svc.tracer.enabled
        monkeypatch.setenv("TENET_TRACE", "0")
        with LinkingService(suite_context, ServiceConfig(workers=1)) as svc:
            assert not svc.tracer.enabled

    def test_config_override_beats_env(self, suite_context, monkeypatch):
        monkeypatch.setenv("TENET_TRACE", "1")
        with LinkingService(
            suite_context, ServiceConfig(workers=1, trace_enabled=False)
        ) as svc:
            assert not svc.tracer.enabled
