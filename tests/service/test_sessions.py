"""Session lifecycle under the serving stack: contention, eviction, drain.

Run with ``TENET_TEST_WORKERS=8`` to exercise real contention (the same
switch the rest of the service suite honours).  The SessionManager tests
use a controllable fake session so lock-ordering scenarios (eviction
while a feed is in flight) are deterministic rather than timing-lucky.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.linker import TenetLinker
from repro.service.engine import LinkingService, ServiceClosedError, ServiceConfig
from repro.service.schema import SessionFeedRequest
from repro.session import (
    SessionClosedError,
    SessionError,
    SessionEvictedError,
    SessionManager,
)


@pytest.fixture(scope="module")
def session_service(suite_context, service_workers):
    service = LinkingService(
        suite_context,
        ServiceConfig(workers=service_workers, sessions_enabled=True),
    )
    yield service
    service.close()


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------------------
# engine round-trips
# ---------------------------------------------------------------------------

class TestEngineSessions:
    def test_feed_accumulates_and_matches_one_shot(
        self, session_service, suite_context, suite
    ):
        text = suite.kore50.documents[0].text
        middle = text.find(". ") + 2
        chunks = [text[:middle], text[middle:]]
        last = None
        for i, chunk in enumerate(chunks):
            last = session_service.session_feed_admitted(
                "engine-parity", SessionFeedRequest(chunk=chunk)
            )
            assert last.error is None
            assert last.increment == i + 1
        expected = TenetLinker(suite_context).link(text).to_json(
            include_timings=False
        )
        assert canonical(last.result) == canonical(expected)

    def test_metrics_counters_reconcile(self, session_service, suite):
        before = session_service.snapshot()["counters"]
        feeds = 3
        for i in range(feeds):
            response = session_service.session_feed_admitted(
                "metrics-probe",
                SessionFeedRequest(
                    chunk=f"Feed number {i} of the metrics probe."
                ),
            )
            assert response.error is None
        after = session_service.snapshot()
        counters = after["counters"]
        assert counters["session.feeds"] - before.get("session.feeds", 0) == feeds
        assert counters["session.created"] - before.get("session.created", 0) == 1
        memo_delta = (
            counters["session.memo.hits"] - before.get("session.memo.hits", 0)
        ) + (
            counters["session.memo.misses"]
            - before.get("session.memo.misses", 0)
        )
        assert memo_delta > 0
        assert after["sessions"]["active"] == after["gauges"]["sessions.active"]

    def test_kind_mismatch_is_bad_request(self, session_service):
        first = session_service.session_feed_admitted(
            "kind-probe", SessionFeedRequest(chunk="A stream chunk.")
        )
        assert first.error is None
        mismatched = session_service.session_feed_admitted(
            "kind-probe",
            SessionFeedRequest(chunk="Now a turn.", kind="conversation"),
        )
        assert mismatched.error is not None
        assert mismatched.error.code == "bad_request"

    def test_info_and_delete(self, session_service):
        session_service.session_feed_admitted(
            "info-probe", SessionFeedRequest(chunk="Some session text.")
        )
        info = session_service.session_info("info-probe")
        assert info is not None
        assert info["kind"] == "stream"
        assert info["increment"] == 1
        assert session_service.session_delete("info-probe") is True
        assert session_service.session_info("info-probe") is None
        assert session_service.session_delete("info-probe") is False

    def test_concurrent_feeds_serialize(
        self, session_service, service_workers
    ):
        # N threads hammer one session; every feed must land (no error,
        # no hang) and the final increment must equal the feed count.
        threads = max(service_workers, 4)
        feeds_per_thread = 3
        errors = []
        barrier = threading.Barrier(threads)

        def feeder(index):
            try:
                barrier.wait(timeout=30)
                for round_ in range(feeds_per_thread):
                    response = session_service.session_feed_admitted(
                        "contended",
                        SessionFeedRequest(
                            chunk=(
                                f"Thread {index} wrote sentence {round_} "
                                "into the shared stream."
                            )
                        ),
                    )
                    if response.error is not None:
                        errors.append(response.error.code)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        workers = [
            threading.Thread(target=feeder, args=(i,)) for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert not any(worker.is_alive() for worker in workers)
        assert errors == []
        info = session_service.session_info("contended")
        assert info["increment"] == threads * feeds_per_thread


# ---------------------------------------------------------------------------
# manager lifecycle (fake sessions: deterministic lock scenarios)
# ---------------------------------------------------------------------------

class _FakeSession:
    """Stands in for a StreamingSession; optionally blocks inside feed."""

    def __init__(self, gate=None):
        self.gate = gate
        self.increment = 0
        self.text = ""
        self.config = type("Config", (), {"mode": "full"})()

    def feed(self, chunk, deadline=None, trace=None):
        if self.gate is not None:
            self.gate.wait(timeout=30)
        self.increment += 1
        self.text += chunk
        return {"increment": self.increment}


class TestManagerLifecycle:
    def test_lru_eviction_is_typed_error_not_hang(self):
        manager = SessionManager(
            lambda kind: _FakeSession(), max_sessions=2, ttl_seconds=60
        )
        manager.feed("alpha", "a")
        manager.feed("beta", "b")
        manager.feed("gamma", "c")  # evicts alpha (LRU)
        assert manager.stats()["evicted_lru"] == 1
        assert set(manager.session_ids()) == {"beta", "gamma"}
        # Feeding the evicted id transparently creates a fresh session.
        outcome, created = manager.feed("alpha", "again")
        assert created is True
        assert outcome == {"increment": 1}

    def test_ttl_eviction_with_fake_clock(self):
        now = [0.0]
        manager = SessionManager(
            lambda kind: _FakeSession(),
            max_sessions=8,
            ttl_seconds=10,
            clock=lambda: now[0],
        )
        manager.feed("old", "x")
        now[0] = 11.0
        manager.feed("fresh", "y")  # sweep runs on every feed
        assert manager.get("old") is None
        assert manager.stats()["evicted_ttl"] == 1

    def test_eviction_mid_feed_surfaces_typed_error(self):
        # A feeder queued on the session lock whose session is evicted
        # while it waits must get a SessionEvictedError the moment the
        # lock frees — never a hang, never a solve on dead state.  The
        # in-flight holder is simulated with an instrumented lock so the
        # ordering (queued -> evicted -> released) is deterministic.
        manager = SessionManager(
            lambda kind: _FakeSession(), max_sessions=4, ttl_seconds=60
        )
        manager.feed("victim", "one")
        entry = manager._entries["victim"]
        inner = threading.Lock()
        inner.acquire()  # stands in for another feed holding the lock
        queued = threading.Event()

        class _SignalLock:
            def __enter__(self):
                queued.set()
                inner.acquire()

            def __exit__(self, *exc):
                inner.release()

        entry.lock = _SignalLock()
        result = {}

        def second():
            try:
                manager.feed("victim", "two")
                result["outcome"] = "no error"
            except SessionEvictedError:
                result["outcome"] = "evicted"

        thread = threading.Thread(target=second)
        thread.start()
        assert queued.wait(timeout=30)  # past the registry, on the lock
        manager.delete("victim")  # eviction never takes the session lock
        inner.release()  # the in-flight feed finishes
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result["outcome"] == "evicted"

    def test_close_drains_queued_feeds(self):
        gate = threading.Event()
        manager = SessionManager(
            lambda kind: _FakeSession(gate), max_sessions=4, ttl_seconds=60
        )
        outcomes = []

        def feeder():
            try:
                manager.feed("draining", "chunk")
                outcomes.append("ok")
            except SessionClosedError:
                outcomes.append("closed")

        thread_a = threading.Thread(target=feeder)
        thread_a.start()
        pause = threading.Event()
        for _ in range(3000):
            if "draining" in manager.session_ids():
                break
            pause.wait(0.01)
        # Whether the second feeder reaches the registry before or after
        # close(), it must surface SessionClosedError — both the closed
        # registry and the closed entry re-check drain into it.
        thread_b = threading.Thread(target=feeder)
        thread_b.start()
        drained = manager.close()
        gate.set()
        thread_a.join(timeout=30)
        thread_b.join(timeout=30)
        assert not thread_a.is_alive() and not thread_b.is_alive()
        assert drained == 1
        assert "closed" in outcomes
        assert len(outcomes) == 2
        with pytest.raises(SessionClosedError):
            manager.feed("anything", "z")

    def test_invalid_ids_and_kinds_rejected(self):
        manager = SessionManager(lambda kind: _FakeSession())
        with pytest.raises(SessionError):
            manager.feed("bad id with spaces", "x")
        with pytest.raises(SessionError):
            manager.feed("ok", "x", kind="telepathy")


# ---------------------------------------------------------------------------
# engine shutdown: feeds after close get clean 503 envelopes
# ---------------------------------------------------------------------------

class TestShutdownDrain:
    def test_feed_after_close_is_unavailable(self, suite_context):
        # ServiceClosedError is what the HTTP layer maps to a clean 503;
        # a feed racing shutdown must raise it, never hang or link.
        service = LinkingService(
            suite_context, ServiceConfig(workers=2, sessions_enabled=True)
        )
        response = service.session_feed_admitted(
            "pre-close", SessionFeedRequest(chunk="Before shutdown.")
        )
        assert response.error is None
        service.close()
        with pytest.raises(ServiceClosedError):
            service.session_feed_admitted(
                "pre-close", SessionFeedRequest(chunk="After shutdown.")
            )

    def test_sessions_disabled_raises(self, suite_context):
        service = LinkingService(
            suite_context, ServiceConfig(workers=1, sessions_enabled=False)
        )
        try:
            with pytest.raises(SessionError):
                service.session_feed_admitted(
                    "nope", SessionFeedRequest(chunk="hello there")
                )
            assert service.session_info("nope") is None
            assert service.session_delete("nope") is False
        finally:
            service.close()
