"""HTTP front-end tests over a real socket (loopback, ephemeral port)."""

import http.client
import json
import threading

import pytest

from repro.core.linker import TenetLinker
from repro.service.engine import LinkingService, ServiceConfig
from repro.service.server import create_server


@pytest.fixture(scope="module")
def served(suite_context):
    service = LinkingService(suite_context, ServiceConfig(workers=4))
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def _request(served, method, path, payload=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", served.server_address[1], timeout=60
    )
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, served):
        status, payload = _request(served, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_link_matches_sequential(self, served, suite_context, suite):
        text = suite.kore50.documents[0].text
        expected = TenetLinker(suite_context).link(text).to_json(
            include_timings=False
        )
        status, payload = _request(served, "POST", "/link", {"text": text})
        assert status == 200
        assert payload["result"] == expected
        assert payload["degraded"] is False
        assert "timings" in payload

    def test_concurrent_clients_identical_responses(
        self, served, suite_context, suite
    ):
        texts = [doc.text for doc in suite.news.documents[:4]] * 2
        linker = TenetLinker(suite_context)
        expected = [
            linker.link(text).to_json(include_timings=False) for text in texts
        ]
        results = [None] * len(texts)
        errors = []

        def client(indices):
            try:
                for i in indices:
                    _, payload = _request(
                        served, "POST", "/link", {"text": texts[i]}
                    )
                    results[i] = payload["result"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(range(n, len(texts), 4),))
            for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == expected

    def test_batch(self, served, suite):
        texts = [doc.text for doc in suite.kore50.documents[:3]]
        status, payload = _request(
            served, "POST", "/batch", {"documents": texts}
        )
        assert status == 200
        assert len(payload["responses"]) == 3
        assert all(r["result"] is not None for r in payload["responses"])

    def test_metrics_reports_counters_and_caches(self, served, suite):
        _request(served, "POST", "/link", {"text": suite.news.documents[0].text})
        status, payload = _request(served, "GET", "/metrics")
        assert status == 200
        assert payload["counters"]["requests.total"] >= 1
        assert "latency.link" in payload["latencies"]
        assert payload["caches"]["enabled"] is True
        assert payload["config"]["workers"] == 4

    def test_request_id_echo(self, served, suite):
        status, payload = _request(
            served,
            "POST",
            "/link",
            {"text": suite.news.documents[0].text, "request_id": "cli-7"},
        )
        assert status == 200
        assert payload["request_id"] == "cli-7"


class TestErrors:
    def test_unknown_path(self, served):
        status, payload = _request(served, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_invalid_json(self, served):
        connection = http.client.HTTPConnection(
            "127.0.0.1", served.server_address[1], timeout=30
        )
        try:
            connection.request("POST", "/link", body="{not json")
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_schema_violation(self, served):
        status, payload = _request(served, "POST", "/link", {"wrong": "field"})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_empty_body(self, served):
        status, payload = _request(served, "POST", "/link")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_empty_text(self, served):
        status, payload = _request(served, "POST", "/link", {"text": "  "})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
