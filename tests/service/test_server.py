"""HTTP front-end tests over a real socket (loopback, ephemeral port)."""

import http.client
import json
import threading

import pytest

from repro.core.linker import TenetLinker
from repro.service.engine import LinkingService, ServiceConfig
from repro.service.server import create_server


@pytest.fixture(scope="module")
def served(suite_context, service_workers):
    service = LinkingService(suite_context, ServiceConfig(workers=service_workers))
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def _request(served, method, path, payload=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", served.server_address[1], timeout=60
    )
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, served):
        status, payload = _request(served, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_link_matches_sequential(self, served, suite_context, suite):
        text = suite.kore50.documents[0].text
        expected = TenetLinker(suite_context).link(text).to_json(
            include_timings=False
        )
        status, payload = _request(served, "POST", "/link", {"text": text})
        assert status == 200
        assert payload["result"] == expected
        assert payload["degraded"] is False
        assert "timings" in payload

    def test_concurrent_clients_identical_responses(
        self, served, suite_context, suite
    ):
        texts = [doc.text for doc in suite.news.documents[:4]] * 2
        linker = TenetLinker(suite_context)
        expected = [
            linker.link(text).to_json(include_timings=False) for text in texts
        ]
        results = [None] * len(texts)
        errors = []

        def client(indices):
            try:
                for i in indices:
                    _, payload = _request(
                        served, "POST", "/link", {"text": texts[i]}
                    )
                    results[i] = payload["result"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(range(n, len(texts), 4),))
            for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == expected

    def test_batch(self, served, suite):
        texts = [doc.text for doc in suite.kore50.documents[:3]]
        status, payload = _request(
            served, "POST", "/batch", {"documents": texts}
        )
        assert status == 200
        assert len(payload["responses"]) == 3
        assert all(r["result"] is not None for r in payload["responses"])

    def test_metrics_reports_counters_and_caches(
        self, served, suite, service_workers
    ):
        _request(served, "POST", "/link", {"text": suite.news.documents[0].text})
        status, payload = _request(served, "GET", "/metrics")
        assert status == 200
        assert payload["counters"]["requests.total"] >= 1
        assert "latency.link" in payload["latencies"]
        assert payload["caches"]["enabled"] is True
        assert payload["config"]["workers"] == service_workers
        assert payload["gauges"]["pool.worker_count"] == service_workers

    def test_request_id_echo(self, served, suite):
        status, payload = _request(
            served,
            "POST",
            "/link",
            {"text": suite.news.documents[0].text, "request_id": "cli-7"},
        )
        assert status == 200
        assert payload["request_id"] == "cli-7"


class TestErrors:
    def test_unknown_path(self, served):
        status, payload = _request(served, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_invalid_json(self, served):
        connection = http.client.HTTPConnection(
            "127.0.0.1", served.server_address[1], timeout=30
        )
        try:
            connection.request("POST", "/link", body="{not json")
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_schema_violation(self, served):
        status, payload = _request(served, "POST", "/link", {"wrong": "field"})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_empty_body(self, served):
        status, payload = _request(served, "POST", "/link")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_empty_text(self, served):
        status, payload = _request(served, "POST", "/link", {"text": "  "})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_non_object_body(self, served):
        status, payload = _request(served, "POST", "/link", [1, 2])
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "JSON object" in payload["error"]["message"]


class TestKeepAlive:
    """One HTTP/1.1 connection must survive rejected requests.

    Every 400 whose body *was* read keeps the connection reusable; the
    early 400s that skip the body (empty / oversized declarations) must
    close it so the unread bytes are never parsed as the next request.
    """

    def _open(self, served):
        return http.client.HTTPConnection(
            "127.0.0.1", served.server_address[1], timeout=30
        )

    def test_non_object_bodies_do_not_poison_the_connection(
        self, served, suite
    ):
        connection = self._open(served)
        try:
            for bad in ([1, 2], "hi", 7, None, True):
                connection.request("POST", "/link", body=json.dumps(bad))
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 400
                assert payload["error"]["code"] == "bad_request"
                assert "JSON object" in payload["error"]["message"]
            # The same connection still serves a valid request.
            connection.request(
                "POST",
                "/link",
                body=json.dumps({"text": suite.news.documents[0].text}),
            )
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["result"] is not None
        finally:
            connection.close()

    def test_garbage_then_valid_on_one_connection(self, served, suite):
        connection = self._open(served)
        try:
            connection.request("POST", "/link", body="{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"]["code"] == "bad_request"
            connection.request(
                "POST",
                "/link",
                body=json.dumps({"text": suite.kore50.documents[0].text}),
            )
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["result"] is not None
        finally:
            connection.close()

    def test_oversized_body_declaration_closes_the_connection(self, served):
        connection = self._open(served)
        try:
            # Declare a 9 MiB body but never send it: the server must
            # refuse without reading and drop the connection, because the
            # undelivered bytes would otherwise be parsed as the next
            # request line.
            connection.putrequest("POST", "/link")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(9 * 1024 * 1024))
            connection.endheaders()
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
            assert response.getheader("Connection") == "close"
            # http.client transparently reopens after the server-side
            # close; the follow-up request must succeed.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
        finally:
            connection.close()

    def test_empty_body_closes_the_connection(self, served):
        connection = self._open(served)
        try:
            connection.request("POST", "/link")
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            json.loads(response.read())
        finally:
            connection.close()

    def _declare_length(self, connection, value):
        connection.putrequest("POST", "/link", skip_host=False)
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", value)
        connection.endheaders()

    @pytest.mark.parametrize("declared", ["abc", "12abc", "1e3", " "])
    def test_malformed_content_length_is_a_400_not_a_500(
        self, served, declared
    ):
        # A non-numeric declaration used to blow up in bare int() — an
        # unhandled ValueError and a 500 with a traceback body.
        connection = self._open(served)
        try:
            self._declare_length(connection, declared)
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "Content-Length" in payload["error"]["message"]
            assert response.getheader("Connection") == "close"
            # The server must still answer a follow-up request.
            connection.request("GET", "/healthz")
            assert connection.getresponse().status == 200
        finally:
            connection.close()

    def test_negative_content_length_is_a_400_not_a_hang(self, served):
        # A negative length used to become rfile.read(-1): the handler
        # blocked until the client gave up on the keep-alive socket.
        connection = self._open(served)
        try:
            self._declare_length(connection, "-5")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "Content-Length" in payload["error"]["message"]
            assert response.getheader("Connection") == "close"
            connection.request("GET", "/healthz")
            assert connection.getresponse().status == 200
        finally:
            connection.close()


@pytest.fixture(scope="module")
def served_traced(suite_context, service_workers):
    """A served stack with tracing forced on (independent of TENET_TRACE)."""
    service = LinkingService(
        suite_context,
        ServiceConfig(workers=service_workers, trace_enabled=True),
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestTracing:
    def _link(self, served_traced, text, request_id=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", served_traced.server_address[1], timeout=60
        )
        try:
            body = {"text": text}
            if request_id is not None:
                body["request_id"] = request_id
            connection.request("POST", "/link", body=json.dumps(body))
            response = connection.getresponse()
            return (
                response.status,
                response.getheader("X-Trace-Id"),
                json.loads(response.read()),
            )
        finally:
            connection.close()

    def test_trace_id_header_resolves_at_debug_traces(
        self, served_traced, suite
    ):
        status, header, payload = self._link(
            served_traced, suite.kore50.documents[0].text, request_id="t-1"
        )
        assert status == 200
        assert header is not None
        assert payload["trace_id"] == header
        status, traces = _request(
            served_traced, "GET", f"/debug/traces?trace_id={header}"
        )
        assert status == 200
        assert traces["enabled"] is True
        assert traces["count"] == 1
        (trace,) = traces["traces"]
        assert trace["trace_id"] == header
        assert trace["request_id"] == "t-1"

    def test_span_durations_agree_with_stage_timings(
        self, served_traced, suite
    ):
        _, header, payload = self._link(
            served_traced, suite.news.documents[0].text
        )
        _, traces = _request(
            served_traced, "GET", f"/debug/traces?trace_id={header}"
        )
        (trace,) = traces["traces"]
        spans = {
            span["name"]: span["duration_seconds"] for span in trace["spans"]
        }
        # Spans reuse the stage stopwatch, so the recorded durations are
        # the same floats the response's timings carry — not merely close.
        for stage, seconds in payload["timings"].items():
            assert spans[stage] == seconds
        # Engine-only spans ride along.
        assert "queue_wait" in spans
        assert "cache_lookups" in spans

    def test_default_stack_follows_env(self, served):
        # The module `served` fixture leaves trace_enabled=None, so it
        # follows TENET_TRACE: disabled in the plain CI run, enabled in
        # the contention job.  Either way the endpoint and the response
        # envelope must agree with the tracer's state.
        enabled = served.service.tracer.enabled
        _, payload = _request(
            served, "POST", "/link", {"text": "Tesla founded a company."}
        )
        assert ("trace_id" in payload) == enabled
        status, traces = _request(served, "GET", "/debug/traces")
        assert status == 200
        assert traces["enabled"] == enabled
        if not enabled:
            assert traces["traces"] == []

    def test_slow_threshold_filter(self, served_traced, suite):
        self._link(served_traced, suite.news.documents[1].text)
        _, kept = _request(
            served_traced, "GET", "/debug/traces?slow_seconds=0"
        )
        assert kept["count"] >= 1
        _, none_kept = _request(
            served_traced, "GET", "/debug/traces?slow_seconds=3600"
        )
        assert none_kept["count"] == 0

    @pytest.mark.parametrize(
        "query",
        ["limit=abc", "limit=0", "slow_seconds=x", "slow_seconds=-1"],
    )
    def test_bad_query_params_are_400(self, served_traced, query):
        status, payload = _request(
            served_traced, "GET", f"/debug/traces?{query}"
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
