"""Admission control, rate limiting, degraded mode, clean shutdown.

The unit tests drive :mod:`repro.service.overload` with a hand-rolled
clock and a manual dispatch hook, so bucket refills, lane priority, and
hysteresis transitions are exact rather than timing-dependent.  The
integration tests run the real engine (and one real HTTP server) with
configs chosen so the shed/degrade decisions are deterministic.
"""

import http.client
import json
import threading
import time
from concurrent.futures import Future

import pytest

from repro.service.engine import LinkingService, ServiceClosedError, ServiceConfig
from repro.service.overload import (
    BATCH_LANE,
    INTERACTIVE_LANE,
    AdmissionController,
    ClientRateLimiter,
    DegradedModeController,
    LatencyWindow,
    OverloadConfig,
    QueueFullError,
    RateLimitedError,
    TokenBucket,
)
from repro.service.schema import BatchLinkRequest, LinkRequest
from repro.service.server import create_server


class FakeClock:
    """Manual monotonic clock for deterministic refill arithmetic."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=3, refill_per_second=1.0, clock=clock)
        # The full burst is available up front...
        assert [bucket.try_acquire() for _ in range(3)] == [None, None, None]
        # ...then the bucket is dry and the hint names the refill gap.
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(1.0)
        # Half a token is not a token.
        clock.advance(0.5)
        assert bucket.try_acquire() == pytest.approx(0.5)
        clock.advance(1.0)
        assert bucket.try_acquire() is None

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_per_second=10.0, clock=clock)
        clock.advance(3600.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_per_second=1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_per_second=0.0)


class TestClientRateLimiter:
    def test_clients_do_not_share_buckets(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(
            rate_per_second=1.0, burst=1, clock=clock
        )
        assert limiter.try_acquire("a") is None
        # "a" exhausted its burst; "b" is untouched.
        assert limiter.try_acquire("a") is not None
        assert limiter.try_acquire("b") is None

    def test_lru_bound_evicts_oldest_client(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(
            rate_per_second=0.001, burst=1, max_clients=2, clock=clock
        )
        assert limiter.try_acquire("a") is None
        assert limiter.try_acquire("b") is None
        assert limiter.try_acquire("c") is None  # evicts "a"
        assert limiter.tracked_clients == 2
        # The evicted client comes back with a fresh (full) bucket —
        # the documented fail-open trade of the LRU bound.
        assert limiter.try_acquire("a") is None
        # "c" was not evicted and its burst is spent.
        assert limiter.try_acquire("c") is not None


class TestLatencyWindow:
    def test_percentiles_nearest_rank(self):
        window = LatencyWindow(size=100)
        for value in [0.1, 0.2, 0.3, 0.4, 1.0]:
            window.observe(value)
        assert window.percentile(0.5) == pytest.approx(0.3)
        assert window.percentile(0.95) == pytest.approx(1.0)
        assert window.mean() == pytest.approx(0.4)

    def test_window_rolls(self):
        window = LatencyWindow(size=2)
        for value in [9.0, 1.0, 2.0]:
            window.observe(value)
        assert len(window) == 2
        assert window.percentile(1.0) == pytest.approx(2.0)

    def test_empty_window(self):
        window = LatencyWindow(size=4)
        assert window.percentile(0.95) is None
        assert window.mean() is None


class TestOverloadConfig:
    def test_exit_watermark_must_sit_below_enter(self):
        with pytest.raises(ValueError):
            OverloadConfig(
                degraded_enter_queue_depth=8, degraded_exit_queue_depth=8
            )
        with pytest.raises(ValueError):
            OverloadConfig(
                degraded_enter_p95_seconds=1.0, degraded_exit_p95_seconds=1.5
            )

    def test_p95_watermarks_set_together(self):
        with pytest.raises(ValueError):
            OverloadConfig(degraded_enter_p95_seconds=1.0)


class TestDegradedModeHysteresis:
    def config(self, **overrides):
        defaults = dict(
            degraded_enter_queue_depth=10, degraded_exit_queue_depth=4
        )
        defaults.update(overrides)
        return OverloadConfig(**defaults)

    def test_enters_on_depth_and_exits_below_band(self):
        controller = DegradedModeController(self.config())
        assert controller.update(9, None) is False
        assert controller.update(10, None) is True
        assert controller.update(4, None) is False
        assert controller.transitions == (1, 1)

    def test_no_flapping_inside_the_band(self):
        controller = DegradedModeController(self.config())
        controller.update(12, None)  # enter
        # Oscillating between the watermarks must not toggle the switch:
        # 5..9 is above exit (4) and below enter (10).
        for depth in [9, 5, 8, 6, 9, 5]:
            assert controller.update(depth, None) is True
        assert controller.transitions == (1, 0)
        # And after a real exit, the same band stays inactive.
        controller.update(4, None)
        for depth in [5, 9, 6, 8]:
            assert controller.update(depth, None) is False
        assert controller.transitions == (1, 1)

    def test_p95_watermark_can_trigger_alone(self):
        controller = DegradedModeController(
            self.config(
                degraded_enter_p95_seconds=2.0, degraded_exit_p95_seconds=0.5
            )
        )
        assert controller.update(0, 2.5) is True
        # Exit needs *both* signals under their exit watermarks.
        assert controller.update(0, 1.0) is True  # p95 still in the band
        assert controller.update(0, 0.4) is False
        assert controller.transitions == (1, 1)

    def test_exit_requires_every_signal_low(self):
        controller = DegradedModeController(
            self.config(
                degraded_enter_p95_seconds=2.0, degraded_exit_p95_seconds=0.5
            )
        )
        controller.update(20, None)  # enter on depth
        assert controller.update(2, 1.0) is True  # depth low, p95 still high
        assert controller.update(2, 0.5) is False
        assert controller.transitions == (1, 1)


class RecordingDispatch:
    """Manual dispatch hook: items accumulate, slots are freed by hand."""

    def __init__(self) -> None:
        self.items = []
        self._cond = threading.Condition()

    def __call__(self, item) -> None:
        with self._cond:
            self.items.append(item)
            self._cond.notify_all()

    def wait_for(self, count: int, timeout: float = 5.0) -> None:
        with self._cond:
            assert self._cond.wait_for(
                lambda: len(self.items) >= count, timeout=timeout
            ), f"dispatched {len(self.items)}, wanted {count}"

    @property
    def lanes(self):
        return [item.lane for item in self.items]


def make_controller(dispatch, workers=1, **config_overrides):
    config = OverloadConfig(**config_overrides)
    return AdmissionController(
        config,
        workers=workers,
        dispatch=dispatch,
        close_error=lambda: ServiceClosedError("closed"),
    )


class TestAdmissionController:
    def test_rejects_when_lane_full_with_retry_hint(self):
        dispatch = RecordingDispatch()
        controller = make_controller(dispatch, workers=1, max_queue_interactive=2)
        try:
            # First item occupies the single worker slot...
            controller.admit(lambda: None, Future())
            dispatch.wait_for(1)
            # ...two more fill the interactive lane to its bound.
            controller.admit(lambda: None, Future())
            controller.admit(lambda: None, Future())
            with pytest.raises(QueueFullError) as excinfo:
                controller.admit(lambda: None, Future())
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.retry_after_seconds > 0
            # The caller's hint (backlog x mean latency) wins over the floor.
            with pytest.raises(QueueFullError) as excinfo:
                controller.admit(
                    lambda: None, Future(), retry_after_hint=7.5
                )
            assert excinfo.value.retry_after_seconds == pytest.approx(7.5)
        finally:
            controller.close()

    def test_batch_never_dispatches_while_interactive_waits(self):
        dispatch = RecordingDispatch()
        controller = make_controller(dispatch, workers=1)
        try:
            controller.admit(lambda: None, Future(), INTERACTIVE_LANE)
            dispatch.wait_for(1)  # worker slot now held
            # Queue batch work first, then interactive behind it.
            for _ in range(3):
                controller.admit(lambda: None, Future(), BATCH_LANE)
            for _ in range(2):
                controller.admit(lambda: None, Future(), INTERACTIVE_LANE)
            # Free slots one at a time: every queued interactive item
            # must overtake every queued batch item.
            for expected in range(2, 7):
                controller.release()
                dispatch.wait_for(expected)
            assert dispatch.lanes == [
                INTERACTIVE_LANE,
                INTERACTIVE_LANE,
                INTERACTIVE_LANE,
                BATCH_LANE,
                BATCH_LANE,
                BATCH_LANE,
            ]
        finally:
            controller.close()

    def test_cancelled_while_queued_never_dispatches(self):
        dispatch = RecordingDispatch()
        controller = make_controller(dispatch, workers=1)
        try:
            controller.admit(lambda: None, Future())
            dispatch.wait_for(1)
            doomed = Future()
            controller.admit(lambda: None, doomed)
            survivor = Future()
            controller.admit(lambda: None, survivor)
            assert doomed.cancel()  # deadline expired while queued
            controller.release()
            dispatch.wait_for(2)
            # The cancelled item was skipped and its slot recycled for
            # the survivor — dispatch never saw it.
            assert dispatch.items[1].future is survivor
        finally:
            controller.close()

    def test_close_rejects_queued_futures_with_clean_error(self):
        dispatch = RecordingDispatch()
        controller = make_controller(dispatch, workers=1)
        controller.admit(lambda: None, Future())
        dispatch.wait_for(1)
        queued = [Future() for _ in range(3)]
        for future in queued:
            controller.admit(lambda: None, future)
        assert controller.close() == 3
        for future in queued:
            assert future.done()
            with pytest.raises(ServiceClosedError):
                future.result(timeout=0)
        # Post-close admission is refused outright.
        with pytest.raises(ServiceClosedError):
            controller.admit(lambda: None, Future())
        assert controller.close() == 0  # idempotent

    def test_unknown_lane_rejected(self):
        dispatch = RecordingDispatch()
        controller = make_controller(dispatch)
        try:
            with pytest.raises(ValueError):
                controller.admit(lambda: None, Future(), "express")
        finally:
            controller.close()


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------

DOC = "Alerio Vantra presented the quarterly results in Sentara City."


@pytest.fixture()
def rate_limited_service(suite_context):
    # burst=1 with a glacial refill: the first request per client is
    # admitted, the second is deterministically shed.
    service = LinkingService(
        suite_context,
        ServiceConfig(
            workers=2,
            overload=OverloadConfig(
                rate_limit_per_second=0.001, rate_limit_burst=1
            ),
        ),
    )
    yield service
    service.close()


class TestEngineAdmission:
    def test_admitted_path_matches_direct_link(self, suite_context, suite):
        text = suite.kore50.documents[0].text
        service = LinkingService(suite_context, ServiceConfig(workers=2))
        try:
            direct = service.link(LinkRequest(text=text))
            admitted = service.link_admitted(LinkRequest(text=text))
            assert admitted.ok
            assert admitted.result == direct.result
            counters = service.snapshot()["counters"]
            assert counters["admission.admitted.interactive"] == 1
        finally:
            service.close()

    def test_rate_limit_is_per_client(self, rate_limited_service):
        first = rate_limited_service.link_admitted(
            LinkRequest(text=DOC), client_id="alpha"
        )
        assert first.ok
        with pytest.raises(RateLimitedError) as excinfo:
            rate_limited_service.admit(
                LinkRequest(text=DOC), client_id="alpha"
            )
        assert excinfo.value.retry_after_seconds > 0
        # A different client's bucket is untouched.
        other = rate_limited_service.link_admitted(
            LinkRequest(text=DOC), client_id="beta"
        )
        assert other.ok
        counters = rate_limited_service.snapshot()["counters"]
        assert counters["requests.rejected"] == 1
        assert counters["requests.rejected.rate_limited"] == 1

    def test_batch_lane_sheds_per_document(self, rate_limited_service):
        batch = BatchLinkRequest.of_texts(DOC, DOC, DOC)
        response = rate_limited_service.link_batch_admitted(
            batch, client_id="gamma"
        )
        codes = [
            r.error.code if r.error is not None else None
            for r in response.responses
        ]
        # burst=1: exactly one document is admitted, the rest get the
        # typed envelope instead of voiding the whole batch.
        assert codes.count(None) == 1
        assert codes.count("rate_limited") == 2
        shed = [r for r in response.responses if r.error is not None]
        assert all("retry after" in r.error.message for r in shed)

    def test_degraded_mode_routes_to_prior_only(self, suite_context, suite):
        text = suite.kore50.documents[0].text
        service = LinkingService(
            suite_context,
            ServiceConfig(
                workers=1,
                overload=OverloadConfig(
                    degraded_enter_queue_depth=1, degraded_exit_queue_depth=0
                ),
            ),
        )
        try:
            expected = service.linker.link_prior_only(text).to_json(
                include_timings=False
            )
            # Force the switch exactly as a deep queue would.
            assert service._degraded_mode.update(5, None) is True
            response = service.link(LinkRequest(text=text))
            assert response.ok and response.degraded
            assert response.result == expected
            counters = service.snapshot()["counters"]
            assert counters["degraded_mode.requests"] == 1
        finally:
            service.close()

    def test_overload_snapshot_block(self, suite_context):
        service = LinkingService(suite_context, ServiceConfig(workers=2))
        try:
            service.link_admitted(LinkRequest(text=DOC))
            block = service.snapshot()["overload"]
            assert block["queue_depth"]["total"] == 0
            assert block["inflight"] == 0
            assert block["degraded_mode"]["active"] is False
            assert block["config"]["max_queue_interactive"] == 64
            assert block["rate_limiter"] is None
        finally:
            service.close()

    def test_lane_field_routes_to_batch_lane(self, suite_context):
        service = LinkingService(suite_context, ServiceConfig(workers=2))
        try:
            response = service.link_admitted(
                LinkRequest(text=DOC, lane=BATCH_LANE), lane=BATCH_LANE
            )
            assert response.ok
            counters = service.snapshot()["counters"]
            assert counters["admission.admitted.batch"] == 1
        finally:
            service.close()


class TestShutdownDrain:
    def test_queued_requests_rejected_cleanly_on_close(self, suite_context):
        """Close with a full queue: every waiter unblocks, nothing hangs."""
        service = LinkingService(suite_context, ServiceConfig(workers=1))
        gate = threading.Event()
        real_handle = service.handle

        def gated_handle(request, deadline=None, trace=None):
            gate.wait(timeout=30)
            return real_handle(request, deadline, trace)

        service.handle = gated_handle
        futures = [
            service.admit(LinkRequest(text=DOC, request_id=f"drain-{i}"))
            for i in range(6)
        ]
        # Wait for the dispatcher to pin the single worker slot so the
        # remaining five are deterministically *queued* at close time.
        deadline = threading.Event()
        for _ in range(200):
            if service._admission.inflight() == 1:
                break
            deadline.wait(0.01)
        assert service._admission.inflight() == 1

        closer = threading.Thread(target=service.close)
        closer.start()
        gate.set()  # let the inflight request finish so close can join
        closer.join(timeout=30)
        assert not closer.is_alive(), "close() hung with queued requests"

        outcomes = {"ok": 0, "closed": 0}
        for future in futures:
            assert future.done(), "a queued request was dropped silently"
            try:
                response = future.result(timeout=0)
            except ServiceClosedError:
                outcomes["closed"] += 1
            else:
                assert response.ok
                outcomes["ok"] += 1
        # The inflight request completed; the queued five were rejected.
        assert outcomes == {"ok": 1, "closed": 5}
        counters = service.snapshot()["counters"]
        assert counters["requests.rejected_on_close"] == 5

    def test_link_admitted_after_close_raises(self, suite_context):
        service = LinkingService(suite_context, ServiceConfig(workers=1))
        service.close()
        with pytest.raises(ServiceClosedError):
            service.link_admitted(LinkRequest(text=DOC))

    def test_submit_racing_close_never_leaks_runtime_error(
        self, suite_context, service_workers
    ):
        """Stress the submission-vs-shutdown window: threads hammering
        link/submit/link_batch while close() runs must only ever see a
        real response or the clean `unavailable` envelope — never the
        executor's raw "cannot schedule new futures after shutdown"
        RuntimeError (run with TENET_TEST_WORKERS=8 for contention)."""
        service = LinkingService(
            suite_context, ServiceConfig(workers=service_workers)
        )
        start = threading.Event()
        stop = threading.Event()
        failures: list = []
        responses: list = []
        lock = threading.Lock()

        def record(response) -> None:
            with lock:
                responses.append(response)

        def hammer(kind: int) -> None:
            start.wait(timeout=10)
            i = 0
            while not stop.is_set():
                i += 1
                request = LinkRequest(text=DOC, request_id=f"race-{kind}-{i}")
                try:
                    if kind % 3 == 0:
                        record(service.link(request))
                    elif kind % 3 == 1:
                        record(service.submit(request).result(timeout=30))
                    else:
                        batch = service.link_batch(
                            BatchLinkRequest((request,))
                        )
                        record(batch.responses[0])
                except BaseException as exc:  # noqa: BLE001 - the assertion
                    with lock:
                        failures.append(exc)
                    return

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(max(4, service_workers))
        ]
        for t in threads:
            t.start()
        start.set()
        time.sleep(0.3)  # let traffic reach a steady state mid-close
        service.close()
        stop.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "a submitter hung across close()"
        assert not failures, f"raw exception leaked through close: {failures!r}"
        assert responses, "stress produced no traffic"
        for response in responses:
            assert response.error is None or response.error.code == (
                "unavailable"
            ), f"unexpected envelope: {response.error}"

    def test_enqueue_after_close_is_typed(self, suite_context):
        service = LinkingService(suite_context, ServiceConfig(workers=1))
        service.close()
        with pytest.raises(ServiceClosedError):
            service.enqueue(LinkRequest(text=DOC))


# ---------------------------------------------------------------------------
# HTTP front end: 429 semantics over a real socket
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def limited_server(suite_context):
    service = LinkingService(
        suite_context,
        ServiceConfig(
            workers=2,
            overload=OverloadConfig(
                rate_limit_per_second=0.001, rate_limit_burst=1
            ),
        ),
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def _post(server, path, payload, headers=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.server_address[1], timeout=60
    )
    try:
        connection.request(
            "POST", path, body=json.dumps(payload), headers=headers or {}
        )
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), json.loads(
            response.read()
        )
    finally:
        connection.close()


class TestHTTPRateLimiting:
    def test_second_request_is_429_with_retry_after(self, limited_server):
        headers = {"X-Client-Id": "http-one"}
        status, _, payload = _post(
            limited_server, "/link", {"text": DOC}, headers
        )
        assert status == 200 and payload["result"] is not None
        status, reply_headers, payload = _post(
            limited_server, "/link", {"text": DOC}, headers
        )
        assert status == 429
        assert payload["error"]["code"] == "rate_limited"
        retry_after = reply_headers.get("Retry-After")
        assert retry_after is not None and int(retry_after) >= 1

    def test_distinct_client_header_gets_through(self, limited_server):
        status, _, payload = _post(
            limited_server, "/link", {"text": DOC}, {"X-Client-Id": "http-two"}
        )
        assert status == 200 and payload["result"] is not None

    def test_metrics_surface_overload_block(self, limited_server):
        connection = http.client.HTTPConnection(
            "127.0.0.1", limited_server.server_address[1], timeout=60
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            snapshot = json.loads(response.read())
        finally:
            connection.close()
        block = snapshot["overload"]
        assert block["rate_limiter"]["tracked_clients"] >= 1
        assert "degraded_mode" in block and "queue_depth" in block
