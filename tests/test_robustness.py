"""Robustness / failure-injection tests: the linker must degrade
gracefully on degenerate, adversarial, or malformed input rather than
crash or emit garbage."""

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.kb.alias_index import AliasIndex
from repro.kb.records import EntityRecord
from repro.kb.store import KnowledgeBase


class TestDegenerateDocuments:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            " ",
            ".",
            "...",
            "?!.,;:",
            "a",
            "the of and in",
            "\n\n\t\n",
            "12345 67890.",
        ],
        ids=[
            "empty", "space", "dot", "dots", "punct", "single-char",
            "stopwords", "whitespace", "numbers",
        ],
    )
    def test_no_crash_on_degenerate_text(self, tenet, text):
        result = tenet.link(text)
        assert result.links == [] or all(
            link.concept_id for link in result.links
        )

    def test_repeated_sentence(self, tenet, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        sentence = f"{person.label} studies databases. "
        result = tenet.link(sentence * 20)
        # every repetition is a distinct span; all link consistently
        links = [
            l for l in result.entity_links if l.surface == person.label
        ]
        assert links
        assert len({l.concept_id for l in links}) == 1

    def test_very_long_token(self, tenet):
        result = tenet.link("A" * 5000 + " arrived.")
        assert isinstance(result.entity_links, list)

    def test_unicode_text(self, tenet):
        result = tenet.link("Zoë Ångström visited Brooklyn. Müller left.")
        # must not crash; Brooklyn should still link
        assert result.find_entity("Brooklyn") is not None

    def test_no_terminal_period(self, tenet, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = tenet.link(f"{person.label} studies databases")
        assert result.find_entity(person.label) is not None

    def test_newlines_between_sentences(self, tenet, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = tenet.link(
            f"{person.label} studies databases.\n\nHe visited Brooklyn."
        )
        assert result.find_entity("Brooklyn") is not None


class TestDegenerateKBs:
    def test_empty_kb(self):
        from repro.core.linker import LinkingContext

        kb = KnowledgeBase()
        context = LinkingContext.build(kb)
        linker = TenetLinker(context)
        result = linker.link("Anything at all. Nothing links.")
        assert result.links == []

    def test_kb_without_predicates(self):
        from repro.core.linker import LinkingContext

        kb = KnowledgeBase()
        kb.add_entity(EntityRecord("Q1", "Brooklyn", types=("city",)))
        context = LinkingContext.build(kb)
        linker = TenetLinker(context)
        result = linker.link("Brooklyn visited Brooklyn.")
        assert result.relation_links == []

    def test_entity_with_empty_alias_ignored(self):
        kb = KnowledgeBase()
        kb.add_entity(EntityRecord("Q1", "Valid", aliases=("", "  ")))
        index = AliasIndex.from_kb(kb)
        assert index.lookup_entities("Valid")
        assert index.lookup_entities("") == []

    def test_single_entity_single_mention(self):
        from repro.core.linker import LinkingContext

        kb = KnowledgeBase()
        kb.add_entity(EntityRecord("Q1", "Solo", popularity=10))
        context = LinkingContext.build(kb)
        result = TenetLinker(context).link("Solo arrived.")
        link = result.find_entity("Solo")
        assert link is not None and link.concept_id == "Q1"


class TestConfigEdgeCases:
    def test_k_equals_one(self, context, world):
        linker = TenetLinker(context, TenetConfig(max_candidates=1))
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = linker.link(f"{person.label} studies databases.")
        assert result.entity_links

    def test_huge_bound(self, context, world):
        linker = TenetLinker(context, TenetConfig(tree_weight_bound=1e6))
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        assert linker.link(f"{person.label} studies databases.").entity_links

    def test_threshold_one_links_everything_possible(self, context, world):
        strict = TenetLinker(context, TenetConfig(prior_link_threshold=0.7))
        lax = TenetLinker(context, TenetConfig(prior_link_threshold=1.0))
        text = "Wilson arrived yesterday."
        assert len(lax.link(text).entity_links) >= len(
            strict.link(text).entity_links
        )

    def test_dense_graph_equivalent_results(self, context, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        text = f"{person.label} studies databases. He visited Brooklyn."
        sparse = TenetLinker(context).link(text)
        dense = TenetLinker(
            context, TenetConfig(coherence_max_neighbours=None)
        ).link(text)
        assert {(l.surface, l.concept_id) for l in sparse.links} == {
            (l.surface, l.concept_id) for l in dense.links
        }
