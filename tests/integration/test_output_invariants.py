"""System-level invariants of linking outputs.

Whatever the document, a :class:`LinkingResult` must be internally
consistent: committed mentions never overlap each other, every concept
id exists in the KB with the right kind, non-linkable reports never
contradict links, and everything is deterministic.  Checked for TENET
and every baseline over a sample of generated documents.
"""

import pytest

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.core.linker import TenetLinker
from repro.nlp.spans import SpanKind, spans_overlap


@pytest.fixture(scope="module")
def sample_documents(suite):
    docs = []
    for dataset in suite.datasets():
        docs.extend(dataset.documents[:2])
    return docs


def all_linkers(context):
    return [
        TenetLinker(context),
        FalconLinker(context),
        EarlLinker(context),
        KBPearlLinker(context),
        MinTreeLinker(context),
        QKBflyLinker(context),
    ]


class TestInvariants:
    def test_no_overlapping_entity_links(self, suite_context, sample_documents):
        for linker in all_linkers(suite_context):
            for document in sample_documents:
                links = linker.link(document.text).entity_links
                for i, a in enumerate(links):
                    for b in links[i + 1 :]:
                        assert not spans_overlap(a.span, b.span), (
                            linker.name,
                            document.doc_id,
                            a.surface,
                            b.surface,
                        )

    def test_concepts_exist_and_kinds_match(
        self, suite_context, sample_documents, suite
    ):
        kb = suite.world.kb
        for linker in all_linkers(suite_context):
            for document in sample_documents:
                result = linker.link(document.text)
                for link in result.entity_links:
                    assert kb.has_entity(link.concept_id), linker.name
                    assert link.span.kind is SpanKind.NOUN
                for link in result.relation_links:
                    assert kb.has_predicate(link.concept_id), linker.name
                    assert link.span.kind is SpanKind.RELATION

    def test_non_linkable_disjoint_from_links(
        self, suite_context, sample_documents
    ):
        tenet = TenetLinker(suite_context)
        for document in sample_documents:
            result = tenet.link(document.text)
            for reported in result.non_linkable:
                for link in result.links:
                    assert not spans_overlap(reported, link.span), (
                        document.doc_id,
                        reported.text,
                        link.surface,
                    )

    def test_deterministic_across_runs(self, suite_context, sample_documents):
        for linker in all_linkers(suite_context):
            document = sample_documents[0]
            first = linker.link(document.text)
            second = linker.link(document.text)
            assert [(l.surface, l.concept_id) for l in first.links] == [
                (l.surface, l.concept_id) for l in second.links
            ], linker.name

    def test_scores_within_bounds(self, suite_context, sample_documents):
        tenet = TenetLinker(suite_context)
        for document in sample_documents:
            for link in tenet.link(document.text).links:
                assert 0.0 <= link.score <= 1.0

    def test_char_offsets_match_document(self, suite_context, sample_documents):
        tenet = TenetLinker(suite_context)
        for document in sample_documents:
            result = tenet.link(document.text)
            for link in result.entity_links:
                span = link.span
                sliced = document.text[span.char_start : span.char_end]
                # surfaces built from token joins may normalise whitespace
                assert sliced.split() == span.text.split(), (
                    document.doc_id,
                    span.text,
                )
