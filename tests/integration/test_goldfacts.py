"""Gold-fact reconstruction tests."""


from repro.datasets.schema import AnnotatedDocument, GoldMention
from repro.nlp.spans import SpanKind
from repro.population.goldfacts import dataset_gold_facts, gold_facts


def _doc():
    text = "Alice studies math. Bob visited Springfield."
    return AnnotatedDocument(
        "d",
        text,
        [
            GoldMention("Alice", 0, 5, SpanKind.NOUN, "Q1"),
            GoldMention("studies", 6, 13, SpanKind.RELATION, "P1"),
            GoldMention("math", 14, 18, SpanKind.NOUN, "Q2"),
            GoldMention("Bob", 20, 23, SpanKind.NOUN, "Q3"),
            GoldMention("visited", 24, 31, SpanKind.RELATION, "P2"),
            GoldMention("Springfield", 32, 43, SpanKind.NOUN, "Q4"),
        ],
    )


class TestReconstruction:
    def test_two_facts(self):
        facts = gold_facts(_doc())
        assert facts == {("Q1", "P1", "Q2"), ("Q3", "P2", "Q4")}

    def test_non_linkable_relations_skipped(self):
        doc = AnnotatedDocument(
            "d",
            "Alice zorbified math.",
            [
                GoldMention("Alice", 0, 5, SpanKind.NOUN, "Q1"),
                GoldMention("zorbified", 6, 15, SpanKind.RELATION, None),
                GoldMention("math", 16, 20, SpanKind.NOUN, "Q2"),
            ],
        )
        assert gold_facts(doc) == set()

    def test_non_linkable_arguments_skipped(self):
        doc = AnnotatedDocument(
            "d",
            "Glowberry studies math.",
            [
                GoldMention("Glowberry", 0, 9, SpanKind.NOUN, None),
                GoldMention("studies", 10, 17, SpanKind.RELATION, "P1"),
                GoldMention("math", 18, 22, SpanKind.NOUN, "Q2"),
            ],
        )
        # the non-linkable subject is invisible to reconstruction, and no
        # other linkable noun precedes the relation
        assert gold_facts(doc) == set()

    def test_generated_corpus_yields_facts(self, suite, world):
        facts = dataset_gold_facts(suite.news)
        assert facts
        # every reconstructed fact must reference known concepts
        for subject, predicate, obj in facts:
            assert world.kb.has_entity(subject)
            assert world.kb.has_predicate(predicate)
            assert world.kb.has_entity(obj)

    def test_most_reconstructed_facts_exist_in_kb(self, suite, world):
        """The generator renders real KB facts, so reconstruction should
        recover mostly true triples (pronoun objects may attach to a
        different-sentence subject occasionally)."""
        facts = dataset_gold_facts(suite.news)
        hits = sum(1 for f in facts if world.kb.has_fact(*f))
        assert hits / len(facts) > 0.8
