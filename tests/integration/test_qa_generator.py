"""Question generator and boolean verification tests."""

import pytest

from repro.qa import KBQuestionAnswerer, QuestionGenerator


@pytest.fixture(scope="module")
def generator(world):
    return QuestionGenerator(world, seed=3)


class TestWhGeneration:
    def test_requested_count(self, generator):
        assert len(generator.wh_questions(10)) == 10

    def test_expected_ids_are_kb_subjects(self, generator, world):
        for item in generator.wh_questions(10):
            reference = world.kb.subjects_of(item.fact.obj, item.fact.predicate)
            assert set(item.expected_ids) == reference

    def test_question_mentions_object_label(self, generator, world):
        for item in generator.wh_questions(5):
            obj = world.kb.get_entity(item.fact.obj)
            assert obj.label in item.question

    def test_deterministic(self, world):
        a = QuestionGenerator(world, seed=9).wh_questions(5)
        b = QuestionGenerator(world, seed=9).wh_questions(5)
        assert [q.question for q in a] == [q.question for q in b]


class TestBooleanGeneration:
    def test_balanced_labels(self, generator):
        questions = generator.boolean_questions(30)
        positives = sum(q.answer for q in questions)
        assert 10 <= positives <= 20

    def test_positive_items_hold_in_kb(self, generator, world):
        for item in generator.boolean_questions(20):
            holds = world.kb.has_fact(
                item.subject_id, item.predicate_id, item.object_id
            )
            assert holds == item.answer

    def test_ambiguous_fraction_honoured(self, generator):
        none_ambiguous = generator.boolean_questions(
            20, ambiguous_fraction=0.0
        )
        assert not any(q.ambiguous_subject for q in none_ambiguous)


class TestVerify:
    def test_true_fact_verified(self, context, world, tenet):
        answerer = KBQuestionAnswerer(context, tenet)
        generator = QuestionGenerator(world, seed=4)
        item = next(
            q for q in generator.boolean_questions(30, ambiguous_fraction=0.0)
            if q.answer
        )
        assert answerer.verify(item.question) is True

    def test_false_fact_rejected(self, context, world, tenet):
        answerer = KBQuestionAnswerer(context, tenet)
        generator = QuestionGenerator(world, seed=4)
        item = next(
            q for q in generator.boolean_questions(30, ambiguous_fraction=0.0)
            if not q.answer
        )
        assert answerer.verify(item.question) is False

    def test_unparseable_returns_none(self, context, tenet):
        answerer = KBQuestionAnswerer(context, tenet)
        assert answerer.verify("Glowberry zorbified?") is None
