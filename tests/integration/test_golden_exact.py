"""Pinned exact-mode output: the fast-path work must never move it.

``golden/exact_linking_scale010.json`` stores the full
``to_json(include_timings=False)`` payload of every document in the
seed-7, scale-0.1 benchmark suite, linked with ``cover_mode="exact"``.
Any behavioural drift in the exact pipeline — tokenisation, candidate
generation, coherence weights, tree cover, greedy scan — shows up here
as a diff, not as a silent quality change.

Regenerate deliberately (after an intended output change) with::

    PYTHONPATH=src python tests/integration/regen_golden_exact.py
"""

import json
from pathlib import Path

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import build_benchmark_suite

GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "exact_linking_scale010.json"
)


def current_payload():
    suite = build_benchmark_suite(seed=7, scale=0.1)
    context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)
    linker = TenetLinker(context, TenetConfig(cover_mode="exact"))
    return {
        document.doc_id: linker.link(document.text).to_json(
            include_timings=False
        )
        for dataset in suite.datasets()
        for document in dataset.documents
    }


class TestGoldenExact:
    def test_exact_output_matches_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = current_payload()
        assert set(current) == set(golden)
        for doc_id in sorted(golden):
            assert json.dumps(
                current[doc_id], sort_keys=True
            ) == json.dumps(golden[doc_id], sort_keys=True), doc_id

    def test_golden_is_nontrivial(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert len(golden) >= 10
        linked = sum(
            1 for payload in golden.values() if payload.get("entities")
        )
        assert linked >= len(golden) // 2
