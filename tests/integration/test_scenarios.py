"""End-to-end scenario tests: the paper's motivating examples, replayed
against the synthetic world.

Each scenario corresponds to a claim in Sections 1 and 6:

* ambiguous mentions are resolved by coherence, not popularity;
* isolated mentions keep their dominant sense instead of being dragged
  into the document's dense core;
* overlapping mentions resolve to the informative merged reading;
* non-linkable phrases are reported as new concepts;
* relational phrases are disambiguated by the entities around them.
"""

import pytest

from repro.textnorm import normalize_phrase


def _find_trap_entity(world):
    """An entity whose shared alias's dominant owner is someone else,
    and which has a field-of-work fact (coherence anchor)."""
    kb = world.kb
    owners = {}
    for e in kb.entities():
        for alias in e.aliases:
            owners.setdefault(normalize_phrase(alias), []).append(e)
    for alias_key, entities in owners.items():
        if len(entities) < 2:
            continue
        top = max(entities, key=lambda e: e.popularity)
        if top.popularity / sum(e.popularity for e in entities) < 0.7:
            continue
        for gold in entities:
            if gold is top or "person" not in gold.types:
                continue
            field_fact = next(
                (
                    t
                    for t in kb.triples()
                    if t.subject == gold.entity_id
                    and t.predicate == world.predicate("field")
                ),
                None,
            )
            if field_fact is None:
                continue
            surface = next(
                a for a in gold.aliases if normalize_phrase(a) == alias_key
            )
            return gold, top, surface, kb.get_entity(field_fact.obj)
    return None


class TestAmbiguityResolution:
    def test_coherence_overrides_popularity(self, world, tenet):
        """The 'Michael Jordan (professor)' scenario: the less popular
        sense wins when the document supports it."""
        found = _find_trap_entity(world)
        if found is None:
            pytest.skip("no suitable trap in world")
        gold, top, surface, topic = found
        text = f"{surface} studies {topic.label}."
        result = tenet.link(text)
        link = result.find_entity(surface)
        assert link is not None
        assert link.concept_id == gold.entity_id

    def test_popularity_wins_without_context(self, world, tenet):
        """Without coherent context, the dominant sense is the rational
        choice (and what the paper's greedy produces)."""
        found = _find_trap_entity(world)
        if found is None:
            pytest.skip("no suitable trap in world")
        gold, top, surface, _ = found
        prior_gap = top.popularity / (top.popularity + gold.popularity)
        if prior_gap < 0.75:
            pytest.skip("prior gap too small for a clean assertion")
        result = tenet.link(f"{surface} arrived yesterday.")
        link = result.find_entity(surface)
        if link is not None:
            assert link.concept_id == top.entity_id


class TestIsolatedConcepts:
    def test_isolated_mention_keeps_dominant_sense(self, world, tenet):
        """A document about one domain mentioning an unrelated dominant
        entity must not drag it into the domain."""
        kb = world.kb
        cs_person = kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        topic = kb.get_entity(
            world.entities_of_type("computer_science", "field")[0]
        )
        # an unambiguous entity from another domain
        music_person = next(
            e
            for eid in world.entities_of_type("music", "person")
            for e in [kb.get_entity(eid)]
            if len(
                [
                    o
                    for o in kb.entities()
                    if normalize_phrase(e.label)
                    in {normalize_phrase(a) for a in o.aliases}
                ]
            )
            == 1
        )
        text = (
            f"{cs_person.label} studies {topic.label}. "
            f"{music_person.label} visited Brooklyn."
        )
        result = tenet.link(text)
        link = result.find_entity(music_person.label)
        assert link is not None
        assert link.concept_id == music_person.entity_id

    def test_non_linkable_phrase_reported(self, tenet):
        result = tenet.link(
            "Glowberry Cleanse is located in Brooklyn. "
            "SnackWave dazzleboosted TurboFresh 9000."
        )
        non_linkable = " | ".join(s.text for s in result.non_linkable)
        assert "Glowberry" in non_linkable
        assert not any(
            "Glowberry" in l.surface for l in result.entity_links
        )


class TestOverlappingMentions:
    def test_merged_title_preferred(self, world, tenet):
        work = next(
            e
            for e in world.kb.entities()
            if e.label.startswith("The ") and len(e.label.split()) >= 4
        )
        creator_fact = next(
            (t for t in world.kb.triples() if t.subject == work.entity_id),
            None,
        )
        if creator_fact is None:
            pytest.skip("work has no facts")
        creator = world.kb.get_entity(creator_fact.obj)
        text = f"{work.label} was directed by {creator.label}."
        result = tenet.link(text)
        link = result.find_entity(work.label)
        assert link is not None
        assert link.concept_id == work.entity_id
        # no fragment of the title is separately linked
        fragments = [
            l for l in result.entity_links
            if l.span.text != work.label
            and l.span.char_start >= result.find_entity(work.label).span.char_start
            and l.span.char_end <= result.find_entity(work.label).span.char_end
        ]
        assert fragments == []


class TestRelationDisambiguation:
    def test_studies_field_vs_educated(self, world, tenet):
        kb = world.kb
        person_id = world.entities_of_type("computer_science", "person")[0]
        person = kb.get_entity(person_id)
        topic_id = next(
            t.obj
            for t in kb.triples()
            if t.subject == person_id
            and t.predicate == world.predicate("field")
        )
        topic = kb.get_entity(topic_id)
        result = tenet.link(f"{person.label} studies {topic.label}.")
        link = result.find_relation("studies")
        assert link is not None
        assert link.concept_id == world.predicate("field")

    def test_non_linkable_relation(self, world, tenet):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = tenet.link(f"{person.label} zorbified Brooklyn.")
        assert result.find_relation("zorbified") is None


class TestPronouns:
    def test_pronoun_fact_links_object_and_relation(self, world, tenet):
        kb = world.kb
        person_id = world.entities_of_type("computer_science", "person")[0]
        person = kb.get_entity(person_id)
        topic = kb.get_entity(
            world.entities_of_type("computer_science", "field")[0]
        )
        born_city = next(
            (
                t.obj
                for t in kb.triples()
                if t.subject == person_id and t.predicate == world.predicate("born")
            ),
            None,
        )
        if born_city is None:
            pytest.skip("person has no birth fact")
        city = kb.get_entity(born_city)
        text = (
            f"{person.label} studies {topic.label}. "
            f"He was born in {city.label}."
        )
        result = tenet.link(text)
        assert result.find_entity(city.label) is not None
        assert result.find_relation("was born in") is not None
