"""The paper's own running examples, as integration tests.

Section 1 motivates TENET with two concrete documents; both are
reconstructed here against hand-built KBs so the tests pin the exact
behaviours the paper promises.
"""

import pytest

from repro.core.linker import LinkingContext, TenetLinker
from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase


@pytest.fixture(scope="module")
def mary_and_max_context():
    kb = KnowledgeBase()
    kb.add_entity(EntityRecord("Q1", "Mary and Max", types=("film",), popularity=40))
    kb.add_entity(EntityRecord("Q2", "Adam Elliot", types=("person",), popularity=30))
    kb.add_entity(
        EntityRecord("Q3", "Mary Daly", aliases=("Mary",), types=("person",), popularity=80)
    )
    kb.add_entity(
        EntityRecord("Q4", "Max Weber", aliases=("Max",), types=("person",), popularity=80)
    )
    kb.add_predicate(
        PredicateRecord("P1", "director", aliases=("directed", "was directed by"))
    )
    kb.add_fact(Triple("Q1", "P1", "Q2"))
    return LinkingContext.build(kb)


@pytest.fixture(scope="module")
def jordan_context():
    """The Figure 1 world: two Michael Jordans, AI, the AAAS, Brooklyn."""
    kb = KnowledgeBase()
    kb.add_entity(
        EntityRecord(
            "Qprof", "Michael Jordan", types=("person",), popularity=30,
            description="professor",
        )
    )
    kb.add_entity(
        EntityRecord(
            "Qbb", "Michael Jordan", types=("person",), popularity=70,
            description="basketball player",
        )
    )
    kb.add_entity(
        EntityRecord("Qai", "artificial intelligence", types=("field",), popularity=50)
    )
    kb.add_entity(
        EntityRecord("Qml", "machine learning", types=("field",), popularity=50)
    )
    kb.add_entity(
        EntityRecord(
            "Qaaas", "Fellow of the AAAS", types=("award",), popularity=20
        )
    )
    kb.add_entity(EntityRecord("Qbk", "Brooklyn", types=("city",), popularity=60))
    kb.add_entity(EntityRecord("Qnba", "NBA", types=("organization",), popularity=60))
    kb.add_predicate(
        PredicateRecord("Pfield", "field of study", aliases=("studies",), popularity=40)
    )
    kb.add_predicate(
        PredicateRecord("Pedu", "educated at", aliases=("studies",), popularity=60)
    )
    kb.add_predicate(
        PredicateRecord("Paward", "award received", aliases=("was awarded",))
    )
    kb.add_predicate(
        PredicateRecord("Pvisit", "visited", aliases=("visited",))
    )
    kb.add_predicate(PredicateRecord("Pplay", "plays for", aliases=("plays for",)))
    # the professor's world
    kb.add_fact(Triple("Qprof", "Pfield", "Qai"))
    kb.add_fact(Triple("Qprof", "Pfield", "Qml"))
    kb.add_fact(Triple("Qprof", "Paward", "Qaaas"))
    # the player's world
    kb.add_fact(Triple("Qbb", "Pplay", "Qnba"))
    return LinkingContext.build(kb)


class TestMaryAndMax:
    def test_merged_film_reading_wins(self, mary_and_max_context):
        linker = TenetLinker(mary_and_max_context)
        result = linker.link("Mary and Max was directed by Adam Elliot.")
        merged = result.find_entity("Mary and Max")
        assert merged is not None
        assert merged.concept_id == "Q1"
        assert result.find_entity("Mary") is None
        assert result.find_entity("Max") is None

    def test_fragments_win_without_the_director(self, mary_and_max_context):
        """Without coherent context, the popular person readings are the
        rational fragments — the exact contrast the paper draws."""
        linker = TenetLinker(mary_and_max_context)
        result = linker.link("Mary and Max arrived early.")
        # either the fragments link to the popular persons, or the merged
        # film wins by prior; both readings must not coexist
        merged = result.find_entity("Mary and Max")
        fragments = [result.find_entity("Mary"), result.find_entity("Max")]
        assert (merged is None) or all(f is None for f in fragments)


class TestFigureOne:
    def test_professor_wins_with_ai_context(self, jordan_context):
        """Figure 1: with 'artificial intelligence' in the document, the
        less popular professor beats the basketball player."""
        linker = TenetLinker(jordan_context)
        result = linker.link(
            "Michael Jordan studies artificial intelligence and machine "
            "learning. He was awarded Fellow of the AAAS. He visited "
            "Brooklyn."
        )
        link = result.find_entity("Michael Jordan")
        assert link is not None
        assert link.concept_id == "Qprof"

    def test_studies_links_to_field_of_study(self, jordan_context):
        linker = TenetLinker(jordan_context)
        result = linker.link(
            "Michael Jordan studies artificial intelligence."
        )
        relation = result.find_relation("studies")
        assert relation is not None
        assert relation.concept_id == "Pfield"

    def test_brooklyn_isolated_but_linked(self, jordan_context):
        linker = TenetLinker(jordan_context)
        result = linker.link(
            "Michael Jordan studies artificial intelligence. He visited "
            "Brooklyn."
        )
        brooklyn = result.find_entity("Brooklyn")
        assert brooklyn is not None
        assert brooklyn.concept_id == "Qbk"

    def test_fellow_of_the_aaas_merged(self, jordan_context):
        """'Fellow of the AAAS' must link as one mention, not split."""
        linker = TenetLinker(jordan_context)
        result = linker.link(
            "Michael Jordan studies artificial intelligence. He was "
            "awarded Fellow of the AAAS."
        )
        award = result.find_entity("Fellow of the AAAS")
        assert award is not None
        assert award.concept_id == "Qaaas"

    def test_player_wins_in_sports_context(self, jordan_context):
        linker = TenetLinker(jordan_context)
        result = linker.link("Michael Jordan plays for NBA.")
        link = result.find_entity("Michael Jordan")
        assert link is not None
        assert link.concept_id == "Qbb"
