"""Regenerate the pinned exact-mode golden fixture.

Run only when an exact-pipeline output change is intended; the diff of
``golden/exact_linking_scale010.json`` then documents exactly what moved.
"""

import json
import sys
from pathlib import Path


def main() -> None:
    sys.path.insert(0, str(Path(__file__).parent))
    from test_golden_exact import GOLDEN_PATH, current_payload

    payload = current_payload()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"{len(payload)} documents -> {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
