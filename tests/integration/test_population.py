"""KB population tests."""

import pytest

from repro.kb.dump import kb_from_json_dump, kb_to_json_dump
from repro.population import KBPopulator


@pytest.fixture(scope="module")
def populator(context):
    return KBPopulator(context)


@pytest.fixture(scope="module")
def sample(world):
    kb = world.kb
    person_id = world.entities_of_type("computer_science", "person")[0]
    person = kb.get_entity(person_id)
    known_fact = next(
        t
        for t in kb.triples()
        if t.subject == person_id
        and t.predicate == world.predicate("field")
    )
    topic = kb.get_entity(known_fact.obj)
    other = kb.get_entity(world.entities_of_type("computer_science", "person")[1])
    city = kb.get_entity(world.cities[0])
    return {
        "person": person,
        "topic": topic,
        "known_fact": known_fact,
        "other": other,
        "city": city,
        "field_pid": world.predicate("field"),
        "visited_pid": world.predicate("visited"),
    }


class TestFactExtraction:
    def test_known_fact_confirmed(self, populator, sample):
        text = f"{sample['person'].label} researches {sample['topic'].label}."
        result = populator.populate(text)
        assert any(
            t.subject == sample["person"].entity_id
            and t.obj == sample["topic"].entity_id
            for t in result.confirmed_facts
        )

    def test_unknown_fact_is_new(self, populator, sample, world):
        text = f"{sample['other'].label} visited {sample['city'].label}."
        result = populator.populate(text)
        already_known = world.kb.has_fact(
            sample["other"].entity_id,
            sample["visited_pid"],
            sample["city"].entity_id,
        )
        bucket = result.confirmed_facts if already_known else result.new_facts
        assert any(
            t.subject == sample["other"].entity_id
            and t.obj == sample["city"].entity_id
            for t in bucket
        )

    def test_new_concept_promoted(self, populator, sample):
        text = f"Glowberry Cleanse is located in {sample['city'].label}."
        result = populator.populate(text)
        assert result.new_concepts
        assert result.new_concepts[0].surface == "Glowberry Cleanse"
        assert any(
            t.subject == result.new_concepts[0].placeholder_id
            for t in result.new_facts
        )

    def test_duplicate_new_concept_reused(self, populator, sample):
        text = (
            f"Glowberry Cleanse is located in {sample['city'].label}. "
            f"Glowberry Cleanse zorbified {sample['person'].label}."
        )
        result = populator.populate(text)
        surfaces = [c.surface for c in result.new_concepts]
        assert surfaces.count("Glowberry Cleanse") == 1

    def test_unresolvable_relation_skipped(self, populator):
        result = populator.populate(
            "TurboFresh 9000 zorbified the Quantum Pillow."
        )
        # the coined relation is non-linkable -> nothing to extract
        assert result.fact_count == 0


class TestApply:
    def test_apply_adds_facts_and_entities(self, populator, sample, world):
        text = (
            f"{sample['other'].label} visited {sample['city'].label}. "
            f"Glowberry Cleanse is located in {sample['city'].label}."
        )
        result = populator.populate(text)
        target = kb_from_json_dump(kb_to_json_dump(world.kb))
        before_triples = target.triple_count
        before_entities = target.entity_count
        added = populator.apply(target, result)
        assert added == len(result.new_facts)
        assert target.triple_count == before_triples + added
        assert target.entity_count >= before_entities + len(result.new_concepts)

    def test_apply_is_idempotent(self, populator, sample, world):
        text = f"Glowberry Cleanse is located in {sample['city'].label}."
        result = populator.populate(text)
        target = kb_from_json_dump(kb_to_json_dump(world.kb))
        populator.apply(target, result)
        again = populator.apply(target, result)
        assert again == 0


class TestCorpusPopulation:
    def test_placeholders_shared_across_documents(self, populator, sample):
        docs = [
            f"Glowberry Cleanse is located in {sample['city'].label}.",
            f"Glowberry Cleanse zorbified {sample['person'].label}. "
            f"Glowberry Cleanse is located in {sample['city'].label}.",
        ]
        result = populator.populate_corpus(docs)
        surfaces = [c.surface for c in result.new_concepts]
        assert surfaces.count("Glowberry Cleanse") == 1

    def test_corpus_facts_deduplicated(self, populator, sample):
        text = f"{sample['other'].label} visited {sample['city'].label}."
        result = populator.populate_corpus([text, text, text])
        keys = [t.as_tuple() for t in result.new_facts + result.confirmed_facts]
        assert len(keys) == len(set(keys))

    def test_accepts_annotated_documents(self, populator, suite):
        result = populator.populate_corpus(suite.news.documents[:2])
        assert result.fact_count >= 0  # runs end to end on real documents


class TestOnTheFlyLoop:
    def test_committed_concepts_become_linkable(self, world, sample):
        """QKBfly's premise, closed: a fresh phrase committed from one
        document links as an entity in the next document."""
        from repro.core.linker import LinkingContext, TenetLinker
        from repro.population import KBPopulator

        # private KB copy: commit() mutates the context's KB
        kb = kb_from_json_dump(kb_to_json_dump(world.kb))
        context = LinkingContext.build(kb, world.taxonomy)
        populator = KBPopulator(context)
        first = f"PulseMint is located in {sample['city'].label}."
        result = populator.populate(first)
        assert result.new_concepts
        populator.commit(result)

        linker = TenetLinker(context)
        second = f"PulseMint zorbified {sample['person'].label}."
        linked = linker.link(second)
        link = linked.find_entity("PulseMint")
        assert link is not None
        assert link.concept_id == result.new_concepts[0].placeholder_id

    def test_commit_is_idempotent(self, world, sample):
        from repro.core.linker import LinkingContext
        from repro.population import KBPopulator

        kb = kb_from_json_dump(kb_to_json_dump(world.kb))
        context = LinkingContext.build(kb, world.taxonomy)
        populator = KBPopulator(context)
        result = populator.populate(
            f"AeroWhisk is located in {sample['city'].label}."
        )
        populator.commit(result)
        again = populator.commit(result)
        assert again == 0
