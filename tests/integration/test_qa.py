"""Question answering tests."""

import pytest

from repro.qa import KBQuestionAnswerer


@pytest.fixture(scope="module")
def answerer(context):
    return KBQuestionAnswerer(context)


@pytest.fixture(scope="module")
def facts(world):
    kb = world.kb
    person_id = world.entities_of_type("computer_science", "person")[0]
    person = kb.get_entity(person_id)
    topic_id = next(
        t.obj
        for t in kb.triples()
        if t.subject == person_id and t.predicate == world.predicate("field")
    )
    return {
        "person": person,
        "topic": kb.get_entity(topic_id),
        "field_pid": world.predicate("field"),
        "born_pid": world.predicate("born"),
    }


class TestAnswering:
    def test_subject_question(self, answerer, facts, world):
        """'Who studies X?' -> subjects of (?, field, X)."""
        answer = answerer.answer(f"Who studies {facts['topic'].label}?")
        assert answer.found
        assert facts["person"].entity_id in answer.entity_ids
        expected = world.kb.subjects_of(
            facts["topic"].entity_id, facts["field_pid"]
        )
        assert set(answer.entity_ids) == expected

    def test_object_question(self, answerer, facts, world):
        """'<person> researches which topics?' -> objects of the fact."""
        answer = answerer.answer(
            f"{facts['person'].label} researches which topics?"
        )
        assert answer.found
        assert facts["topic"].entity_id in answer.entity_ids
        assert answer.anchor_is_subject

    def test_born_question(self, answerer, facts, world):
        born = world.kb.objects_of(
            facts["person"].entity_id, facts["born_pid"]
        )
        if not born:
            pytest.skip("person has no birth fact")
        answer = answerer.answer(
            f"{facts['person'].label} was born in which city?"
        )
        assert answer.found
        assert set(answer.entity_ids) == born

    def test_interpretation_recorded(self, answerer, facts):
        answer = answerer.answer(f"Who studies {facts['topic'].label}?")
        assert answer.anchor_id == facts["topic"].entity_id
        assert answer.predicate_id == facts["field_pid"]
        assert not answer.anchor_is_subject

    def test_unanswerable_question(self, answerer):
        answer = answerer.answer("Who zorbified the Quantum Pillow?")
        assert not answer.found

    def test_labels_match_ids(self, answerer, facts, world):
        answer = answerer.answer(f"Who studies {facts['topic'].label}?")
        for entity_id, label in zip(answer.entity_ids, answer.labels):
            assert world.kb.get_entity(entity_id).label == label
