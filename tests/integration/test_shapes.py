"""Result-shape assertions: the paper's comparative claims must hold on
the benchmark suite (small scale for test speed; the benchmarks run the
full scale)."""

import pytest

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.core.linker import TenetLinker
from repro.eval.runner import EvaluationRunner


@pytest.fixture(scope="module")
def scores(suite, suite_context):
    linkers = [
        FalconLinker(suite_context),
        QKBflyLinker(suite_context),
        KBPearlLinker(suite_context),
        EarlLinker(suite_context),
        MinTreeLinker(suite_context),
        TenetLinker(suite_context),
    ]
    runner = EvaluationRunner(linkers)
    return {ds.name: runner.evaluate(ds) for ds in suite.datasets()}


class TestTable3Shape:
    def test_tenet_at_or_near_top_everywhere(self, scores):
        """TENET's EL F1 is within epsilon of the best system on every
        dataset (strictly best at full scale; the tiny test corpus allows
        slack)."""
        for dataset, by_system in scores.items():
            best = max(s.entity.f1 for s in by_system.values())
            assert by_system["TENET"].entity.f1 >= best - 0.06, dataset

    def test_falcon_never_best(self, scores):
        for dataset, by_system in scores.items():
            best = max(s.entity.f1 for s in by_system.values())
            assert by_system["Falcon"].entity.f1 < best, dataset

    def test_coherence_beats_prior_only_on_kore(self, scores):
        """KORE50's ambiguous mentions require context (the paper's
        headline claim for short text)."""
        kore = scores["KORE50"]
        assert kore["TENET"].entity.f1 > kore["Falcon"].entity.f1 + 0.05


class TestTable4Shape:
    def test_tenet_best_relation_linking(self, scores):
        for dataset in ("News", "T-REx42"):
            by_system = scores[dataset]
            tenet = by_system["TENET"].relation.f1
            for name, system in by_system.items():
                if name == "TENET" or system.relation.predicted == 0:
                    continue
                assert tenet >= system.relation.f1 - 0.03, (dataset, name)

    def test_entities_only_systems_produce_no_relations(self, scores):
        for dataset in ("News", "T-REx42"):
            assert scores[dataset]["QKBfly"].relation.predicted == 0
            assert scores[dataset]["MINTREE"].relation.predicted == 0

    def test_earl_relation_recall_low(self, scores):
        """EARL's head-lemma normalisation caps its relation recall."""
        for dataset in ("News", "T-REx42"):
            earl = scores[dataset]["EARL"].relation
            tenet = scores[dataset]["TENET"].relation
            assert earl.recall < tenet.recall


class TestFig6Shape:
    def test_tenet_mention_detection_at_top(self, scores):
        for dataset, by_system in scores.items():
            best = max(s.mention_detection.f1 for s in by_system.values())
            assert by_system["TENET"].mention_detection.f1 >= best - 0.04, dataset

    def test_isolated_detection_only_for_capable_systems(self, scores):
        for dataset, by_system in scores.items():
            assert by_system["Falcon"].isolated.predicted == 0
            assert by_system["EARL"].isolated.predicted == 0
            assert by_system["MINTREE"].isolated.predicted == 0

    def test_tenet_isolated_precision_strong(self, scores, suite, suite_context):
        runner = EvaluationRunner(
            [
                QKBflyLinker(suite_context),
                KBPearlLinker(suite_context),
                TenetLinker(suite_context),
            ]
        )
        ads = runner.evaluate(suite.advertisement_subset())
        tenet = ads["TENET"].isolated.precision
        assert tenet > 0.5
        assert tenet >= ads["KBPearl"].isolated.precision - 0.1
