"""Batched similarity matrix vs. the scalar per-pair path.

The satellite property of the vectorised hot path: for any embedding
store, ``SimilarityIndex.batch_similarity`` must reproduce the scalar
``similarity`` / ``1 - cosine`` values within 1e-9 — a single
``E @ E.T`` block may not change the numbers, only the cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings.similarity import SimilarityIndex
from repro.embeddings.store import EmbeddingStore


def make_store(matrix):
    ids = [f"Q{i}" for i in range(matrix.shape[0])]
    return ids, EmbeddingStore.from_matrix(ids, matrix)


@st.composite
def embedding_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    dim = draw(st.integers(min_value=1, max_value=16))
    values = draw(
        st.lists(
            st.floats(
                min_value=-10.0,
                max_value=10.0,
                allow_nan=False,
                allow_infinity=False,
                width=32,
            ),
            min_size=n * dim,
            max_size=n * dim,
        )
    )
    return np.array(values, dtype=np.float32).reshape(n, dim)


class TestBatchMatchesScalar:
    @settings(max_examples=60, deadline=None)
    @given(embedding_matrices())
    def test_batch_equals_scalar_within_1e9(self, matrix):
        ids, store = make_store(matrix)
        index = SimilarityIndex(store)
        batch = index.batch_similarity(ids)
        for i, a in enumerate(ids):
            for j, b in enumerate(ids):
                assert batch[i, j] == pytest.approx(
                    index.similarity(a, b), abs=1e-9
                )

    @settings(max_examples=30, deadline=None)
    @given(embedding_matrices())
    def test_batch_distance_is_complement(self, matrix):
        ids, store = make_store(matrix)
        index = SimilarityIndex(store)
        np.testing.assert_allclose(
            index.batch_distance(ids),
            1.0 - index.batch_similarity(ids),
            atol=1e-12,
        )

    @settings(max_examples=30, deadline=None)
    @given(embedding_matrices())
    def test_precompute_cache_matches_batch(self, matrix):
        ids, store = make_store(matrix)
        index = SimilarityIndex(store)
        batch = index.batch_similarity(ids)
        index.precompute(ids)
        for i, a in enumerate(ids):
            for j in range(i + 1, len(ids)):
                assert index.similarity(a, ids[j]) == pytest.approx(
                    batch[i, j], abs=1e-12
                )


class TestBatchSemantics:
    @pytest.fixture
    def index(self):
        store = EmbeddingStore(3)
        store.add("a", np.array([1.0, 0.0, 0.0]))
        store.add("b", np.array([0.0, 1.0, 0.0]))
        return SimilarityIndex(store)

    def test_matrix_is_symmetric_with_unit_diagonal(self, index):
        sims = index.batch_similarity(["a", "b"])
        np.testing.assert_allclose(sims, sims.T)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_duplicate_ids_are_exactly_one(self, index):
        sims = index.batch_similarity(["a", "b", "a"])
        assert sims[0, 2] == 1.0 == sims[2, 0]

    def test_unknown_ids_have_zero_similarity(self, index):
        sims = index.batch_similarity(["a", "ghost"])
        assert sims[0, 1] == 0.0
        assert sims[1, 0] == 0.0
        assert sims[1, 1] == 1.0  # same-id shortcut, known or not

    def test_empty_input(self, index):
        assert index.batch_similarity([]).shape == (0, 0)

    def test_counters_advance(self, index):
        before = index.batch_stats()["batch_calls"]
        index.batch_similarity(["a", "b"])
        stats = index.batch_stats()
        assert stats["batch_calls"] == before + 1
        assert stats["batch_pairs"] >= 1

    def test_batch_does_not_fill_pair_cache(self, index):
        index.batch_similarity(["a", "b"])
        assert index.cache_size == 0
