"""Similarity index tests."""

import numpy as np
import pytest

from repro.embeddings.similarity import SimilarityIndex, cosine_similarity
from repro.embeddings.store import EmbeddingStore


@pytest.fixture
def index():
    store = EmbeddingStore(3)
    store.add("a", np.array([1.0, 0.0, 0.0]))
    store.add("b", np.array([1.0, 1.0, 0.0]))
    store.add("c", np.array([0.0, 0.0, 1.0]))
    return SimilarityIndex(store)


class TestCosineFunction:
    def test_parallel(self):
        assert cosine_similarity(np.ones(3), 2 * np.ones(3)) == pytest.approx(1.0)

    def test_orthogonal(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert cosine_similarity(a, b) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_clipped(self):
        a = np.array([1.0])
        assert cosine_similarity(a, a) <= 1.0


class TestIndex:
    def test_self_similarity(self, index):
        assert index.similarity("a", "a") == 1.0

    def test_symmetric(self, index):
        assert index.similarity("a", "b") == index.similarity("b", "a")

    def test_distance_complement(self, index):
        assert index.distance("a", "c") == pytest.approx(
            1.0 - index.similarity("a", "c")
        )

    def test_cache_grows_once_per_pair(self, index):
        index.similarity("a", "b")
        size = index.cache_size
        index.similarity("b", "a")
        assert index.cache_size == size

    def test_precompute_fills_cache(self, index):
        index.precompute(["a", "b", "c"])
        assert index.cache_size == 3  # all unordered pairs

    def test_precompute_skips_unknown_ids(self, index):
        index.precompute(["a", "ghost"])
        assert index.cache_size == 0

    def test_precompute_matches_lazy(self, index):
        lazy = index.similarity("a", "b")
        fresh = SimilarityIndex(index._store)
        fresh.precompute(["a", "b", "c"])
        assert fresh.similarity("a", "b") == pytest.approx(lazy)
