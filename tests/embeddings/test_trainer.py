"""Embedding trainer tests: determinism and relatedness structure."""

import numpy as np
import pytest

from repro.embeddings.trainer import EmbeddingTrainer, TrainerConfig
from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase


def _two_cluster_kb():
    kb = KnowledgeBase()
    kb.add_predicate(PredicateRecord("P1", "related to"))
    for i in range(8):
        kb.add_entity(EntityRecord(f"A{i}", f"A {i}"))
        kb.add_entity(EntityRecord(f"B{i}", f"B {i}"))
    for i in range(8):
        for j in range(i + 1, 8):
            kb.add_fact(Triple(f"A{i}", "P1", f"A{j}"))
            kb.add_fact(Triple(f"B{i}", "P1", f"B{j}"))
    return kb


class TestConfig:
    def test_invalid_self_weight(self):
        with pytest.raises(ValueError):
            TrainerConfig(self_weight=1.5)

    def test_invalid_sweeps(self):
        with pytest.raises(ValueError):
            TrainerConfig(sweeps=-1)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            TrainerConfig(dimension=0)


class TestTraining:
    def test_deterministic(self):
        kb = _two_cluster_kb()
        a = EmbeddingTrainer(kb, TrainerConfig(seed=5)).train()
        b = EmbeddingTrainer(kb, TrainerConfig(seed=5)).train()
        for cid in kb.concept_ids():
            assert np.allclose(a.vector(cid), b.vector(cid))

    def test_covers_all_concepts(self):
        kb = _two_cluster_kb()
        store = EmbeddingTrainer(kb).train()
        assert set(store.ids()) == set(kb.concept_ids())

    def test_intra_cluster_closer_than_inter(self):
        kb = _two_cluster_kb()
        store = EmbeddingTrainer(kb, TrainerConfig(dimension=128)).train()
        intra = store.cosine("A0", "A1")
        inter = store.cosine("A0", "B0")
        assert intra > inter + 0.2

    def test_predicates_embedded_with_entities(self):
        kb = _two_cluster_kb()
        store = EmbeddingTrainer(kb).train()
        assert "P1" in store

    def test_empty_kb(self):
        store = EmbeddingTrainer(KnowledgeBase()).train()
        assert len(store) == 0

    def test_zero_sweeps_keeps_random_init(self):
        kb = _two_cluster_kb()
        store = EmbeddingTrainer(kb, TrainerConfig(sweeps=0, dimension=128)).train()
        # without propagation, cluster structure is absent
        assert abs(store.cosine("A0", "A1")) < 0.4

    def test_adjacency_includes_predicate_links(self):
        kb = _two_cluster_kb()
        adjacency = EmbeddingTrainer(kb).build_adjacency()
        assert "P1" in adjacency["A0"]
        assert "A0" in adjacency["P1"]

    def test_world_embeddings_domain_structure(self, world, context):
        """In the synthetic world, a person is closer to their own
        domain's concepts than to a random other domain's."""
        store = context.embeddings
        cs_people = world.entities_of_type("computer_science", "person")
        cs_topics = world.entities_of_type("computer_science", "field")
        music_topics = world.entities_of_type("music", "field")
        same = np.mean(
            [store.cosine(cs_people[0], t) for t in cs_topics]
        )
        other = np.mean(
            [store.cosine(cs_people[0], t) for t in music_topics]
        )
        assert same > other
