"""Embedding store tests."""

import numpy as np
import pytest

from repro.embeddings.store import EmbeddingStore


@pytest.fixture
def store():
    s = EmbeddingStore(4)
    s.add("Q1", np.array([1.0, 0.0, 0.0, 0.0]))
    s.add("Q2", np.array([0.0, 2.0, 0.0, 0.0]))
    s.add("Q3", np.array([3.0, 0.0, 0.0, 0.0]))
    return s


class TestConstruction:
    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            EmbeddingStore(0)

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("Q1", np.ones(4))

    def test_wrong_dimension_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("Q9", np.ones(3))

    def test_from_matrix(self):
        matrix = np.eye(3, dtype=np.float32)
        s = EmbeddingStore.from_matrix(["a", "b", "c"], matrix)
        assert len(s) == 3
        assert s.cosine("a", "b") == pytest.approx(0.0)

    def test_from_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            EmbeddingStore.from_matrix(["a"], np.eye(2))

    def test_from_matrix_duplicate_ids(self):
        with pytest.raises(ValueError):
            EmbeddingStore.from_matrix(["a", "a"], np.eye(2))


class TestQueries:
    def test_vectors_normalised(self, store):
        assert np.linalg.norm(store.vector("Q2")) == pytest.approx(1.0)

    def test_cosine_parallel(self, store):
        assert store.cosine("Q1", "Q3") == pytest.approx(1.0)

    def test_cosine_orthogonal(self, store):
        assert store.cosine("Q1", "Q2") == pytest.approx(0.0)

    def test_distance(self, store):
        assert store.distance("Q1", "Q3") == pytest.approx(0.0)
        assert store.distance("Q1", "Q2") == pytest.approx(1.0)

    def test_contains(self, store):
        assert "Q1" in store
        assert "Q9" not in store

    def test_nearest(self, store):
        nearest = store.nearest("Q1", k=1)
        assert nearest[0][0] == "Q3"

    def test_nearest_excludes_self(self, store):
        nearest = store.nearest("Q1", k=5)
        assert all(cid != "Q1" for cid, _ in nearest)


class TestPersistence:
    def test_save_load_roundtrip(self, store, tmp_path):
        store.save(tmp_path)
        loaded = EmbeddingStore.load(tmp_path)
        assert loaded.ids() == store.ids()
        assert loaded.cosine("Q1", "Q3") == pytest.approx(1.0)

    def test_memory_mapped_load(self, store, tmp_path):
        store.save(tmp_path)
        loaded = EmbeddingStore.load(tmp_path, mmap=True)
        # memory-mapped matrix still serves queries
        assert loaded.distance("Q1", "Q2") == pytest.approx(1.0)

    def test_save_into_missing_directory(self, store, tmp_path):
        target = tmp_path / "nested" / "embeddings"
        store.save(target)
        assert EmbeddingStore.load(target).ids() == store.ids()

    def test_save_leaves_no_temp_litter(self, store, tmp_path):
        target = tmp_path / "embeddings"
        store.save(target)
        store.save(target)  # overwrite path: per-file replace
        assert {p.name for p in tmp_path.iterdir()} == {"embeddings"}
        assert sorted(p.name for p in target.iterdir()) == [
            "embeddings.npy",
            "ids.json",
        ]

    def test_overwrite_existing_store(self, store, tmp_path):
        store.save(tmp_path)
        bigger = EmbeddingStore(4)
        for i in range(4):
            bigger.add(f"R{i}", np.eye(4)[i % 4])
        bigger.save(tmp_path)
        assert EmbeddingStore.load(tmp_path).ids() == bigger.ids()


class TestLoadValidation:
    """Torn or corrupted on-disk state must be rejected, never served."""

    def test_ids_not_a_list(self, store, tmp_path):
        store.save(tmp_path)
        (tmp_path / "ids.json").write_text('"nope"')
        with pytest.raises(ValueError, match="bad ids.json"):
            EmbeddingStore.load(tmp_path)

    def test_non_string_ids(self, store, tmp_path):
        store.save(tmp_path)
        (tmp_path / "ids.json").write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="bad ids.json"):
            EmbeddingStore.load(tmp_path)

    def test_row_count_mismatch(self, store, tmp_path):
        store.save(tmp_path)
        (tmp_path / "ids.json").write_text('["Q1", "Q2"]')
        with pytest.raises(ValueError, match="ids"):
            EmbeddingStore.load(tmp_path)

    def test_duplicate_ids(self, store, tmp_path):
        store.save(tmp_path)
        (tmp_path / "ids.json").write_text('["Q1", "Q1", "Q1"]')
        with pytest.raises(ValueError, match="duplicate"):
            EmbeddingStore.load(tmp_path)

    def test_wrong_matrix_rank(self, store, tmp_path):
        store.save(tmp_path)
        np.save(tmp_path / "embeddings.npy", np.zeros(12, dtype=np.float32))
        with pytest.raises(ValueError, match="dimensions"):
            EmbeddingStore.load(tmp_path)


class TestReadOnlyViews:
    """No writable alias of the (shared, possibly memory-mapped) matrix
    may escape the store — a request handler scribbling on a row would
    corrupt every other request and, in cluster mode, every worker
    process sharing the mapped pages."""

    def test_vector_is_read_only_in_ram(self, store):
        row = store.vector("Q1")
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[0] = 99.0

    def test_vector_is_read_only_when_mmapped(self, store, tmp_path):
        store.save(tmp_path)
        loaded = EmbeddingStore.load(tmp_path, mmap=True)
        row = loaded.vector("Q1")
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[:] = 0.0

    def test_vector_is_zero_copy(self, store, tmp_path):
        store.save(tmp_path)
        loaded = EmbeddingStore.load(tmp_path, mmap=True)
        row = loaded.vector("Q2")
        # A view over the mapped matrix, not a per-request copy.
        assert np.shares_memory(row, np.asarray(loaded._matrix))

    def test_rows_gather_does_not_alias_the_matrix(self, store, tmp_path):
        store.save(tmp_path)
        loaded = EmbeddingStore.load(tmp_path, mmap=True)
        gathered, known = loaded.rows(["Q1", "missing", "Q3"])
        assert known.tolist() == [True, False, True]
        # The gather output is a fresh buffer: mutating it must never
        # reach the shared matrix.
        assert not np.shares_memory(gathered, np.asarray(loaded._matrix))
        gathered[:] = -1.0
        assert loaded.cosine("Q1", "Q3") == pytest.approx(1.0)

    def test_queries_still_work_on_frozen_views(self, store):
        assert store.cosine("Q1", "Q3") == pytest.approx(1.0)
        assert store.nearest("Q1", k=1)[0][0] == "Q3"
