"""Tokenizer tests."""

from repro.nlp.tokenizer import detokenize, tokenize


class TestTokenize:
    def test_words_and_punct(self):
        tokens = tokenize("Hello, world!")
        assert [t.text for t in tokens] == ["Hello", ",", "world", "!"]

    def test_char_offsets(self):
        text = "Ada met Bob."
        tokens = tokenize(text)
        for token in tokens:
            assert text[token.start : token.end] == token.text

    def test_indices_sequential(self):
        tokens = tokenize("a b c")
        assert [t.index for t in tokens] == [0, 1, 2]

    def test_numbers(self):
        tokens = tokenize("Apollo 11 mission")
        assert tokens[1].text == "11"

    def test_empty_text(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []

    def test_capitalisation_flag(self):
        tokens = tokenize("Alice met bob")
        assert tokens[0].is_capitalized
        assert not tokens[2].is_capitalized

    def test_colon_is_separate_token(self):
        tokens = tokenize("Jurassic World: Fallen Kingdom")
        assert ":" in [t.text for t in tokens]


class TestDetokenize:
    def test_returns_original_slice(self):
        text = "The Storm on the Sea."
        tokens = tokenize(text)
        assert detokenize(tokens[:5], text) == "The Storm on the Sea"

    def test_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            detokenize([], "x")
