"""POS tagger tests."""

import pytest

from repro.nlp import pos
from repro.nlp.pos import PosTagger
from repro.nlp.tokenizer import tokenize


@pytest.fixture
def tagger():
    return PosTagger.from_predicate_aliases(
        ["studies", "was awarded", "is the sister city of", "works on"],
        nominal_tokens=["distributed", "systems", "learning", "shooting"],
    )


def tags_of(tagger, text):
    tokens = tokenize(text)
    return list(zip([t.text for t in tokens], tagger.tag(tokens)))


class TestClosedClasses:
    def test_determiners(self, tagger):
        assert dict(tags_of(tagger, "the cat"))["the"] == pos.DET

    def test_prepositions(self, tagger):
        assert dict(tags_of(tagger, "walk of fame"))["of"] == pos.ADP

    def test_conjunctions(self, tagger):
        assert dict(tags_of(tagger, "salt and pepper"))["and"] == pos.CCONJ

    def test_pronouns(self, tagger):
        assert dict(tags_of(tagger, "he left"))["he"] == pos.PRON

    def test_auxiliaries(self, tagger):
        assert dict(tags_of(tagger, "it was good"))["was"] == pos.AUX

    def test_numbers(self, tagger):
        assert dict(tags_of(tagger, "Apollo 11"))["11"] == pos.NUM

    def test_punctuation(self, tagger):
        assert dict(tags_of(tagger, "Hello , world"))[","] == pos.PUNCT


class TestLexicons:
    def test_primed_verb_head(self, tagger):
        tagged = dict(tags_of(tagger, "Ada studies math"))
        assert tagged["studies"] == pos.VERB

    def test_alias_head_skips_auxiliaries(self, tagger):
        # "was awarded" primes "awarded", not "was"
        tagged = dict(tags_of(tagger, "Ada was awarded gold"))
        assert tagged["awarded"] == pos.VERB

    def test_alias_head_skips_function_words(self, tagger):
        # "is the sister city of" primes "sister"
        tagged = dict(tags_of(tagger, "Rome is the sister city of Paris"))
        assert tagged["sister"] == pos.VERB  # primed as relational head

    def test_nominal_lexicon_beats_morphology(self, tagger):
        tagged = dict(tags_of(tagger, "Ada studies distributed systems"))
        assert tagged["distributed"] == pos.NOUN
        assert tagged["systems"] == pos.NOUN

    def test_verb_lexicon_beats_nominal_lexicon(self):
        tagger = PosTagger.from_predicate_aliases(
            ["works on"], nominal_tokens=["works"]
        )
        tagged = dict(tags_of(tagger, "she works on robots"))
        assert tagged["works"] == pos.VERB


class TestHeuristics:
    def test_capitalized_mid_sentence_is_propn(self, tagger):
        tagged = tags_of(tagger, "we met Alice")
        assert tagged[2][1] == pos.PROPN

    def test_morphological_ing(self, tagger):
        tagged = dict(tags_of(tagger, "she was dancing"))
        assert tagged["dancing"] == pos.VERB

    def test_morphological_ed(self, tagger):
        tagged = dict(tags_of(tagger, "he zorbified it"))
        assert tagged["zorbified"] == pos.VERB

    def test_default_noun(self, tagger):
        tagged = dict(tags_of(tagger, "the zyzzyx"))
        assert tagged["zyzzyx"] == pos.NOUN

    def test_one_tag_per_token(self, tagger):
        tokens = tokenize("Alice studies math. She was awarded gold.")
        assert len(tagger.tag(tokens)) == len(tokens)
