"""Pipeline/tagger configuration behaviour tests."""


from repro.core.candidates import CandidateGenerator
from repro.nlp.chunker import NounPhraseChunker
from repro.nlp.pipeline import ExtractionPipeline
from repro.nlp.pos import PosTagger
from repro.nlp.sentences import split_sentences
from repro.nlp.spans import SpanKind
from repro.nlp.tokenizer import tokenize


class TestTaggerExtension:
    def test_add_verbs_extends_lexicon(self):
        tagger = PosTagger()
        tokens = tokenize("she zorbs daily")
        assert tagger.tag(tokens)[1] == "NOUN"  # unknown word defaults
        tagger.add_verbs(["zorbs"])
        assert tagger.tag(tokens)[1] == "VERB"

    def test_pipeline_without_index_still_extracts(self):
        pipeline = ExtractionPipeline(None)
        extraction = pipeline.extract("Alice Brown visited Springfield.")
        assert any(s.text == "Alice Brown" for s in extraction.noun_spans)


class TestChunkerLimits:
    def test_max_span_tokens_caps_gazetteer_spans(self):
        long_alias = "a b c d e f"
        gazetteer = lambda s: s.lower() == long_alias
        text = "Rembrandt saw a b c d e f there."
        tokens = tokenize(text)
        tagger = PosTagger()
        tags = tagger.tag(tokens)
        sentences = split_sentences(tokens)
        narrow = NounPhraseChunker(gazetteer, max_span_tokens=3)
        spans = narrow.chunk(text, tokens, tags, sentences)
        assert not any(s.text == long_alias for s in spans if s.length == 6)


class TestFuzzyCandidates:
    def test_fuzzy_fallback_config(self, context, world):
        work = next(
            e
            for e in world.kb.entities()
            if e.label.startswith("The ") and len(e.label.split()) >= 4
        )
        # a sub-phrase of the title that is not an exact alias
        words = work.label.split()
        fragment = " ".join(words[1:3])
        strict = CandidateGenerator(context.alias_index, use_fuzzy=False)
        fuzzy = CandidateGenerator(context.alias_index, use_fuzzy=True)
        from repro.nlp.spans import Span

        span = Span(fragment, 0, len(fragment.split()), 0, SpanKind.NOUN)
        strict_hits = strict.entity_candidates(span)
        fuzzy_hits = fuzzy.entity_candidates(span)
        # fuzzy finds at least as much as exact lookup
        assert len(fuzzy_hits) >= len(strict_hits)


class TestBaselineMentionSelection:
    def test_entities_only_systems_skip_relation_spans(self, context, world):
        from repro.baselines import MinTreeLinker

        linker = MinTreeLinker(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        extraction = linker.pipeline.extract(
            f"{person.label} studies databases."
        )
        mentions = linker.select_mentions(extraction)
        assert all(m.kind is SpanKind.NOUN for m in mentions)

    def test_relation_linking_systems_include_relations(self, context, world):
        from repro.baselines import KBPearlLinker

        linker = KBPearlLinker(context)
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        extraction = linker.pipeline.extract(
            f"{person.label} studies databases."
        )
        mentions = linker.select_mentions(extraction)
        assert any(m.kind is SpanKind.RELATION for m in mentions)
