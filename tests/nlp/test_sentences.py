"""Sentence splitter tests."""

import pytest

from repro.nlp.sentences import sentence_of_token, split_sentences
from repro.nlp.tokenizer import tokenize


class TestSplit:
    def test_two_sentences(self):
        tokens = tokenize("Ada met Bob. Bob left.")
        sentences = split_sentences(tokens)
        assert len(sentences) == 2

    def test_terminator_belongs_to_sentence(self):
        tokens = tokenize("Hi. Bye.")
        sentences = split_sentences(tokens)
        assert tokens[sentences[0].token_end - 1].text == "."

    def test_partition_is_total(self):
        tokens = tokenize("One. Two! Three? Four")
        sentences = split_sentences(tokens)
        covered = sum(s.length for s in sentences)
        assert covered == len(tokens)

    def test_trailing_without_terminator(self):
        tokens = tokenize("Hello world")
        sentences = split_sentences(tokens)
        assert len(sentences) == 1
        assert sentences[0].token_end == len(tokens)

    def test_empty(self):
        assert split_sentences([]) == []

    def test_indices_sequential(self):
        tokens = tokenize("A. B. C.")
        sentences = split_sentences(tokens)
        assert [s.index for s in sentences] == [0, 1, 2]


class TestSentenceOfToken:
    def test_lookup(self):
        tokens = tokenize("Ada met Bob. Bob left.")
        sentences = split_sentences(tokens)
        last = len(tokens) - 1
        assert sentence_of_token(sentences, last).index == 1
        assert sentence_of_token(sentences, 0).index == 0

    def test_out_of_range_raises(self):
        tokens = tokenize("Hi.")
        sentences = split_sentences(tokens)
        with pytest.raises(IndexError):
            sentence_of_token(sentences, 99)
