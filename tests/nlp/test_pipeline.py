"""Extraction pipeline integration tests (against the synthetic world)."""

import pytest

from repro.nlp.pipeline import ExtractionPipeline


@pytest.fixture(scope="module")
def pipeline(context):
    return ExtractionPipeline(context.alias_index)


class TestExtraction:
    def test_noun_spans_found(self, pipeline):
        extraction = pipeline.extract(
            "Nina Wilson studies artificial intelligence."
        )
        texts = [s.text for s in extraction.noun_spans]
        assert "Nina Wilson" in texts
        assert "artificial intelligence" in texts

    def test_relation_found(self, pipeline):
        extraction = pipeline.extract("Nina Wilson studies machine learning.")
        assert any(r.span.text == "studies" for r in extraction.relations)

    def test_pronoun_relation_synthesised(self, pipeline):
        extraction = pipeline.extract(
            "Nina Wilson studies databases. He visited Brooklyn."
        )
        visited = [r for r in extraction.relations if r.span.text == "visited"]
        assert visited
        assert visited[0].subject.text == "Nina Wilson"
        assert visited[0].object.text == "Brooklyn"

    def test_word_count_excludes_punctuation(self, pipeline):
        extraction = pipeline.extract("One two three.")
        assert extraction.word_count == 3

    def test_relation_for_span(self, pipeline):
        extraction = pipeline.extract("Nina Wilson studies databases.")
        span = extraction.relations[0].span
        assert extraction.relation_for_span(span) is extraction.relations[0]

    def test_overlapping_candidates_for_titles(self, pipeline, world):
        # any multi-token work title yields both the merged span and parts
        work = next(
            e
            for e in world.kb.entities()
            if e.label.startswith("The ") and len(e.label.split()) >= 4
        )
        extraction = pipeline.extract(f"{work.label} amazed everyone.")
        texts = [s.text for s in extraction.noun_spans]
        assert work.label in texts
        assert len(texts) > 1  # sub-spans extracted too

    def test_all_spans_have_char_offsets(self, pipeline):
        text = "Nina Wilson studies databases. He visited Brooklyn."
        extraction = pipeline.extract(text)
        for span in extraction.noun_spans + extraction.relation_spans:
            assert span.char_start >= 0
            assert span.char_end > span.char_start

    def test_deterministic(self, pipeline):
        text = "Nina Wilson studies databases."
        first = pipeline.extract(text)
        second = pipeline.extract(text)
        assert first.noun_spans == second.noun_spans
        assert [r.span for r in first.relations] == [
            r.span for r in second.relations
        ]
