"""Lemmatizer tests."""

from repro.nlp.lemmatizer import lemma_variants, lemmatize, lemmatize_phrase


class TestLemmatize:
    def test_irregulars(self):
        assert lemmatize("was") == "be"
        assert lemmatize("won") == "win"
        assert lemmatize("wrote") == "write"
        assert lemmatize("went") == "go"

    def test_plural_s(self):
        assert lemmatize("studies") == "study"
        assert lemmatize("cats") == "cat"

    def test_ing(self):
        assert "work" in lemma_variants("working")
        assert "make" in lemma_variants("making")

    def test_ed(self):
        assert "visit" in lemma_variants("visited")
        assert "award" in lemma_variants("awarded")

    def test_doubled_consonant(self):
        assert "run" in lemma_variants("running")

    def test_short_words_untouched(self):
        assert lemmatize("is") == "be"  # irregular
        assert lemmatize("as") == "as"

    def test_ss_not_stripped(self):
        assert lemmatize("chess") == "chess"


class TestVariants:
    def test_original_form_included(self):
        assert "studies" in lemma_variants("studies")

    def test_irregular_first(self):
        assert lemma_variants("was")[0] == "be"

    def test_no_duplicates(self):
        variants = lemma_variants("studies")
        assert len(variants) == len(set(variants))


class TestPhrase:
    def test_head_word_lemmatised(self):
        assert lemmatize_phrase("studied at") == "study at"

    def test_single_word(self):
        assert lemmatize_phrase("visited") == "visit"

    def test_empty(self):
        assert lemmatize_phrase("") == ""
