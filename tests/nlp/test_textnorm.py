"""Surface normalisation tests."""

from repro.textnorm import normalize_phrase, tokenize_phrase


class TestNormalize:
    def test_lowercases(self):
        assert normalize_phrase("Michael Jordan") == "michael jordan"

    def test_strips_edge_punctuation(self):
        assert normalize_phrase("  'Hello,' ") == "hello"

    def test_collapses_whitespace(self):
        assert normalize_phrase("a   b\tc") == "a b c"

    def test_keeps_internal_punctuation(self):
        assert (
            normalize_phrase("Jurassic World: Fallen Kingdom")
            == "jurassic world: fallen kingdom"
        )

    def test_empty(self):
        assert normalize_phrase("") == ""
        assert normalize_phrase("  !! ") == ""


class TestTokenizePhrase:
    def test_splits_on_whitespace(self):
        assert tokenize_phrase("The Storm on the Sea") == [
            "the", "storm", "on", "the", "sea",
        ]

    def test_empty(self):
        assert tokenize_phrase(" . ") == []
