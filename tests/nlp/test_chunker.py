"""Noun-phrase chunker tests."""


from repro.nlp.chunker import NounPhraseChunker
from repro.nlp.pos import PosTagger
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenizer import tokenize


def run_chunker(text, gazetteer=None, extra_nominals=()):
    tagger = PosTagger.from_predicate_aliases(
        ["studies", "painted", "visited"], nominal_tokens=extra_nominals
    )
    tokens = tokenize(text)
    tags = tagger.tag(tokens)
    sentences = split_sentences(tokens)
    chunker = NounPhraseChunker(gazetteer)
    return (
        chunker.regions(text, tokens, tags, sentences),
        chunker.chunk(text, tokens, tags, sentences),
    )


class TestRegions:
    def test_simple_names(self):
        regions, _ = run_chunker("Alice Brown visited Springfield.")
        texts = [r.text for r in regions]
        assert "Alice Brown" in texts
        assert "Springfield" in texts

    def test_connector_joins_nominals(self):
        regions, _ = run_chunker("Rembrandt painted The Storm on the Sea.")
        texts = [r.text for r in regions]
        assert "The Storm on the Sea" in texts

    def test_verb_breaks_region(self):
        regions, _ = run_chunker("Alice Brown studies Bob Green.")
        texts = [r.text for r in regions]
        assert "Alice Brown" in texts
        assert "Bob Green" in texts
        assert all("studies" not in t for t in texts)

    def test_region_never_ends_with_connector(self):
        regions, _ = run_chunker("Alice went to the market of.")
        for region in regions:
            assert not region.text.lower().endswith((" of", " the", " and"))

    def test_title_determiner_included(self):
        regions, _ = run_chunker("Rembrandt painted The Storm.")
        assert any(r.text == "The Storm" for r in regions)

    def test_sentence_boundary_respected(self):
        regions, _ = run_chunker("Alice arrived. Brown arrived.")
        texts = [r.text for r in regions]
        assert "Alice" in texts
        assert "Brown" in texts
        assert "Alice Brown" not in texts


class TestCandidates:
    def test_nominal_runs_included(self):
        _, spans = run_chunker("Rembrandt painted The Storm on the Sea.")
        texts = [s.text for s in spans]
        assert "The Storm on the Sea" in texts
        assert "Sea" in texts or "The Storm" in texts

    def test_gazetteer_subspans(self):
        known = {"the storm", "sea of galilee"}
        _, spans = run_chunker(
            "Rembrandt painted The Storm on the Sea of Galilee.",
            gazetteer=lambda s: s.lower() in known,
        )
        texts = [s.text for s in spans]
        assert "The Storm" in texts
        assert "Sea of Galilee" in texts

    def test_spans_sorted_and_unique(self):
        _, spans = run_chunker("Alice Brown visited Springfield.")
        keys = [(s.token_start, s.token_end) for s in spans]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_char_offsets_populated(self):
        text = "Alice Brown visited Springfield."
        _, spans = run_chunker(text)
        for span in spans:
            assert text[span.char_start : span.char_end] == span.text
