"""Open IE (relation extraction) tests."""


from repro.nlp.chunker import NounPhraseChunker
from repro.nlp.openie import RelationExtractor
from repro.nlp.pos import PosTagger
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenizer import tokenize

_PREDICATE_ALIASES = [
    "studies", "was awarded", "is the sister city of", "visited",
    "painted", "lives in",
]
_KNOWN_PREDICATES = {a.lower() for a in _PREDICATE_ALIASES}


def extract(text):
    tagger = PosTagger.from_predicate_aliases(_PREDICATE_ALIASES)
    tokens = tokenize(text)
    tags = tagger.tag(tokens)
    sentences = split_sentences(tokens)
    chunker = NounPhraseChunker()
    regions = chunker.regions(text, tokens, tags, sentences)
    extractor = RelationExtractor(lambda s: s.lower() in _KNOWN_PREDICATES)
    return extractor.extract(text, tokens, tags, sentences, regions)


class TestAdjacent:
    def test_simple_verb(self):
        relations = extract("Alice studies math.")
        assert any(r.span.text == "studies" for r in relations)

    def test_subject_object_attached(self):
        relations = extract("Alice studies math.")
        rel = next(r for r in relations if r.span.text == "studies")
        assert rel.subject.text == "Alice"
        assert rel.object.text == "math"

    def test_auxiliary_included_in_span(self):
        relations = extract("Alice was awarded gold.")
        assert any(r.span.text == "was awarded" for r in relations)

    def test_trailing_preposition(self):
        relations = extract("Alice lives in Springfield.")
        assert any(r.span.text == "lives in" for r in relations)

    def test_no_verb_no_relation(self):
        relations = extract("Alice Brown Springfield.")
        assert relations == []

    def test_variants_include_aux_stripped(self):
        relations = extract("Alice was awarded gold.")
        rel = next(r for r in relations if "awarded" in r.span.text)
        assert "awarded" in [v.lower() for v in rel.surface_variants]

    def test_variants_include_lemma(self):
        relations = extract("Alice studies math.")
        rel = next(r for r in relations if r.span.text == "studies")
        variants = [v.lower() for v in rel.surface_variants]
        assert any(v.startswith("stud") and v != "studies" for v in variants)


class TestBridged:
    def test_sister_city_pattern(self):
        # Both the full bridged phrase and the less informative adjacent
        # fragment are emitted (the paper's Sec. 6.2 error-analysis
        # example); span selection is the linker's job.
        relations = extract("Rome is the sister city of Paris.")
        bridged = [
            r for r in relations if r.span.text == "is the sister city of"
        ]
        assert bridged
        assert bridged[0].subject.text == "Rome"
        assert bridged[0].object.text == "Paris"

    def test_bridged_requires_gazetteer(self):
        tagger = PosTagger.from_predicate_aliases(_PREDICATE_ALIASES)
        text = "Rome is the sister city of Paris."
        tokens = tokenize(text)
        tags = tagger.tag(tokens)
        sentences = split_sentences(tokens)
        regions = NounPhraseChunker().regions(text, tokens, tags, sentences)
        extractor = RelationExtractor(None)  # no gazetteer
        relations = extractor.extract(text, tokens, tags, sentences, regions)
        assert not any("sister city" in r.span.text for r in relations)


class TestMultiSentence:
    def test_relations_per_sentence(self):
        relations = extract("Alice studies math. Bob visited Springfield.")
        texts = [r.span.text for r in relations]
        assert "studies" in texts
        assert "visited" in texts

    def test_no_cross_sentence_relation(self):
        relations = extract("Alice studies math. Bob visited Springfield.")
        for rel in relations:
            assert rel.subject.sentence_index == rel.object.sentence_index
