"""Span data-model tests."""

import pytest

from repro.nlp.spans import Span, SpanKind, Token, spans_overlap


def noun(start, end, text="x"):
    return Span(text, start, end, 0, SpanKind.NOUN)


class TestToken:
    def test_lower(self):
        assert Token("Hello", 0, 5, 0).lower == "hello"

    def test_capitalized(self):
        assert Token("Hello", 0, 5, 0).is_capitalized
        assert not Token("hello", 0, 5, 0).is_capitalized
        assert not Token("", 0, 0, 0).is_capitalized


class TestSpan:
    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            Span("x", 3, 3, 0, SpanKind.NOUN)

    def test_length(self):
        assert noun(2, 5).length == 3

    def test_covers(self):
        outer, inner = noun(0, 5), noun(1, 3)
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_same_range(self):
        assert noun(1, 3, "a").same_range(noun(1, 3, "b"))
        assert not noun(1, 3).same_range(noun(1, 4))

    def test_char_offsets_excluded_from_identity(self):
        a = Span("x", 0, 1, 0, SpanKind.NOUN, char_start=0, char_end=1)
        b = Span("x", 0, 1, 0, SpanKind.NOUN, char_start=99, char_end=100)
        assert a == b
        assert hash(a) == hash(b)

    def test_kind_part_of_identity(self):
        a = Span("x", 0, 1, 0, SpanKind.NOUN)
        b = Span("x", 0, 1, 0, SpanKind.RELATION)
        assert a != b


class TestOverlap:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((0, 3), (2, 5), True),
            ((0, 3), (3, 5), False),  # touching is not overlapping
            ((2, 5), (0, 3), True),
            ((0, 10), (4, 5), True),
            ((0, 1), (5, 6), False),
        ],
    )
    def test_cases(self, a, b, expected):
        assert spans_overlap(noun(*a), noun(*b)) is expected

    def test_symmetric(self):
        a, b = noun(0, 4), noun(3, 8)
        assert spans_overlap(a, b) == spans_overlap(b, a)
