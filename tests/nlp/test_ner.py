"""Mention typing tests."""

import pytest

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.kb.alias_index import AliasIndex
from repro.kb.records import EntityRecord
from repro.kb.store import KnowledgeBase
from repro.nlp.ner import MentionTyper


@pytest.fixture
def typer():
    kb = KnowledgeBase()
    kb.add_entity(
        EntityRecord("Q1", "Ada Lovelace", types=("person",), popularity=90)
    )
    kb.add_entity(
        EntityRecord("Q2", "Springfield", types=("city",), popularity=50)
    )
    # "Jordan": person-dominant but mixed
    kb.add_entity(
        EntityRecord("Q3", "Jordan", types=("person",), popularity=50)
    )
    kb.add_entity(
        EntityRecord(
            "Q4", "Jordan Kingdom", aliases=("Jordan",),
            types=("country",), popularity=50,
        )
    )
    return MentionTyper(AliasIndex.from_kb(kb))


class TestTyping:
    def test_unambiguous_type(self, typer):
        assert typer.type_of("Ada Lovelace") == "person"
        assert typer.type_of("Springfield") == "city"

    def test_mixed_types_stay_untyped(self, typer):
        # 50/50 person/country mass is below the decisiveness threshold
        assert typer.type_of("Jordan") is None

    def test_unknown_surface_untyped(self, typer):
        assert typer.type_of("Glowberry Cleanse") is None

    def test_threshold_configurable(self):
        kb = KnowledgeBase()
        kb.add_entity(EntityRecord("Q1", "X", types=("person",), popularity=60))
        kb.add_entity(
            EntityRecord("Q2", "Y", aliases=("X",), types=("city",), popularity=40)
        )
        lax = MentionTyper(AliasIndex.from_kb(kb), min_confidence=0.55)
        strict = MentionTyper(AliasIndex.from_kb(kb), min_confidence=0.75)
        assert lax.type_of("X") == "person"
        assert strict.type_of("X") is None


class TestPipelineIntegration:
    def test_types_assigned_when_enabled(self, context, world):
        linker = TenetLinker(context, TenetConfig(use_type_filter=True))
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        extraction = linker.pipeline.extract(f"{person.label} studies databases.")
        span = next(s for s in extraction.noun_spans if s.text == person.label)
        assert span.mention_type in ("person", None)

    def test_types_absent_by_default(self, tenet, world):
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        extraction = tenet.pipeline.extract(f"{person.label} studies databases.")
        assert all(s.mention_type is None for s in extraction.noun_spans)

    def test_linking_still_works_with_filter(self, context, world):
        linker = TenetLinker(context, TenetConfig(use_type_filter=True))
        person = world.kb.get_entity(
            world.entities_of_type("computer_science", "person")[0]
        )
        result = linker.link(f"{person.label} studies databases.")
        link = result.find_entity(person.label)
        assert link is not None
        assert link.concept_id == person.entity_id
