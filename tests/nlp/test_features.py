"""Linguistic feature tests (Sec. 5.1 feature classes)."""

from repro.nlp.features import LinguisticFeature, classify_gap, contains_feature
from repro.nlp.spans import Span, SpanKind
from repro.nlp.tokenizer import tokenize


def gap_between(text, left_words, right_word):
    tokens = tokenize(text)
    words = [t.text for t in tokens]
    left_end = words.index(left_words) + 1
    right_start = words.index(right_word)
    return classify_gap(tokens, left_end, right_start)


class TestClassifyGap:
    def test_coordination(self):
        assert gap_between("Romeo and Juliet", "Romeo", "Juliet") is (
            LinguisticFeature.COORDINATION
        )

    def test_preposition(self):
        assert gap_between("Storm on Island", "Storm", "Island") is (
            LinguisticFeature.PREPOSITION
        )

    def test_preposition_with_determiner(self):
        assert gap_between("Lord of the Ring", "Lord", "Ring") is (
            LinguisticFeature.PREPOSITION
        )

    def test_number(self):
        assert gap_between("Apollo 11 mission", "Apollo", "mission") is (
            LinguisticFeature.NUMBER
        )

    def test_punctuation(self):
        tokens = tokenize("World : Kingdom")
        assert classify_gap(tokens, 1, 2) is LinguisticFeature.PUNCTUATION

    def test_non_feature_word(self):
        assert gap_between("Alice met Bob", "Alice", "Bob") is None

    def test_empty_gap(self):
        tokens = tokenize("a b")
        assert classify_gap(tokens, 1, 1) is None

    def test_too_long_gap(self):
        tokens = tokenize("a of of of of b")
        assert classify_gap(tokens, 1, 5) is None

    def test_mixed_gap_prefers_non_preposition(self):
        # "and the" classifies as coordination, not preposition
        tokens = tokenize("Romeo and the Juliet")
        assert classify_gap(tokens, 1, 3) is LinguisticFeature.COORDINATION


class TestContainsFeature:
    def _span(self, text, start, end):
        return Span(text, start, end, 0, SpanKind.NOUN)

    def test_long_text_mention(self):
        tokens = tokenize("The Storm on the Sea of Galilee")
        span = self._span("Storm on the Sea", 1, 7)
        assert contains_feature(tokens, span)

    def test_short_text_mention(self):
        tokens = tokenize("National Science Association")
        span = self._span("National Science Association", 0, 3)
        assert not contains_feature(tokens, span)

    def test_single_token(self):
        tokens = tokenize("Galilee")
        span = self._span("Galilee", 0, 1)
        assert not contains_feature(tokens, span)
