"""Pronoun co-reference tests."""

from repro.nlp.chunker import NounPhraseChunker
from repro.nlp.coref import resolve_pronouns
from repro.nlp.pos import PosTagger
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenizer import tokenize


def resolve(text):
    tagger = PosTagger.from_predicate_aliases(["studies", "visited"])
    tokens = tokenize(text)
    tags = tagger.tag(tokens)
    sentences = split_sentences(tokens)
    regions = NounPhraseChunker().regions(text, tokens, tags, sentences)
    resolved = resolve_pronouns(tokens, tags, regions)
    return tokens, resolved


class TestResolution:
    def test_he_resolves_to_person(self):
        tokens, resolved = resolve("Michael Jordan studies math. He visited Springfield.")
        pronoun_index = next(i for i, t in enumerate(tokens) if t.text == "He")
        assert pronoun_index in resolved
        assert resolved[pronoun_index].text == "Michael Jordan"

    def test_she_resolves_to_most_recent_person(self):
        tokens, resolved = resolve(
            "Alice Brown met Clara Novak. She visited Springfield."
        )
        pronoun_index = next(i for i, t in enumerate(tokens) if t.text == "She")
        assert resolved[pronoun_index].text == "Clara Novak"

    def test_no_antecedent_unresolved(self):
        tokens, resolved = resolve("He visited Springfield.")
        assert resolved == {}

    def test_person_pronoun_skips_long_regions(self):
        tokens, resolved = resolve(
            "The Storm on the Sea of Galilee amazed Alice Brown. She left."
        )
        pronoun_index = next(i for i, t in enumerate(tokens) if t.text == "She")
        assert resolved[pronoun_index].text == "Alice Brown"

    def test_it_resolves_to_any_region(self):
        tokens, resolved = resolve("Springfield grew. It thrived.")
        pronoun_index = next(i for i, t in enumerate(tokens) if t.text == "It")
        assert pronoun_index in resolved

    def test_object_pronouns_not_resolved(self):
        tokens, resolved = resolve("Alice Brown met him.")
        assert resolved == {}

    def test_antecedent_must_precede(self):
        tokens, resolved = resolve("She studies math. Alice Brown left.")
        pronoun_index = next(i for i, t in enumerate(tokens) if t.text == "She")
        assert pronoun_index not in resolved
