# Convenience targets for the TENET reproduction.

.PHONY: install test bench bench-compare examples report serve \
    snapshot serve-warm clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Quick perf record of the current tree (schema-versioned JSON; see
# docs/benchmarking.md).  Full profile: python -m repro.cli bench
bench:
	PYTHONPATH=src python -m repro.cli bench --quick --output BENCH_local.json

# Quick run + regression gate against the committed baseline.
bench-compare: bench
	PYTHONPATH=src python -m repro.cli bench compare \
	    benchmarks/results/BENCH_baseline.json BENCH_local.json

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

report:
	python -m repro.cli report reproduction_report.md --scale 1.0

# Launch the JSON-over-HTTP linking service against the seed synthetic
# world (endpoints: /link /batch /metrics /healthz).
serve:
	PYTHONPATH=src python -m repro.cli serve --host 127.0.0.1 --port 8080

# Build (and verify) the default full-scale snapshot into ./snapshots —
# the one-time cold build that `serve-warm` and `bench --snapshot`
# reuse.  See docs/snapshots.md.
snapshot:
	PYTHONPATH=src python -m repro.cli snapshot build snapshots
	PYTHONPATH=src python -m repro.cli snapshot verify snapshots

# Same service, warm-started from the ./snapshots store (built on first
# use if absent); the snapshot identity is surfaced on /metrics.
serve-warm:
	PYTHONPATH=src python -m repro.cli serve --host 127.0.0.1 --port 8080 \
	    --snapshot snapshots

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt \
	    src/repro.egg-info test_output.txt bench_output.txt \
	    BENCH_local.json
