# Convenience targets for the TENET reproduction.

.PHONY: install test bench examples report clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

report:
	python -m repro.cli report reproduction_report.md --scale 1.0

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt \
	    src/repro.egg-info test_output.txt bench_output.txt
