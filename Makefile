# Convenience targets for the TENET reproduction.

.PHONY: install test bench bench-compare examples report serve clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Quick perf record of the current tree (schema-versioned JSON; see
# docs/benchmarking.md).  Full profile: python -m repro.cli bench
bench:
	PYTHONPATH=src python -m repro.cli bench --quick --output BENCH_local.json

# Quick run + regression gate against the committed baseline.
bench-compare: bench
	PYTHONPATH=src python -m repro.cli bench compare \
	    benchmarks/results/BENCH_baseline.json BENCH_local.json

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

report:
	python -m repro.cli report reproduction_report.md --scale 1.0

# Launch the JSON-over-HTTP linking service against the seed synthetic
# world (endpoints: /link /batch /metrics /healthz).
serve:
	PYTHONPATH=src python -m repro.cli serve --host 127.0.0.1 --port 8080

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt \
	    src/repro.egg-info test_output.txt bench_output.txt \
	    BENCH_local.json
