# Convenience targets for the TENET reproduction.

.PHONY: install test bench bench-compare examples report serve \
    snapshot serve-warm serve-cluster load-smoke session-smoke clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Quick perf record of the current tree (schema-versioned JSON; see
# docs/benchmarking.md).  Full profile: python -m repro.cli bench
bench:
	PYTHONPATH=src python -m repro.cli bench --quick --output BENCH_local.json

# Quick run + regression gate against the committed baseline.
bench-compare: bench
	PYTHONPATH=src python -m repro.cli bench compare \
	    benchmarks/results/BENCH_baseline.json BENCH_local.json

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

report:
	python -m repro.cli report reproduction_report.md --scale 1.0

# Launch the JSON-over-HTTP linking service against the seed synthetic
# world (endpoints: /link /batch /metrics /healthz).
serve:
	PYTHONPATH=src python -m repro.cli serve --host 127.0.0.1 --port 8080

# Build (and verify) the default full-scale snapshot into ./snapshots —
# the one-time cold build that `serve-warm` and `bench --snapshot`
# reuse.  See docs/snapshots.md.
snapshot:
	PYTHONPATH=src python -m repro.cli snapshot build snapshots
	PYTHONPATH=src python -m repro.cli snapshot verify snapshots

# Same service, warm-started from the ./snapshots store (built on first
# use if absent); the snapshot identity is surfaced on /metrics.
serve-warm:
	PYTHONPATH=src python -m repro.cli serve --host 127.0.0.1 --port 8080 \
	    --snapshot snapshots

# Multi-process sharded serving: 2 linker worker processes behind the
# front end, all warm-started from one shared ./snapshots artifact
# (mmap-shared embeddings).  See docs/serving.md, "Cluster mode".
serve-cluster:
	PYTHONPATH=src python -m repro.cli serve --host 127.0.0.1 --port 8080 \
	    --cluster --workers 2 --snapshot snapshots

# Local mirror of the CI load-smoke job: boot the server with overload
# guards on, drive the open-loop load generator past worker capacity,
# and assert the overload SLOs (only 200/429, Retry-After on every 429,
# bounded p99).  See docs/benchmarking.md.
load-smoke:
	@PYTHONPATH=src sh -ec ' \
	python -m repro.cli serve --port 8765 --workers 2 \
	    --max-queue 16 --batch-max-queue 64 --degrade-queue 8 \
	    --rate-limit 200 --rate-limit-burst 50 >/dev/null 2>&1 & \
	pid=$$!; trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 60); do \
	    python -c "import urllib.request as u; u.urlopen(\"http://127.0.0.1:8765/healthz\", timeout=1)" \
	        2>/dev/null && break; sleep 1; \
	done; \
	python -m repro.cli bench load --url http://127.0.0.1:8765 \
	    --mode open --qps 40 --duration 5 --concurrency 8 --clients 4 \
	    --max-p99 10 --output load-local.json'

# Local mirror of the CI session-smoke job: boot the server with
# sessions on, run the scripted stream + conversation smoke (full-mode
# byte parity over the wire, lifecycle round-trips, status codes), then
# gate the quick bench's scoped-mode session pass (parity + amortized
# speedup > 1x).  See docs/sessions.md.
session-smoke:
	@PYTHONPATH=src sh -ec ' \
	python -m repro.cli serve --port 8766 --workers 2 --sessions \
	    >/dev/null 2>&1 & \
	pid=$$!; trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 60); do \
	    python -c "import urllib.request as u; u.urlopen(\"http://127.0.0.1:8766/healthz\", timeout=1)" \
	        2>/dev/null && break; sleep 1; \
	done; \
	python -m repro.bench.session_smoke --url http://127.0.0.1:8766; \
	python -m repro.cli bench --quick --session --session-mode scoped \
	    --output session-local.json'

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt \
	    src/repro.egg-info test_output.txt bench_output.txt \
	    BENCH_local.json load-local.json session-local.json
