"""Shared surface-form normalisation.

Both the alias index (KB side) and the linguistic pipeline (document side)
must normalise phrases identically, otherwise candidate lookup silently
fails; keeping the function in one tiny module guarantees that.
"""

from __future__ import annotations

import re

_WHITESPACE = re.compile(r"\s+")
_EDGE_PUNCT = re.compile(r"^[^\w]+|[^\w]+$")


def normalize_phrase(phrase: str) -> str:
    """Canonical lookup key for a surface form.

    Lower-cases (the paper indexes aliases case-insensitively via Solr),
    strips leading/trailing punctuation and collapses internal whitespace.
    Internal punctuation (hyphens, apostrophes, colons) is preserved since
    it is meaningful in titles such as "Jurassic World: Fallen Kingdom".
    """
    collapsed = _WHITESPACE.sub(" ", phrase.strip())
    stripped = _EDGE_PUNCT.sub("", collapsed)
    return stripped.lower()


def tokenize_phrase(phrase: str) -> list:
    """Whitespace tokens of the normalised phrase."""
    normalized = normalize_phrase(phrase)
    if not normalized:
        return []
    return normalized.split(" ")
