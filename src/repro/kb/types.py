"""A small semantic type taxonomy with subsumption.

Candidate generation (Sec. 3, Step 1) filters candidate entities by the
type the linguistic tools assign to a noun phrase; that requires a notion
of type compatibility.  The taxonomy is a rooted DAG of ``is-a`` edges;
two types are compatible when one subsumes the other.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

ROOT_TYPE = "thing"


class TypeTaxonomy:
    """Rooted is-a hierarchy over type names."""

    def __init__(self) -> None:
        self._parents: Dict[str, Set[str]] = {ROOT_TYPE: set()}

    def add_type(self, name: str, parents: Iterable[str] = (ROOT_TYPE,)) -> None:
        """Register *name* under *parents* (all of which must exist)."""
        parent_set = set(parents)
        for parent in parent_set:
            if parent not in self._parents:
                raise KeyError(f"unknown parent type {parent!r}")
        if name in self._parents:
            self._parents[name] |= parent_set
        else:
            self._parents[name] = parent_set

    def __contains__(self, name: str) -> bool:
        return name in self._parents

    def types(self) -> List[str]:
        return list(self._parents)

    def ancestors(self, name: str) -> Set[str]:
        """All strict ancestors of *name* (transitively)."""
        if name not in self._parents:
            raise KeyError(f"unknown type {name!r}")
        result: Set[str] = set()
        stack = list(self._parents[name])
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self._parents[current])
        return result

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """Whether *name* is *ancestor* or descends from it."""
        return name == ancestor or ancestor in self.ancestors(name)

    def compatible(self, a: str, b: str) -> bool:
        """Types are compatible when either subsumes the other.

        Unknown types are treated as compatible with everything — the
        paper's pipeline never rejects a candidate because a linguistic
        tool produced a type outside the KB taxonomy.
        """
        if a not in self._parents or b not in self._parents:
            return True
        return self.is_subtype(a, b) or self.is_subtype(b, a)

    def compatible_any(self, a: str, others: Iterable[str]) -> bool:
        """Whether *a* is compatible with at least one of *others*."""
        others = list(others)
        if not others:
            return True
        return any(self.compatible(a, other) for other in others)


def build_default_taxonomy() -> TypeTaxonomy:
    """The taxonomy used by the synthetic world and the NER heuristics."""
    tax = TypeTaxonomy()
    tax.add_type("agent")
    tax.add_type("person", ["agent"])
    tax.add_type("organization", ["agent"])
    tax.add_type("location")
    tax.add_type("city", ["location"])
    tax.add_type("country", ["location"])
    tax.add_type("creative_work")
    tax.add_type("film", ["creative_work"])
    tax.add_type("book", ["creative_work"])
    tax.add_type("painting", ["creative_work"])
    tax.add_type("topic")
    tax.add_type("field", ["topic"])
    tax.add_type("award")
    tax.add_type("event")
    tax.add_type("team", ["organization"])
    tax.add_type("university", ["organization"])
    tax.add_type("company", ["organization"])
    return tax


DEFAULT_TAXONOMY = build_default_taxonomy()
