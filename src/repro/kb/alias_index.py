"""Case-insensitive alias index over KB entities and predicates.

Stands in for the Solr (Lucene) index the paper builds following
OpenTapioca/KBPearl: labels and aliases of all entities and predicates are
indexed case-insensitively; a lookup returns candidates ranked by prior
matching probability P(concept | phrase), estimated from popularity counts
among the concepts sharing the alias (Sec. 3, Eq. 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.caching import LRUCache, make_cache
from repro.kb.records import EntityRecord, PredicateRecord
from repro.kb.store import KnowledgeBase
from repro.kb.types import TypeTaxonomy
from repro.textnorm import normalize_phrase, tokenize_phrase


@dataclass(frozen=True)
class CandidateHit:
    """A candidate concept for a surface form.

    ``prior`` is P(concept | phrase) in [0, 1]; within one lookup the
    priors of all returned hits sum to 1 (before any type filtering).
    """

    concept_id: str
    prior: float
    kind: str  # "entity" | "predicate"

    @property
    def local_distance(self) -> float:
        """The paper's local semantic distance d(m, c) = 1 - P(c | m)."""
        return 1.0 - self.prior


class AliasIndex:
    """Inverted alias index with popularity-based priors.

    Separate posting lists are kept for entities and predicates so that
    noun phrases only generate entity candidates and relational phrases
    only generate predicate candidates (the type constraint of Problem 3).
    """

    def __init__(
        self,
        taxonomy: Optional[TypeTaxonomy] = None,
        fuzzy_cache_size: Optional[int] = 2048,
    ) -> None:
        self._entity_postings: Dict[str, List[str]] = {}
        self._predicate_postings: Dict[str, List[str]] = {}
        self._entity_popularity: Dict[str, int] = {}
        self._predicate_popularity: Dict[str, int] = {}
        self._entity_types: Dict[str, Tuple[str, ...]] = {}
        self._token_index: Dict[str, List[str]] = {}  # token -> alias keys
        self._taxonomy = taxonomy
        # Fuzzy lookup scans the token index; it is a pure function of
        # the normalised phrase, so repeated mentions across documents
        # are memoised (invalidated whenever an entity is added).
        self._fuzzy_cache: Optional[LRUCache] = make_cache(fuzzy_cache_size)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_kb(
        cls, kb: KnowledgeBase, taxonomy: Optional[TypeTaxonomy] = None
    ) -> "AliasIndex":
        index = cls(taxonomy)
        for entity in kb.entities():
            index.add_entity(entity)
        for predicate in kb.predicates():
            index.add_predicate(predicate)
        return index

    def add_entity(self, entity: EntityRecord) -> None:
        if self._fuzzy_cache is not None:
            self._fuzzy_cache.clear()
        self._entity_popularity[entity.entity_id] = entity.popularity
        self._entity_types[entity.entity_id] = entity.types
        for alias in entity.aliases:
            key = normalize_phrase(alias)
            if not key:
                continue
            postings = self._entity_postings.setdefault(key, [])
            if entity.entity_id not in postings:
                postings.append(entity.entity_id)
            for token in key.split(" "):
                keys = self._token_index.setdefault(token, [])
                if key not in keys:
                    keys.append(key)

    def add_predicate(self, predicate: PredicateRecord) -> None:
        self._predicate_popularity[predicate.predicate_id] = predicate.popularity
        for alias in predicate.aliases:
            key = normalize_phrase(alias)
            if not key:
                continue
            postings = self._predicate_postings.setdefault(key, [])
            if predicate.predicate_id not in postings:
                postings.append(predicate.predicate_id)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    #: Bumped whenever the serialised layout changes meaning; readers
    #: refuse newer versions instead of misinterpreting them.
    SERIAL_FORMAT_VERSION = 1

    def to_json(self) -> Dict[str, object]:
        """Serialise the index to a JSON-compatible dictionary.

        Posting-list and token-index order is preserved exactly, so a
        deserialised index is *structurally identical* to the original
        (not merely equivalent after re-ranking) — the property the
        snapshot store's warm-start parity guarantee rests on.  The
        fuzzy memo is transient state and is not serialised.
        """
        return {
            "format_version": self.SERIAL_FORMAT_VERSION,
            "entity_postings": {
                key: list(ids) for key, ids in self._entity_postings.items()
            },
            "predicate_postings": {
                key: list(ids) for key, ids in self._predicate_postings.items()
            },
            "entity_popularity": dict(self._entity_popularity),
            "predicate_popularity": dict(self._predicate_popularity),
            "entity_types": {
                cid: list(types) for cid, types in self._entity_types.items()
            },
            "token_index": {
                token: list(keys) for token, keys in self._token_index.items()
            },
        }

    @classmethod
    def from_json(
        cls,
        payload: Dict[str, object],
        taxonomy: Optional[TypeTaxonomy] = None,
        fuzzy_cache_size: Optional[int] = 2048,
    ) -> "AliasIndex":
        """Rebuild an index from :meth:`to_json` output."""
        version = payload.get("format_version")
        if version != cls.SERIAL_FORMAT_VERSION:
            raise ValueError(
                f"unsupported alias index format version {version!r}"
            )
        index = cls(taxonomy, fuzzy_cache_size=fuzzy_cache_size)
        index._entity_postings = {
            key: list(ids) for key, ids in payload["entity_postings"].items()
        }
        index._predicate_postings = {
            key: list(ids) for key, ids in payload["predicate_postings"].items()
        }
        index._entity_popularity = {
            cid: int(pop) for cid, pop in payload["entity_popularity"].items()
        }
        index._predicate_popularity = {
            cid: int(pop)
            for cid, pop in payload["predicate_popularity"].items()
        }
        index._entity_types = {
            cid: tuple(types) for cid, types in payload["entity_types"].items()
        }
        index._token_index = {
            token: list(keys) for token, keys in payload["token_index"].items()
        }
        return index

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup_entities(
        self,
        phrase: str,
        mention_type: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[CandidateHit]:
        """Entity candidates for *phrase* ranked by prior.

        ``mention_type`` applies the paper's type filter: a candidate is
        kept only if one of its KB types is compatible with the mention
        type under the taxonomy.  ``limit`` truncates to the top-k
        candidates *after* prior computation, which is the paper's
        "candidates per mention" knob (Fig. 6(d)).
        """
        key = normalize_phrase(phrase)
        ids = self._entity_postings.get(key, [])
        hits = self._rank(ids, self._entity_popularity, "entity")
        if mention_type and self._taxonomy is not None:
            hits = [
                hit
                for hit in hits
                if self._taxonomy.compatible_any(
                    mention_type, self._entity_types.get(hit.concept_id, ())
                )
            ]
        if limit is not None:
            hits = hits[:limit]
        return hits

    def lookup_predicates(
        self, phrase: str, limit: Optional[int] = None
    ) -> List[CandidateHit]:
        """Predicate candidates for *phrase* ranked by prior."""
        key = normalize_phrase(phrase)
        ids = self._predicate_postings.get(key, [])
        hits = self._rank(ids, self._predicate_popularity, "predicate")
        if limit is not None:
            hits = hits[:limit]
        return hits

    def fuzzy_lookup_entities(
        self, phrase: str, limit: Optional[int] = None
    ) -> List[CandidateHit]:
        """Token-overlap fallback lookup.

        Finds indexed aliases sharing every content token with *phrase*
        (e.g. "M. Jordan" vs "Michael Jordan" will not match, but "Storm
        on the Sea" matches "The Storm on the Sea of Galilee" minus
        stopwords).  Priors are scaled by token overlap so fuzzy hits never
        outrank exact ones.

        Results are memoised per normalised phrase (the lookup's only
        real input) in a bounded LRU, so the token-index scan runs once
        per distinct surface form instead of once per mention.  The memo
        stores the *unsliced* hit tuple and ``limit`` is applied on the
        way out, so the same surface form looked up with different
        limits shares one entry instead of fragmenting the LRU and
        re-running the token-index scan per distinct limit.
        """
        if self._fuzzy_cache is None:
            return self._fuzzy_lookup_uncached(phrase, limit)
        key = normalize_phrase(phrase)
        hits = self._fuzzy_cache.get_or_compute(
            key, lambda: tuple(self._fuzzy_lookup_uncached(phrase, None))
        )
        if limit is not None:
            hits = hits[:limit]
        return list(hits)

    def _fuzzy_lookup_uncached(
        self, phrase: str, limit: Optional[int] = None
    ) -> List[CandidateHit]:
        tokens = [t for t in tokenize_phrase(phrase) if len(t) > 2]
        if not tokens:
            return []
        candidate_keys: Optional[set] = None
        for token in tokens:
            keys = set(self._token_index.get(token, ()))
            candidate_keys = keys if candidate_keys is None else candidate_keys & keys
            if not candidate_keys:
                return []
        assert candidate_keys is not None
        # Overlap is computed on token *sets*: phrases with repeated
        # content tokens must not score above 1.0, or the 0.5 scaling
        # below would let a fuzzy hit outrank an exact one.
        query_tokens = set(tokens)
        scored: Dict[str, float] = {}
        for key in candidate_keys:
            key_tokens = set(key.split(" "))
            overlap = min(1.0, len(query_tokens) / max(len(key_tokens), 1))
            for entity_id in self._entity_postings.get(key, ()):
                scored[entity_id] = max(scored.get(entity_id, 0.0), overlap)
        hits = self._rank(list(scored), self._entity_popularity, "entity")
        fuzzy = [
            CandidateHit(h.concept_id, h.prior * scored[h.concept_id] * 0.5, "entity")
            for h in hits
        ]
        fuzzy.sort(key=lambda h: (-h.prior, h.concept_id))
        if limit is not None:
            fuzzy = fuzzy[:limit]
        return fuzzy

    def fuzzy_cache_stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters of the fuzzy-lookup memo.

        Returns an all-zero snapshot when the memo is disabled
        (``fuzzy_cache_size=None``), so callers can report stats
        unconditionally.
        """
        if self._fuzzy_cache is None:
            return {"size": 0, "maxsize": 0, "hits": 0, "misses": 0,
                    "evictions": 0, "hit_rate": 0.0}
        return self._fuzzy_cache.snapshot()

    def has_entity_alias(self, phrase: str) -> bool:
        return normalize_phrase(phrase) in self._entity_postings

    def has_predicate_alias(self, phrase: str) -> bool:
        return normalize_phrase(phrase) in self._predicate_postings

    def entity_alias_count(self) -> int:
        return len(self._entity_postings)

    def predicate_aliases(self) -> List[str]:
        """All normalised predicate alias strings in the index."""
        return list(self._predicate_postings)

    def entity_types(self, concept_id: str) -> Tuple[str, ...]:
        """The indexed KB types of an entity (empty for unknown ids)."""
        return self._entity_types.get(concept_id, ())

    def entity_alias_tokens(self) -> List[str]:
        """Every token appearing in any entity alias (for POS priming)."""
        tokens = set()
        for alias in self._entity_postings:
            tokens.update(alias.split(" "))
        return sorted(tokens)

    def predicate_alias_count(self) -> int:
        return len(self._predicate_postings)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _rank(
        ids: Iterable[str], popularity: Dict[str, int], kind: str
    ) -> List[CandidateHit]:
        ids = list(ids)
        if not ids:
            return []
        weights = [max(popularity.get(cid, 1), 1) for cid in ids]
        total = float(sum(weights))
        hits = [
            CandidateHit(cid, weight / total, kind)
            for cid, weight in zip(ids, weights)
        ]
        hits.sort(key=lambda h: (-h.prior, h.concept_id))
        return hits
