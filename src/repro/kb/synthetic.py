"""Deterministic synthetic-world generator.

The paper evaluates against the 2021-02-08 Wikidata dump, which is not
available offline.  This module builds a miniature world with the exact
properties the TENET algorithms exercise:

* **ambiguous aliases** — the same surface form maps to several entities
  across topical domains with skewed popularity priors (the "Michael
  Jordan" effect), and the same relational surface form maps to several
  predicates ("studies" → *educated at* vs. *field of work*);
* **domain coherence** — facts connect concepts mostly within a domain, so
  trained embeddings make same-domain concepts close and cross-domain
  concepts far, which is what the coherence graph measures;
* **overlapping mentions** — multi-token titles built around the
  linguistic features of Sec. 5.1 whose sub-spans are themselves aliases
  of *other* entities (the "The Storm on the Sea of Galilee" effect);
* **acronym collisions** — organisations indexed under acronyms shared
  across domains.

Everything is driven by a single seed; two runs with the same config
produce byte-identical KBs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kb import namepools
from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase
from repro.kb.types import TypeTaxonomy, build_default_taxonomy


@dataclass(frozen=True)
class SyntheticKBConfig:
    """Knobs of the synthetic world.

    The defaults produce a KB of a few hundred concepts — large enough for
    realistic ambiguity and sparsity, small enough that the full benchmark
    suite runs on a laptop.
    """

    domains: Tuple[str, ...] = namepools.DOMAINS
    people_per_domain: int = 24
    organizations_per_domain: int = 7
    works_per_domain: int = 4
    awards_per_domain: int = 2
    ambiguous_person_pairs: int = 24
    extra_facts_per_domain: int = 12
    seed: int = 7


# --------------------------------------------------------------------------
# Predicate inventory: (key, label, aliases, popularity, literal_object)
#
# Several aliases are deliberately shared between predicates to reproduce
# the paper's relation ambiguity examples: "studies" (educated-at vs.
# field-of-work), "joined" (member-of vs. employer), "live in" (residence
# vs. population — the paper's Sec. 6.2 error analysis example).
# --------------------------------------------------------------------------
_PREDICATE_SPECS: Tuple[Tuple[str, str, Tuple[str, ...], int, bool], ...] = (
    ("field", "field of work",
     ("studies", "works on", "specializes in", "researches"), 60, False),
    ("educated", "educated at",
     ("studies", "studied at", "graduated from", "attended"), 80, False),
    ("member", "member of",
     ("joined", "belongs to", "is a member of"), 70, False),
    ("award", "award received",
     ("was awarded", "received", "won"), 65, False),
    ("born", "place of birth",
     ("was born in", "comes from"), 90, False),
    ("residence", "residence",
     ("lives in", "live in", "resides in"), 85, False),
    ("population", "population",
     ("live in", "has a population of"), 25, True),
    ("visited", "significant event visit",
     ("visited", "traveled to", "toured", "attended"), 30, False),
    ("directed", "director",
     ("directed", "was directed by", "created"), 55, False),
    ("wrote", "author",
     ("wrote", "authored", "created"), 55, False),
    ("painted", "creator",
     ("painted", "created"), 45, False),
    ("employer", "employer",
     ("works for", "joined", "is employed by"), 50, False),
    ("twin_city", "twinned administrative body",
     ("is the sister city of", "is twinned with"), 20, False),
    ("capital", "capital of",
     ("is the capital of",), 35, False),
    ("located", "located in",
     ("is located in", "lies in", "sits in"), 75, False),
    ("plays_for", "member of sports team",
     ("plays for", "signed with", "joined", "won"), 60, False),
    ("coach", "head coach",
     ("coaches", "is coached by", "leads"), 30, False),
    ("performed", "performer",
     ("performed", "played in", "appeared in"), 40, False),
    ("composed", "composer",
     ("composed", "scored", "wrote"), 35, False),
    ("published", "publisher",
     ("published", "was published by", "released"), 30, False),
    ("ceo", "chief executive officer",
     ("leads", "runs", "heads"), 45, False),
    ("founded", "founded by",
     ("founded", "established", "created"), 50, False),
    ("spouse", "spouse",
     ("married", "is married to"), 55, False),
)

_ORG_TYPE_BY_DOMAIN = {
    "computer_science": "university",
    "basketball": "team",
    "cinema": "company",
    "geography": "organization",
    "politics": "organization",
    "music": "organization",
    "literature": "university",
    "business": "company",
}

_WORK_TYPE_BY_DOMAIN = {
    "cinema": "film",
    "literature": "book",
    "music": "painting",  # stands in for "album"-like works
}


@dataclass
class SyntheticWorld:
    """The generated KB plus the bookkeeping the dataset generator needs."""

    kb: KnowledgeBase
    taxonomy: TypeTaxonomy
    config: SyntheticKBConfig
    domain_entities: Dict[str, List[str]] = field(default_factory=dict)
    predicate_ids: Dict[str, str] = field(default_factory=dict)  # key -> P-id
    cities: List[str] = field(default_factory=list)
    countries: List[str] = field(default_factory=list)

    def entities_in_domain(self, domain: str) -> List[str]:
        return list(self.domain_entities.get(domain, ()))

    def entities_of_type(self, domain: str, type_name: str) -> List[str]:
        return [
            eid
            for eid in self.domain_entities.get(domain, ())
            if type_name in self.kb.get_entity(eid).types
        ]

    def predicate(self, key: str) -> str:
        """Predicate id for a spec key such as ``"field"``."""
        return self.predicate_ids[key]

    def domain_facts(self, domain: str) -> List[Triple]:
        """Facts whose subject belongs to *domain*."""
        members = set(self.domain_entities.get(domain, ()))
        return [t for t in self.kb.triples() if t.subject in members]


class _WorldBuilder:
    """Stateful builder; all randomness flows through one seeded RNG."""

    def __init__(self, config: SyntheticKBConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.kb = KnowledgeBase()
        self.taxonomy = build_default_taxonomy()
        self.world = SyntheticWorld(self.kb, self.taxonomy, config)
        self._next_q = 1
        self._next_p = 1
        self._used_person_names: set = set()
        self._used_titles: set = set()

    # -- id allocation --------------------------------------------------
    def _new_entity_id(self) -> str:
        eid = f"Q{self._next_q}"
        self._next_q += 1
        return eid

    def _new_predicate_id(self) -> str:
        pid = f"P{self._next_p}"
        self._next_p += 1
        return pid

    def _add_entity(
        self,
        label: str,
        types: Tuple[str, ...],
        domain: str,
        aliases: Tuple[str, ...] = (),
        popularity: Optional[int] = None,
        description: str = "",
    ) -> str:
        eid = self._new_entity_id()
        if popularity is None:
            popularity = self.rng.randint(5, 120)
        record = EntityRecord(
            entity_id=eid,
            label=label,
            aliases=aliases,
            types=types,
            popularity=popularity,
            description=description or f"{types[0]} in {domain}",
            domain=domain,
        )
        self.kb.add_entity(record)
        self.world.domain_entities.setdefault(domain, []).append(eid)
        return eid

    # -- predicates -----------------------------------------------------
    def build_predicates(self) -> None:
        for key, label, aliases, popularity, _literal in _PREDICATE_SPECS:
            pid = self._new_predicate_id()
            self.kb.add_predicate(
                PredicateRecord(
                    predicate_id=pid,
                    label=label,
                    aliases=aliases,
                    popularity=popularity,
                    description=f"predicate: {label}",
                )
            )
            self.world.predicate_ids[key] = pid

    # -- geography ------------------------------------------------------
    def build_geography(self) -> None:
        for name in namepools.COUNTRIES:
            eid = self._add_entity(
                name, ("country",), "geography", popularity=self.rng.randint(40, 150)
            )
            self.world.countries.append(eid)
        for name in namepools.CITIES:
            eid = self._add_entity(
                name, ("city",), "geography", popularity=self.rng.randint(10, 140)
            )
            self.world.cities.append(eid)
        # Title tails double as small locations so sub-spans of multi-token
        # titles resolve to competing entities ("Galilee" the place vs.
        # "The Storm on the Sea of Galilee" the painting).
        for name in namepools.TITLE_TAILS:
            eid = self._add_entity(
                name, ("location",), "geography", popularity=self.rng.randint(5, 40)
            )
            self.world.cities.append(eid)
        located = self.world.predicate("located")
        twin = self.world.predicate("twin_city")
        for city in self.world.cities:
            country = self.rng.choice(self.world.countries)
            self.kb.add_fact(Triple(city, located, country))
        for _ in range(len(self.world.cities) // 3):
            a, b = self.rng.sample(self.world.cities, 2)
            self.kb.add_fact(Triple(a, twin, b))

    # -- per-domain content ----------------------------------------------
    def build_domain(self, domain: str) -> None:
        cfg = self.config
        rng = self.rng

        topics = [
            self._add_entity(
                phrase,
                ("field",),
                domain,
                aliases=_topic_aliases(phrase),
                popularity=rng.randint(20, 100),
            )
            for phrase in namepools.DOMAIN_TOPICS[domain]
        ]

        org_type = _ORG_TYPE_BY_DOMAIN[domain]
        orgs = []
        for _ in range(cfg.organizations_per_domain):
            label = None
            for _attempt in range(60):
                head = rng.choice(namepools.ORG_HEADS)
                body = rng.choice(namepools.ORG_BODIES)
                suffix = rng.choice(namepools.ORG_SUFFIXES[org_type])
                candidate = f"{head} {body} {suffix}"
                if candidate not in self._used_titles:
                    label = candidate
                    self._used_titles.add(candidate)
                    break
            if label is None:
                continue
            # Acronyms may still collide across domains — that ambiguity
            # is deliberate ("AAAS"-style); only full labels are unique.
            acronym = "".join(w[0] for w in label.split())
            orgs.append(
                self._add_entity(
                    label,
                    (org_type,),
                    domain,
                    aliases=(acronym,),
                    popularity=rng.randint(15, 110),
                )
            )

        awards = []
        for _ in range(cfg.awards_per_domain):
            label = None
            for _attempt in range(40):
                pattern = rng.choice(namepools.AWARD_PATTERNS)
                org_label = self.kb.get_entity(rng.choice(orgs)).label
                org_acronym = "".join(w[0] for w in org_label.split())
                candidate = pattern.format(org=org_acronym)
                if candidate not in self._used_titles:
                    label = candidate
                    self._used_titles.add(candidate)
                    break
            if label is None:
                continue
            awards.append(
                self._add_entity(
                    label, ("award",), domain, popularity=rng.randint(10, 60)
                )
            )

        works = []
        work_type = _WORK_TYPE_BY_DOMAIN.get(domain)
        if work_type is not None:
            for _ in range(cfg.works_per_domain):
                label = None
                for _attempt in range(50):
                    noun = rng.choice(namepools.TITLE_NOUNS)
                    connector = rng.choice(namepools.TITLE_CONNECTORS)
                    tail = rng.choice(namepools.TITLE_TAILS)
                    candidate = f"The {noun} {connector} {tail}"
                    if candidate not in self._used_titles:
                        label = candidate
                        self._used_titles.add(candidate)
                        break
                if label is None:
                    continue
                works.append(
                    self._add_entity(
                        label, (work_type,), domain, popularity=rng.randint(10, 90)
                    )
                )
            # A handful of short-title works so that sub-spans like
            # "The Storm" have their own (wrong) entity to link to.
            for _ in range(2):
                noun = rng.choice(namepools.TITLE_NOUNS)
                label = f"The {noun}"
                works.append(
                    self._add_entity(
                        label, (work_type,), domain, popularity=rng.randint(30, 120)
                    )
                )

        people = []
        for _ in range(cfg.people_per_domain):
            name = self._fresh_person_name()
            last = name.split()[-1]
            people.append(
                self._add_entity(
                    name,
                    ("person",),
                    domain,
                    aliases=(last,),
                    popularity=rng.randint(5, 100),
                    description=f"{domain} figure",
                )
            )

        self._add_domain_facts(domain, people, topics, orgs, awards, works)

    def _fresh_person_name(self) -> str:
        for _ in range(200):
            name = (
                f"{self.rng.choice(namepools.FIRST_NAMES)} "
                f"{self.rng.choice(namepools.LAST_NAMES)}"
            )
            if name not in self._used_person_names:
                self._used_person_names.add(name)
                return name
        raise RuntimeError("person name pool exhausted")

    def _add_domain_facts(
        self,
        domain: str,
        people: List[str],
        topics: List[str],
        orgs: List[str],
        awards: List[str],
        works: List[str],
    ) -> None:
        rng = self.rng
        world = self.world
        kb = self.kb
        for person in people:
            kb.add_fact(Triple(person, world.predicate("field"), rng.choice(topics)))
            kb.add_fact(Triple(person, world.predicate("member"), rng.choice(orgs)))
            if rng.random() < 0.6:
                kb.add_fact(
                    Triple(person, world.predicate("award"), rng.choice(awards))
                )
            kb.add_fact(
                Triple(person, world.predicate("born"), rng.choice(world.cities))
            )
            if rng.random() < 0.5:
                kb.add_fact(
                    Triple(
                        person, world.predicate("residence"), rng.choice(world.cities)
                    )
                )
            if rng.random() < 0.3:
                kb.add_fact(
                    Triple(
                        person, world.predicate("visited"), rng.choice(world.cities)
                    )
                )
            if domain == "basketball":
                kb.add_fact(
                    Triple(person, world.predicate("plays_for"), rng.choice(orgs))
                )
            if domain in ("business", "cinema"):
                kb.add_fact(
                    Triple(person, world.predicate("employer"), rng.choice(orgs))
                )
            if domain in ("computer_science", "literature"):
                kb.add_fact(
                    Triple(person, world.predicate("educated"), rng.choice(orgs))
                )
        creator_key = {
            "cinema": "directed",
            "literature": "wrote",
            "music": "composed",
        }.get(domain)
        if creator_key is not None:
            for work in works:
                kb.add_fact(
                    Triple(work, world.predicate(creator_key), rng.choice(people))
                )
        for org in orgs:
            kb.add_fact(
                Triple(org, world.predicate("located"), rng.choice(world.cities))
            )
        for _ in range(self.config.extra_facts_per_domain):
            a, b = rng.sample(people, 2)
            if rng.random() < 0.3:
                kb.add_fact(Triple(a, world.predicate("spouse"), b))
            else:
                kb.add_fact(Triple(a, world.predicate("member"), rng.choice(orgs)))

    # -- cross-domain ambiguity ------------------------------------------
    def inject_ambiguity(self) -> None:
        """Force shared person names across domains with skewed priors.

        For each forced pair, the dominant sense keeps a high popularity
        and the minority sense a low one, so prior-only linking picks the
        dominant sense — exactly the trap coherence must escape.
        """
        rng = self.rng
        domains = list(self.config.domains)
        pairs_made = 0
        attempts = 0
        # Each entity participates in at most one pair: a later donor bump
        # must never undo an earlier receiver's popularity reduction.
        used: set = set()
        while pairs_made < self.config.ambiguous_person_pairs and attempts < 400:
            attempts += 1
            dom_a, dom_b = rng.sample(domains, 2)
            people_a = self.world.entities_of_type(dom_a, "person")
            people_b = self.world.entities_of_type(dom_b, "person")
            if not people_a or not people_b:
                continue
            donor = self.kb.get_entity(rng.choice(people_a))
            receiver_id = rng.choice(people_b)
            receiver = self.kb.get_entity(receiver_id)
            if donor.entity_id in used or receiver_id in used:
                continue
            if donor.label in receiver.aliases:
                continue
            used.add(donor.entity_id)
            used.add(receiver_id)
            if donor.popularity < 40:
                # Keep the dominant sense clearly dominant: the prior gap
                # is what separates prior-following from coherence-forcing
                # systems on isolated mentions.
                donor = EntityRecord(
                    entity_id=donor.entity_id,
                    label=donor.label,
                    aliases=donor.aliases,
                    types=donor.types,
                    popularity=rng.randint(60, 120),
                    description=donor.description,
                    domain=donor.domain,
                )
                self.kb.replace_entity(donor)
            updated = EntityRecord(
                entity_id=receiver.entity_id,
                label=receiver.label,
                aliases=receiver.aliases + (donor.label,),
                types=receiver.types,
                popularity=min(receiver.popularity, rng.randint(3, 12)),
                description=receiver.description,
                domain=receiver.domain,
            )
            self.kb.replace_entity(updated)
            pairs_made += 1

    def build(self) -> SyntheticWorld:
        self.build_predicates()
        self.build_geography()
        for domain in self.config.domains:
            self.build_domain(domain)
        self.inject_ambiguity()
        return self.world


def _topic_aliases(phrase: str) -> Tuple[str, ...]:
    """Acronym alias for multi-word topics ("AI", "ML", "NLP", ...)."""
    words = phrase.split()
    if len(words) >= 2:
        return ("".join(w[0].upper() for w in words),)
    return ()


def build_synthetic_world(
    config: Optional[SyntheticKBConfig] = None,
) -> SyntheticWorld:
    """Build the full synthetic world; deterministic in ``config.seed``."""
    return _WorldBuilder(config or SyntheticKBConfig()).build()


# --------------------------------------------------------------------------
# serialisation
#
# The KB itself round-trips through repro.kb.dump; what would otherwise be
# rebuild-only is the *bookkeeping* the dataset generator needs
# (domain membership, predicate spec keys, city/country pools) plus the
# config that produced the world.  Serialising it lets a snapshot
# reconstruct a full SyntheticWorld around a reloaded KB without
# re-running the seeded builder.
# --------------------------------------------------------------------------

WORLD_FORMAT_VERSION = 1


def world_to_json(world: SyntheticWorld) -> Dict[str, object]:
    """Serialise the world's bookkeeping (KB excluded — see module note).

    ``domain_entities`` and ``predicate_ids`` are emitted as ordered
    ``[key, value]`` pair lists, not JSON objects: the dataset generator
    iterates these dicts, so their *insertion order* is part of the
    world's identity and must survive serialisers that sort object keys
    (which the snapshot store uses for canonical bytes).
    """
    config = world.config
    return {
        "format_version": WORLD_FORMAT_VERSION,
        "config": {
            "domains": list(config.domains),
            "people_per_domain": config.people_per_domain,
            "organizations_per_domain": config.organizations_per_domain,
            "works_per_domain": config.works_per_domain,
            "awards_per_domain": config.awards_per_domain,
            "ambiguous_person_pairs": config.ambiguous_person_pairs,
            "extra_facts_per_domain": config.extra_facts_per_domain,
            "seed": config.seed,
        },
        "domain_entities": [
            [domain, list(ids)] for domain, ids in world.domain_entities.items()
        ],
        "predicate_ids": [
            [key, pid] for key, pid in world.predicate_ids.items()
        ],
        "cities": list(world.cities),
        "countries": list(world.countries),
    }


def world_from_json(
    payload: Dict[str, object], kb: KnowledgeBase
) -> SyntheticWorld:
    """Rebuild a :class:`SyntheticWorld` from :func:`world_to_json` output.

    *kb* is the separately-persisted knowledge base the bookkeeping
    refers to (see :mod:`repro.kb.dump`); ids mentioned in the payload
    must exist in it.
    """
    version = payload.get("format_version")
    if version != WORLD_FORMAT_VERSION:
        raise ValueError(f"unsupported world format version {version!r}")
    raw_config = dict(payload["config"])
    raw_config["domains"] = tuple(raw_config["domains"])
    config = SyntheticKBConfig(**raw_config)
    world = SyntheticWorld(kb, build_default_taxonomy(), config)
    world.domain_entities = {
        domain: list(ids) for domain, ids in payload["domain_entities"]
    }
    world.predicate_ids = {key: pid for key, pid in payload["predicate_ids"]}
    world.cities = list(payload["cities"])
    world.countries = list(payload["countries"])
    for domain, ids in world.domain_entities.items():
        for eid in ids:
            if not kb.has_entity(eid):
                raise ValueError(
                    f"world bookkeeping references unknown entity {eid!r} "
                    f"in domain {domain!r}"
                )
    for key, pid in world.predicate_ids.items():
        if not kb.has_predicate(pid):
            raise ValueError(
                f"world bookkeeping references unknown predicate {pid!r} "
                f"for key {key!r}"
            )
    return world
