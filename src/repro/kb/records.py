"""Immutable KB records: entities, predicates, facts.

Mirrors the Wikidata data model the paper targets (Definition 1): a KB is
a collection of (subject, predicate, object) triples, subjects are
entities, predicates are properties, objects are entities or literals.
Entity and predicate identifiers follow Wikidata conventions ("Q..." and
"P...") purely for readability; nothing depends on the format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class EntityRecord:
    """An entity in the KB (a Wikidata "item").

    Attributes
    ----------
    entity_id:
        Stable identifier, e.g. ``"Q17"``.
    label:
        Preferred human-readable name.
    aliases:
        All surface forms (including the label) under which the entity can
        be mentioned; the alias index is built from these.
    types:
        Semantic types from the taxonomy (e.g. ``"person"``); used for the
        candidate-generation type filter (Sec. 3, Step 1).
    popularity:
        A raw occurrence count standing in for Wikipedia anchor statistics;
        candidate priors P(e|n) are derived from it.
    description:
        Free-text gloss, as in Wikidata descriptions.
    domain:
        Topical domain in the synthetic world (drives embedding coherence);
        ``None`` for KBs loaded from external dumps.
    """

    entity_id: str
    label: str
    aliases: Tuple[str, ...] = ()
    types: Tuple[str, ...] = ()
    popularity: int = 1
    description: str = ""
    domain: Optional[str] = None

    def __post_init__(self) -> None:
        if self.popularity < 0:
            raise ValueError(f"popularity must be >= 0, got {self.popularity}")
        if self.label and self.label not in self.aliases:
            object.__setattr__(self, "aliases", (self.label,) + tuple(self.aliases))

    @property
    def all_surface_forms(self) -> Tuple[str, ...]:
        return self.aliases


@dataclass(frozen=True)
class PredicateRecord:
    """A predicate in the KB (a Wikidata "property").

    ``aliases`` include relational surface forms ("studies", "field of
    study", ...) used by the relation-linking candidate lookup.
    """

    predicate_id: str
    label: str
    aliases: Tuple[str, ...] = ()
    popularity: int = 1
    description: str = ""
    domain: Optional[str] = None
    subject_types: Tuple[str, ...] = ()
    object_types: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.popularity < 0:
            raise ValueError(f"popularity must be >= 0, got {self.popularity}")
        if self.label and self.label not in self.aliases:
            object.__setattr__(self, "aliases", (self.label,) + tuple(self.aliases))


@dataclass(frozen=True)
class Triple:
    """A fact (subject, predicate, object).

    ``object_is_literal`` distinguishes literal objects (dates, numbers,
    strings) from entity objects, per Definition 1.
    """

    subject: str
    predicate: str
    obj: str
    object_is_literal: bool = False

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.subject, self.predicate, self.obj)
