"""In-memory triple store with SPO/POS/OSP indexes.

This is the substrate standing in for the Wikidata dump: it stores entity
and predicate records plus facts, and exposes the adjacency queries the
embedding trainer and the baselines need.  All query paths are index
lookups (dict/set), so graph construction stays near O(1) per edge as the
paper's efficiency discussion assumes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.kb.records import EntityRecord, PredicateRecord, Triple


class KnowledgeBase:
    """A mutable in-memory KB of entities, predicates and facts."""

    def __init__(self) -> None:
        self._entities: Dict[str, EntityRecord] = {}
        self._predicates: Dict[str, PredicateRecord] = {}
        self._triples: List[Triple] = []
        self._triple_set: Set[Tuple[str, str, str]] = set()
        # indexes
        self._spo: Dict[str, Dict[str, Set[str]]] = {}
        self._pos: Dict[str, Dict[str, Set[str]]] = {}
        self._osp: Dict[str, Dict[str, Set[str]]] = {}

    # ------------------------------------------------------------------
    # record management
    # ------------------------------------------------------------------
    def add_entity(self, entity: EntityRecord) -> None:
        if entity.entity_id in self._entities:
            raise ValueError(f"duplicate entity id {entity.entity_id!r}")
        self._entities[entity.entity_id] = entity

    def add_predicate(self, predicate: PredicateRecord) -> None:
        if predicate.predicate_id in self._predicates:
            raise ValueError(f"duplicate predicate id {predicate.predicate_id!r}")
        self._predicates[predicate.predicate_id] = predicate

    def replace_entity(self, entity: EntityRecord) -> None:
        """Overwrite the record for an existing entity id.

        Facts referencing the id are untouched; used for post-hoc record
        edits such as alias injection in the synthetic world.
        """
        if entity.entity_id not in self._entities:
            raise KeyError(f"unknown entity id {entity.entity_id!r}")
        self._entities[entity.entity_id] = entity

    def get_entity(self, entity_id: str) -> EntityRecord:
        return self._entities[entity_id]

    def get_predicate(self, predicate_id: str) -> PredicateRecord:
        return self._predicates[predicate_id]

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def has_predicate(self, predicate_id: str) -> bool:
        return predicate_id in self._predicates

    def entities(self) -> Iterator[EntityRecord]:
        return iter(self._entities.values())

    def predicates(self) -> Iterator[PredicateRecord]:
        return iter(self._predicates.values())

    def entity_ids(self) -> List[str]:
        return list(self._entities)

    def predicate_ids(self) -> List[str]:
        return list(self._predicates)

    @property
    def entity_count(self) -> int:
        return len(self._entities)

    @property
    def predicate_count(self) -> int:
        return len(self._predicates)

    @property
    def triple_count(self) -> int:
        return len(self._triples)

    # ------------------------------------------------------------------
    # fact management
    # ------------------------------------------------------------------
    def add_fact(self, triple: Triple) -> bool:
        """Insert *triple*; returns False if it was already present.

        Referential integrity is enforced: subject and predicate must be
        registered, and entity objects must be registered entities.
        """
        if triple.subject not in self._entities:
            raise KeyError(f"unknown subject entity {triple.subject!r}")
        if triple.predicate not in self._predicates:
            raise KeyError(f"unknown predicate {triple.predicate!r}")
        if not triple.object_is_literal and triple.obj not in self._entities:
            raise KeyError(f"unknown object entity {triple.obj!r}")
        key = triple.as_tuple()
        if key in self._triple_set:
            return False
        self._triple_set.add(key)
        self._triples.append(triple)
        s, p, o = key
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        return True

    def triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def has_fact(self, subject: str, predicate: str, obj: str) -> bool:
        return (subject, predicate, obj) in self._triple_set

    # ------------------------------------------------------------------
    # index queries
    # ------------------------------------------------------------------
    def objects_of(self, subject: str, predicate: Optional[str] = None) -> Set[str]:
        """Objects o with (subject, predicate, o); all predicates if None."""
        by_pred = self._spo.get(subject, {})
        if predicate is not None:
            return set(by_pred.get(predicate, set()))
        result: Set[str] = set()
        for objs in by_pred.values():
            result |= objs
        return result

    def subjects_of(self, obj: str, predicate: Optional[str] = None) -> Set[str]:
        """Subjects s with (s, predicate, obj); all predicates if None."""
        if predicate is not None:
            return set(self._pos.get(predicate, {}).get(obj, set()))
        result: Set[str] = set()
        for s, preds in self._osp.get(obj, {}).items():
            if preds:
                result.add(s)
        return result

    def predicates_between(self, subject: str, obj: str) -> Set[str]:
        return set(self._osp.get(obj, {}).get(subject, set()))

    def facts_with_predicate(self, predicate: str) -> List[Triple]:
        return [t for t in self._triples if t.predicate == predicate]

    def facts_about(self, entity_id: str) -> List[Triple]:
        """All facts where *entity_id* is subject or (entity) object."""
        return [
            t
            for t in self._triples
            if t.subject == entity_id
            or (not t.object_is_literal and t.obj == entity_id)
        ]

    def entity_neighbours(self, entity_id: str) -> Set[str]:
        """Entity ids adjacent to *entity_id* through any fact."""
        neighbours: Set[str] = set()
        for preds in self._spo.get(entity_id, {}).values():
            for obj in preds:
                if obj in self._entities:
                    neighbours.add(obj)
        for subject in self._osp.get(entity_id, {}):
            neighbours.add(subject)
        neighbours.discard(entity_id)
        return neighbours

    def entity_degree(self, entity_id: str) -> int:
        return len(self.entity_neighbours(entity_id))

    def predicates_used_with(self, entity_id: str) -> Set[str]:
        """Predicate ids appearing in any fact incident to *entity_id*."""
        predicates: Set[str] = set(self._spo.get(entity_id, {}))
        for preds in self._osp.get(entity_id, {}).values():
            predicates |= preds
        return predicates

    def query(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[str] = None,
    ) -> List[Triple]:
        """Triple-pattern matching: any combination of fixed positions.

        ``kb.query(predicate="P1")`` returns all P1 facts;
        ``kb.query(subject="Q1", obj="Q2")`` all facts between two
        entities; ``kb.query()`` everything.  Uses the SPO/POS/OSP
        indexes, so fully- and doubly-bound patterns are O(1)-ish.
        """
        if subject is not None and predicate is not None and obj is not None:
            return (
                [Triple(subject, predicate, obj, obj not in self._entities)]
                if (subject, predicate, obj) in self._triple_set
                else []
            )
        if subject is not None and predicate is not None:
            objs = self._spo.get(subject, {}).get(predicate, set())
            return [
                Triple(subject, predicate, o, o not in self._entities)
                for o in sorted(objs)
            ]
        if predicate is not None and obj is not None:
            subjects = self._pos.get(predicate, {}).get(obj, set())
            return [
                Triple(s, predicate, obj, obj not in self._entities)
                for s in sorted(subjects)
            ]
        if subject is not None and obj is not None:
            predicates = self._osp.get(obj, {}).get(subject, set())
            return [
                Triple(subject, p, obj, obj not in self._entities)
                for p in sorted(predicates)
            ]
        return [
            t
            for t in self._triples
            if (subject is None or t.subject == subject)
            and (predicate is None or t.predicate == predicate)
            and (obj is None or t.obj == obj)
        ]

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    def concept_ids(self) -> List[str]:
        """All entity and predicate ids (the paper's concept universe)."""
        return list(self._entities) + list(self._predicates)

    def total_popularity(self) -> int:
        return sum(e.popularity for e in self._entities.values()) + sum(
            p.popularity for p in self._predicates.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeBase(entities={self.entity_count}, "
            f"predicates={self.predicate_count}, triples={self.triple_count})"
        )
