"""Knowledge-base substrate.

The paper links against the 2021-02-08 Wikidata dump through a Solr alias
index and PyTorch-BigGraph embeddings.  This package provides the offline
equivalent: an in-memory triple store with entity/predicate records
(:mod:`repro.kb.records`, :mod:`repro.kb.store`), a case-insensitive alias
index (:mod:`repro.kb.alias_index`), a small type taxonomy
(:mod:`repro.kb.types`), JSON dump round-tripping (:mod:`repro.kb.dump`)
and a deterministic synthetic world generator (:mod:`repro.kb.synthetic`).
"""

from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase
from repro.kb.alias_index import AliasIndex, CandidateHit
from repro.kb.types import TypeTaxonomy, DEFAULT_TAXONOMY
from repro.kb.synthetic import SyntheticKBConfig, SyntheticWorld, build_synthetic_world
from repro.kb.dump import kb_to_json_dump, kb_from_json_dump, save_dump, load_dump

__all__ = [
    "EntityRecord",
    "PredicateRecord",
    "Triple",
    "KnowledgeBase",
    "AliasIndex",
    "CandidateHit",
    "TypeTaxonomy",
    "DEFAULT_TAXONOMY",
    "SyntheticKBConfig",
    "SyntheticWorld",
    "build_synthetic_world",
    "kb_to_json_dump",
    "kb_from_json_dump",
    "save_dump",
    "load_dump",
]
