"""Curated name pools for the synthetic world.

The synthetic KB needs surface forms with the properties the paper's
evaluation leans on: person names that collide across domains ("Michael
Jordan" the professor vs. the basketball player), multi-token titles built
around linguistic features ("The Storm on the Sea of Galilee", "Jurassic
World: Fallen Kingdom"), organisations with acronym aliases ("AAAS"), and
lower-cased topical phrases ("machine learning").  Keeping the pools in a
data-only module makes the generator logic readable and the world
reproducible.
"""

from __future__ import annotations

FIRST_NAMES = (
    "Michael", "Sarah", "David", "Elena", "James", "Maria", "Robert",
    "Linda", "John", "Ana", "Thomas", "Julia", "Daniel", "Grace", "Peter",
    "Laura", "Andrew", "Nina", "Richard", "Clara", "Steven", "Alice",
    "Kevin", "Diana", "Brian", "Emma", "George", "Iris", "Frank", "Nora",
    "Adam", "Ruth", "Victor", "Helen", "Oscar", "Jane", "Walter", "Lucy",
    "Hugo", "Vera",
)

LAST_NAMES = (
    "Jordan", "Chen", "Smith", "Garcia", "Miller", "Nakamura", "Brown",
    "Silva", "Wilson", "Kumar", "Taylor", "Rossi", "Anderson", "Novak",
    "Thompson", "Ivanov", "Martin", "Dubois", "Clark", "Haber", "Lewis",
    "Okafor", "Walker", "Lindgren", "Hall", "Costa", "Young", "Weber",
    "King", "Moreau", "Wright", "Tanaka", "Scott", "Berg", "Green",
    "Ferrari", "Baker", "Eriksen", "Adams", "Vargas",
)

CITIES = (
    "Brooklyn", "Riverton", "Ashford", "Meridian", "Lakewood", "Fairview",
    "Oakdale", "Springhill", "Granville", "Westport", "Norfield",
    "Eastbrook", "Hillcrest", "Maplewood", "Clearwater", "Stonebridge",
    "Redmond Falls", "Silverton", "Crestview", "Harborview",
)

COUNTRIES = (
    "Valdoria", "Kestrelia", "Northmark", "Suvania", "Ostrelia",
    "Cormandy", "Tavria", "Lunesia",
)

TITLE_NOUNS = (
    "Storm", "Sea", "Garden", "Mirror", "Tower", "River", "Crown",
    "Shadow", "Harvest", "Lantern", "Voyage", "Forest", "Echo", "Harbor",
    "Winter", "Orchard", "Signal", "Meadow", "Compass", "Ember",
)

TITLE_TAILS = (
    "Galilee", "Avalon", "Caldera", "Solstice", "Twilight", "Dawn",
    "Atlantis", "Elysium", "Borealis", "Zenith",
)

# Linguistic-feature connectors used inside multi-token titles; these are
# exactly the feature classes of Sec. 5.1 (coordinating conjunction,
# preposition/subordinating conjunction, punctuation).
TITLE_CONNECTORS = ("on the", "of the", "and the", "under the", "beyond the")

ORG_HEADS = (
    "National", "Royal", "United", "Federal", "Central", "Pacific",
    "Atlantic", "Northern", "Metropolitan", "International",
)

ORG_BODIES = (
    "Science", "Arts", "Commerce", "Research", "Technology", "Heritage",
    "Industry", "Astronomy", "Medicine", "Engineering",
)

ORG_SUFFIXES = {
    "university": ("University", "Institute", "Polytechnic"),
    "company": ("Corporation", "Industries", "Holdings", "Systems"),
    "team": ("Hawks", "Comets", "Raiders", "Wolves", "Pioneers"),
    "organization": ("Association", "Society", "Council", "Foundation"),
}

DOMAIN_TOPICS = {
    "computer_science": (
        "artificial intelligence", "machine learning", "databases",
        "computer vision", "natural language processing", "robotics",
        "distributed systems", "information retrieval", "data mining",
        "knowledge graphs",
    ),
    "basketball": (
        "point guard play", "zone defense", "fast break offense",
        "three point shooting", "rebounding", "pick and roll",
    ),
    "cinema": (
        "film directing", "cinematography", "screenwriting",
        "film editing", "visual effects", "sound design",
    ),
    "geography": (
        "cartography", "urban planning", "climatology", "oceanography",
        "geology", "hydrology",
    ),
    "politics": (
        "foreign policy", "public administration", "electoral reform",
        "fiscal policy", "diplomacy", "constitutional law",
    ),
    "music": (
        "orchestral conducting", "music composition", "jazz improvisation",
        "opera singing", "choral arrangement", "music production",
    ),
    "literature": (
        "poetry", "literary criticism", "historical fiction",
        "translation studies", "essay writing", "drama",
    ),
    "business": (
        "venture capital", "supply chain management", "marketing strategy",
        "corporate finance", "retail analytics", "risk management",
    ),
}

DOMAINS = tuple(DOMAIN_TOPICS)

AWARD_PATTERNS = (
    "Fellow of the {org}",
    "{org} Medal",
    "{org} Prize",
)

# Surface forms for phrases that exist in text but not in the KB; used by
# the document generator to create non-linkable mentions (fresh products,
# brand names, jargon).  None of these is ever indexed.
NON_LINKABLE_PHRASES = (
    "Glowberry Cleanse", "TurboFresh 9000", "the Quantum Pillow",
    "SnackWave", "Lumibrow Serum", "the HyperLoop Diet", "Zestify",
    "CrispAir Pro", "the Nimbus Band", "VeloCharge", "PetalPure",
    "the EchoSphere", "Brightline Tonic", "FrostGuard Max", "the SolarMop",
    "KelpBoost", "the DreamLattice", "PulseMint", "AeroWhisk",
    "the CloudAnchor", "Vitalura", "SteamFox Grill", "the MossLamp",
    "TangleFree Duo", "OptiGrain", "the WinterHalo", "ZipStride",
    "the CoralDesk", "FernWhistle", "NovaCrumb",
)

# Coined relational phrases; past-tense -ed forms so the morphological
# verb guesser still recognises them as verbal (real Open IE extracts
# such phrases too — they are simply unlinkable to any KB predicate).
NON_LINKABLE_VERBS = (
    "zorbified", "glimmerated", "upcrafted", "refluffed",
    "microblended", "crispified", "dazzleboosted", "overwhisked",
)

FILLER_SENTENCES = (
    "The announcement drew wide attention last week.",
    "Observers described the development as remarkable.",
    "Further details are expected in the coming months.",
    "The report circulated quickly among specialists.",
    "Local commentators offered a range of opinions.",
    "The decision had been anticipated for some time.",
    "Analysts continue to monitor the situation closely.",
    "The story was picked up by several outlets.",
)
