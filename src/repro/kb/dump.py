"""JSON dump serialisation for the KB.

The paper indexes the Wikidata JSON dump; this module provides the
equivalent round-trip for our KB so datasets and worlds can be persisted
and reloaded (and so tests can assert the dump format is lossless).  The
layout loosely mirrors the Wikidata dump: one record per concept with
labels/aliases/claims.

The dump is **canonical**: entity and predicate records are emitted in
natural id order ("Q2" before "Q10") and claims in insertion order,
which for the seeded synthetic world is itself deterministic.  Two
identical KBs therefore serialise to byte-identical dumps, and
``kb_to_json_dump(kb_from_json_dump(d)) == d`` — the fixed-point
property the snapshot store's content hashes rely on.  Reloading also
preserves iteration order, so seeded consumers (the dataset generator)
behave identically on a built and a reloaded world.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase

DUMP_FORMAT_VERSION = 1


def _natural_id_key(concept_id: str) -> Tuple[str, int, str]:
    """Sort key putting "Q2" before "Q10" (prefix, numeric tail, raw).

    Ids that do not follow the ``<letters><digits>`` shape fall back to
    plain lexicographic order within their prefix group.
    """
    head = concept_id.rstrip("0123456789")
    tail = concept_id[len(head):]
    return (head, int(tail) if tail else -1, concept_id)


def kb_to_json_dump(kb: KnowledgeBase) -> Dict[str, Any]:
    """Serialise *kb* to a JSON-compatible dictionary (canonical order)."""
    return {
        "format_version": DUMP_FORMAT_VERSION,
        "entities": [
            {
                "id": e.entity_id,
                "label": e.label,
                "aliases": list(e.aliases),
                "types": list(e.types),
                "popularity": e.popularity,
                "description": e.description,
                "domain": e.domain,
            }
            for e in sorted(kb.entities(), key=lambda e: _natural_id_key(e.entity_id))
        ],
        "predicates": [
            {
                "id": p.predicate_id,
                "label": p.label,
                "aliases": list(p.aliases),
                "popularity": p.popularity,
                "description": p.description,
                "domain": p.domain,
            }
            for p in sorted(
                kb.predicates(), key=lambda p: _natural_id_key(p.predicate_id)
            )
        ],
        "claims": [
            {
                "subject": t.subject,
                "predicate": t.predicate,
                "object": t.obj,
                "literal": t.object_is_literal,
            }
            for t in kb.triples()
        ],
    }


def kb_from_json_dump(dump: Dict[str, Any]) -> KnowledgeBase:
    """Rebuild a KB from :func:`kb_to_json_dump` output."""
    version = dump.get("format_version")
    if version != DUMP_FORMAT_VERSION:
        raise ValueError(f"unsupported dump format version {version!r}")
    kb = KnowledgeBase()
    for record in dump["entities"]:
        kb.add_entity(
            EntityRecord(
                entity_id=record["id"],
                label=record["label"],
                aliases=tuple(record["aliases"]),
                types=tuple(record["types"]),
                popularity=record["popularity"],
                description=record.get("description", ""),
                domain=record.get("domain"),
            )
        )
    for record in dump["predicates"]:
        kb.add_predicate(
            PredicateRecord(
                predicate_id=record["id"],
                label=record["label"],
                aliases=tuple(record["aliases"]),
                popularity=record["popularity"],
                description=record.get("description", ""),
                domain=record.get("domain"),
            )
        )
    for claim in dump["claims"]:
        kb.add_fact(
            Triple(
                subject=claim["subject"],
                predicate=claim["predicate"],
                obj=claim["object"],
                object_is_literal=claim["literal"],
            )
        )
    return kb


def save_dump(kb: KnowledgeBase, path: Union[str, Path]) -> None:
    """Write the JSON dump of *kb* to *path*."""
    payload = kb_to_json_dump(kb)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_dump(path: Union[str, Path]) -> KnowledgeBase:
    """Load a KB previously written by :func:`save_dump`."""
    return kb_from_json_dump(json.loads(Path(path).read_text()))
