"""Knowledge-base population on top of joint linking.

The paper motivates joint entity and relation linking as the front end
of KB population (QKBfly, KBPearl).  This package closes that loop: it
turns a document's linking result into candidate facts, materialises
placeholder records for non-linkable (new) concepts, and applies the
facts to a KB while preserving referential integrity.
"""

from repro.population.populator import (
    KBPopulator,
    NewConcept,
    PopulationResult,
)

__all__ = ["KBPopulator", "NewConcept", "PopulationResult"]
