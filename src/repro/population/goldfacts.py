"""Gold-fact reconstruction from annotated documents.

The dataset generator renders one KB fact per fact sentence; the gold
annotations record the subject, relation, and object mentions of that
sentence.  This module reassembles those triples — the reference set
against which KB-population output is scored (the downstream-population
benchmark).

Reconstruction rule: for each linkable relation gold, the subject is the
closest linkable noun gold ending at or before the relation, and the
object the closest linkable noun gold starting at or after it, both
within the same sentence (approximated by requiring adjacency: no other
relation gold in between).
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.datasets.schema import AnnotatedDocument, Dataset
from repro.nlp.spans import SpanKind

Fact = Tuple[str, str, str]


def gold_facts(document: AnnotatedDocument) -> Set[Fact]:
    """The (subject, predicate, object) triples the document asserts."""
    nouns = [
        g
        for g in document.gold
        if g.kind is SpanKind.NOUN and g.concept_id is not None
    ]
    relations = [
        g
        for g in document.gold
        if g.kind is SpanKind.RELATION and g.concept_id is not None
    ]
    facts: Set[Fact] = set()
    for relation in relations:
        subjects = [n for n in nouns if n.char_end <= relation.char_start]
        objects = [n for n in nouns if n.char_start >= relation.char_end]
        if not subjects or not objects:
            continue
        subject = max(subjects, key=lambda n: n.char_end)
        obj = min(objects, key=lambda n: n.char_start)
        # same-sentence requirement: no sentence terminator may separate
        # the relation from its arguments (pronoun-subject facts are
        # skipped — their true subject sits in an earlier sentence)
        if "." in document.text[subject.char_end : relation.char_start]:
            continue
        if "." in document.text[relation.char_end : obj.char_start]:
            continue
        facts.add((subject.concept_id, relation.concept_id, obj.concept_id))
    return facts


def dataset_gold_facts(dataset: Dataset) -> Set[Fact]:
    """Union of gold facts over all documents."""
    facts: Set[Fact] = set()
    for document in dataset:
        facts |= gold_facts(document)
    return facts
