"""Turn linking results into KB facts.

For every linked relational phrase, the populator recovers the subject
and object spans from the extraction, resolves each side to either a
linked entity or a *new concept* placeholder (for phrases TENET reported
as non-linkable), and emits a candidate fact.  Facts already present in
the KB are recognised as confirmations rather than insertions — the
dedup step KB-population systems perform before writing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.linker import LinkingContext, LinkingDiagnostics, TenetLinker
from repro.core.result import Link, LinkingResult
from repro.kb.records import EntityRecord, Triple
from repro.kb.store import KnowledgeBase
from repro.nlp.spans import Span, SpanKind, spans_overlap
from repro.textnorm import normalize_phrase


@dataclass(frozen=True)
class NewConcept:
    """A placeholder for a non-linkable phrase promoted to a new entity."""

    placeholder_id: str
    surface: str

    def as_record(self) -> EntityRecord:
        return EntityRecord(
            entity_id=self.placeholder_id,
            label=self.surface,
            description="new concept discovered during KB population",
        )


@dataclass
class PopulationResult:
    """Facts and new concepts extracted from one document."""

    new_facts: List[Triple] = field(default_factory=list)
    confirmed_facts: List[Triple] = field(default_factory=list)
    new_concepts: List[NewConcept] = field(default_factory=list)
    skipped_relations: int = 0

    @property
    def fact_count(self) -> int:
        return len(self.new_facts) + len(self.confirmed_facts)


class KBPopulator:
    """Extracts candidate facts from documents via a TENET linker."""

    def __init__(
        self,
        context: LinkingContext,
        linker: Optional[TenetLinker] = None,
    ) -> None:
        self.context = context
        self.linker = linker or TenetLinker(context)
        self._placeholder_counter = 0

    # ------------------------------------------------------------------
    def populate(self, text: str) -> PopulationResult:
        """Extract facts from *text* against the context's KB."""
        diagnostics = self.linker.link_detailed(text)
        return self.populate_from_diagnostics(diagnostics)

    def populate_corpus(self, documents) -> PopulationResult:
        """Populate from many documents, merging results.

        New-concept placeholders are shared across documents: the same
        fresh surface form seen twice becomes one new entity, and facts
        are deduplicated corpus-wide (KB-population systems canonicalise
        across the whole batch before writing).
        """
        merged = PopulationResult()
        placeholders: Dict[str, NewConcept] = {}
        seen_facts = set()
        for document in documents:
            text = document.text if hasattr(document, "text") else document
            diagnostics = self.linker.link_detailed(text)
            partial = self._populate(diagnostics, placeholders)
            for concept in partial.new_concepts:
                merged.new_concepts.append(concept)
            for triple in partial.new_facts:
                if triple.as_tuple() not in seen_facts:
                    seen_facts.add(triple.as_tuple())
                    merged.new_facts.append(triple)
            for triple in partial.confirmed_facts:
                if triple.as_tuple() not in seen_facts:
                    seen_facts.add(triple.as_tuple())
                    merged.confirmed_facts.append(triple)
            merged.skipped_relations += partial.skipped_relations
        return merged

    def populate_from_diagnostics(
        self, diagnostics: LinkingDiagnostics
    ) -> PopulationResult:
        return self._populate(diagnostics, {})

    def _populate(
        self,
        diagnostics: LinkingDiagnostics,
        seen_placeholders: Dict[str, NewConcept],
    ) -> PopulationResult:
        result = PopulationResult()
        linking = diagnostics.result
        for relation_link in linking.relation_links:
            relation = diagnostics.extraction.relation_for_span(
                relation_link.span
            )
            if relation is None:
                result.skipped_relations += 1
                continue
            subject = self._resolve_argument(
                relation.subject, linking, seen_placeholders, result
            )
            obj = self._resolve_argument(
                relation.object, linking, seen_placeholders, result
            )
            if subject is None or obj is None:
                result.skipped_relations += 1
                continue
            triple = Triple(subject, relation_link.concept_id, obj)
            if self._fact_exists(triple):
                result.confirmed_facts.append(triple)
            else:
                result.new_facts.append(triple)
        return result

    def apply(
        self, kb: KnowledgeBase, result: PopulationResult
    ) -> int:
        """Write new concepts and facts into *kb*; returns #facts added."""
        for concept in result.new_concepts:
            if not kb.has_entity(concept.placeholder_id):
                kb.add_entity(concept.as_record())
        added = 0
        for triple in result.new_facts:
            if kb.add_fact(triple):
                added += 1
        return added

    def commit(self, result: PopulationResult) -> int:
        """Apply *result* to the populator's own context — closing the
        on-the-fly KB-construction loop.

        New concepts are written into the context's KB, registered in
        the alias index (their surface becomes linkable in subsequent
        documents), and given a neutral zero embedding (cosine 0 to
        everything: no spurious coherence until real facts accumulate).
        """
        import numpy as np

        for concept in result.new_concepts:
            if not self.context.kb.has_entity(concept.placeholder_id):
                record = concept.as_record()
                self.context.kb.add_entity(record)
                self.context.alias_index.add_entity(record)
                if concept.placeholder_id not in self.context.embeddings:
                    self.context.embeddings.add(
                        concept.placeholder_id,
                        np.zeros(self.context.embeddings.dimension),
                    )
        added = 0
        for triple in result.new_facts:
            if self.context.kb.add_fact(triple):
                added += 1
        return added

    # ------------------------------------------------------------------
    def _resolve_argument(
        self,
        span: Span,
        linking: LinkingResult,
        seen: Dict[str, NewConcept],
        result: PopulationResult,
    ) -> Optional[str]:
        """Entity id (or placeholder id) for a relation argument span."""
        link = self._overlapping_entity_link(span, linking)
        if link is not None:
            return link.concept_id
        if self._reported_non_linkable(span, linking):
            key = normalize_phrase(span.text)
            if key not in seen:
                concept = NewConcept(self._next_placeholder(), span.text)
                seen[key] = concept
                result.new_concepts.append(concept)
            return seen[key].placeholder_id
        return None

    @staticmethod
    def _overlapping_entity_link(
        span: Span, linking: LinkingResult
    ) -> Optional[Link]:
        best: Optional[Link] = None
        for link in linking.entity_links:
            if spans_overlap(link.span, span):
                if best is None or link.span.length > best.span.length:
                    best = link
        return best

    @staticmethod
    def _reported_non_linkable(span: Span, linking: LinkingResult) -> bool:
        return any(
            spans_overlap(span, reported)
            for reported in linking.non_linkable
            if reported.kind is SpanKind.NOUN
        )

    def _fact_exists(self, triple: Triple) -> bool:
        kb = self.context.kb
        return kb.has_fact(triple.subject, triple.predicate, triple.obj)

    def _next_placeholder(self) -> str:
        self._placeholder_counter += 1
        return f"NEW{self._placeholder_counter}"
