"""A weighted undirected graph container.

The knowledge coherence graph (Sec. 3 of the paper) and the contracted
graph used by Algorithm 1 are both instances of this structure.  Edges are
stored once per unordered pair; adjacency is kept as nested dictionaries so
edge lookup is O(1), matching the paper's observation that retrieving one
edge weight costs O(1) during tree-cover construction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

Node = Hashable
Edge = Tuple[Node, Node, float]


class WeightedGraph:
    """Undirected graph with float edge weights and O(1) edge lookup."""

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Ensure *node* exists (isolated nodes are permitted)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float) -> None:
        """Insert or overwrite the undirected edge (u, v).

        Self-loops are rejected: the coherence graph never needs them and
        silently accepting one would corrupt MST construction.
        """
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        if weight < 0:
            raise ValueError(f"negative edge weight {weight!r} on ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge (u, v); raises ``KeyError`` if absent."""
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, node: Node) -> None:
        """Delete *node* and all incident edges."""
        for neighbour in list(self._adj[node]):
            del self._adj[neighbour][node]
        del self._adj[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def node_count(self) -> int:
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> Iterator[Node]:
        return iter(self._adj)

    def neighbours(self, node: Node) -> Dict[Node, float]:
        """Mapping neighbour -> weight for *node* (read-only by convention)."""
        return self._adj[node]

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge (u, v); raises ``KeyError`` if absent."""
        return self._adj[u][v]

    def get_weight(self, u: Node, v: Node, default: Optional[float] = None) -> Optional[float]:
        """Weight of edge (u, v), or *default* if the edge is absent."""
        if self.has_edge(u, v):
            return self._adj[u][v]
        return default

    def edges(self) -> List[Edge]:
        """All edges once each as (u, v, weight) triples.

        Each edge is emitted at its first-reached endpoint (adjacency
        is symmetric, so skipping neighbours whose own row was already
        walked deduplicates without building per-edge canonical keys).
        """
        done: set = set()
        result: List[Edge] = []
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v in done:
                    continue
                result.append((u, v, w))
            done.add(u)
        return result

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def max_degree(self) -> int:
        """Largest node degree (0 for an empty or edgeless graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        clone = WeightedGraph()
        for node in self._adj:
            clone.add_node(node)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def pruned(self, max_weight: float) -> "WeightedGraph":
        """A copy with every edge of weight > *max_weight* removed.

        This is Step (a) of Algorithm 1: nodes are preserved (a node whose
        edges are all pruned becomes isolated, which is how isolated
        concepts ultimately surface).
        """
        pruned = WeightedGraph()
        for node in self._adj:
            pruned.add_node(node)
        for u, v, w in self.edges():
            if w <= max_weight:
                pruned.add_edge(u, v, w)
        return pruned

    def subgraph(self, keep: Iterable[Node]) -> "WeightedGraph":
        """Induced subgraph on the node set *keep*."""
        keep_set = set(keep)
        sub = WeightedGraph()
        for node in keep_set:
            if node in self._adj:
                sub.add_node(node)
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, w)
        return sub

    def connected_components(self) -> List[List[Node]]:
        """Connected components as lists of nodes (iterative DFS)."""
        seen: set = set()
        components: List[List[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbour in self._adj[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.connected_components()) == 1
