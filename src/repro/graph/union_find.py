"""Disjoint-set forest (union-find) with path compression and union by rank.

Used by Kruskal's algorithm (:mod:`repro.graph.mst`) to detect whether an
edge would close a cycle, and by the disambiguation algorithm to keep track
of already-merged coherence components.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List


class UnionFind:
    """A disjoint-set forest over arbitrary hashable items.

    Items are added lazily: :meth:`find` and :meth:`union` create
    singleton sets for unseen items.  All operations are effectively
    amortised inverse-Ackermann time.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register *item* as a singleton set if it is not yet tracked."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of items tracked (not the number of sets)."""
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._count

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of *item*'s set.

        Unseen items are added as singletons first.  Path compression is
        applied iteratively so that deep forests never hit the recursion
        limit.
        """
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing *a* and *b*.

        Returns ``True`` if a merge happened, ``False`` if the items were
        already in the same set (i.e. the edge (a, b) would close a cycle).
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether *a* and *b* are currently in the same set."""
        return self.find(a) == self.find(b)

    def sets(self) -> List[List[Hashable]]:
        """Materialise the current partition as a list of member lists."""
        groups: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return list(groups.values())
