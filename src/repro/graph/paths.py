"""Dijkstra shortest paths on :class:`~repro.graph.weighted_graph.WeightedGraph`.

Used in Step (f) of Algorithm 1: a matched subtree is attached to its
mention root through the shortest path in the pruned coherence graph, and
subtree/mention eligibility is decided by that distance being in (0, B].
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.graph.weighted_graph import Node, WeightedGraph


def dijkstra(
    graph: WeightedGraph,
    source: Node,
    max_distance: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Single-source shortest path distances and predecessor map.

    Parameters
    ----------
    graph:
        The weighted graph (non-negative weights, enforced on insertion).
    source:
        Start node; must exist in the graph.
    max_distance:
        If given, exploration stops at this radius — nodes farther away are
        omitted from the result.  Algorithm 1 only ever needs radius B.
    """
    if source not in graph:
        raise KeyError(f"source node {source!r} not in graph")
    distances: Dict[Node, float] = {source: 0.0}
    predecessors: Dict[Node, Node] = {}
    # Heap entries carry a tie-breaking counter so heterogeneous node types
    # never get compared directly.
    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    settled = set()
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbour, weight in graph.neighbours(node).items():
            candidate = dist + weight
            if max_distance is not None and candidate > max_distance:
                continue
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                predecessors[neighbour] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbour))
    return distances, predecessors


def shortest_path(graph: WeightedGraph, source: Node, target: Node) -> List[Node]:
    """The node sequence of a shortest path from *source* to *target*.

    Raises ``ValueError`` when *target* is unreachable.
    """
    distances, predecessors = dijkstra(graph, source)
    if target not in distances:
        raise ValueError(f"no path from {source!r} to {target!r}")
    path = [target]
    while path[-1] != source:
        path.append(predecessors[path[-1]])
    path.reverse()
    return path


def path_weight(graph: WeightedGraph, path: List[Node]) -> float:
    """Total weight of a node-sequence path."""
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))
