"""Hopcroft--Karp maximum bipartite matching.

Step (f) of Algorithm 1 assigns the subtrees produced by tree splitting to
mention roots via a maximum matching on a bipartite eligibility graph; the
paper cites the Hopcroft--Karp algorithm [10].  This implementation is the
standard BFS-layering / DFS-augmentation formulation in O(E * sqrt(V)).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Mapping, Set

_INF = float("inf")


def hopcroft_karp(
    left: Iterable[Hashable],
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> Dict[Hashable, Hashable]:
    """Maximum matching of a bipartite graph.

    Parameters
    ----------
    left:
        The left-side vertex set.
    adjacency:
        For each left vertex, the right vertices it may match with.  Right
        vertices are discovered from the adjacency lists.

    Returns
    -------
    dict
        A maximum matching as a mapping ``left_vertex -> right_vertex``.
        Unmatched left vertices are absent from the mapping.
    """
    left_nodes = list(left)
    adj: Dict[Hashable, list] = {u: list(adjacency.get(u, ())) for u in left_nodes}

    match_left: Dict[Hashable, Hashable] = {}
    match_right: Dict[Hashable, Hashable] = {}
    dist: Dict[Hashable, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left_nodes:
            if u not in match_left:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                partner = match_right.get(v)
                if partner is None:
                    found_free = True
                elif dist[partner] == _INF:
                    dist[partner] = dist[u] + 1
                    queue.append(partner)
        return found_free

    def dfs(u: Hashable) -> bool:
        for v in adj[u]:
            partner = match_right.get(v)
            if partner is None or (dist[partner] == dist[u] + 1 and dfs(partner)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in left_nodes:
            if u not in match_left:
                dfs(u)
    return dict(match_left)


def is_valid_matching(
    matching: Mapping[Hashable, Hashable],
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> bool:
    """Check that *matching* only uses admissible edges and is injective."""
    used_right: Set[Hashable] = set()
    for u, v in matching.items():
        if v in used_right:
            return False
        used_right.add(v)
        if v not in set(adjacency.get(u, ())):
            return False
    return True
