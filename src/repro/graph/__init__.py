"""Graph algorithm substrate for TENET.

This package provides the pure graph machinery the TENET algorithms are
built on: a disjoint-set forest, Kruskal's minimum spanning tree, the
Hopcroft--Karp maximum bipartite matching, Dijkstra shortest paths, a
weighted undirected graph container, and a rooted-tree structure with
post-order traversal (used by the tree-splitting algorithms).
"""

from repro.graph.union_find import UnionFind
from repro.graph.weighted_graph import WeightedGraph
from repro.graph.mst import kruskal_mst, minimum_spanning_forest
from repro.graph.matching import hopcroft_karp
from repro.graph.paths import dijkstra, shortest_path
from repro.graph.tree import RootedTree, TreeEdge

__all__ = [
    "UnionFind",
    "WeightedGraph",
    "kruskal_mst",
    "minimum_spanning_forest",
    "hopcroft_karp",
    "dijkstra",
    "shortest_path",
    "RootedTree",
    "TreeEdge",
]
