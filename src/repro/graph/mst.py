"""Kruskal minimum spanning tree / forest.

The paper explicitly prefers Kruskal's algorithm over Prim's (Sec. 4.2,
"Discussion of Algorithm Design"): edges are processed globally in
non-decreasing weight order so that low-confidence choices are forced to be
consistent with more confident decisions made earlier.  The same Kruskal
edge ordering drives the greedy disambiguation of Algorithm 5.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.graph.union_find import UnionFind
from repro.graph.weighted_graph import Node, WeightedGraph

# How many Kruskal edges are processed between cooperative-cancellation
# checks.  Cheap enough to be invisible, frequent enough that a
# cancelled request releases its worker within milliseconds even on
# dense contracted graphs.
CHECK_EVERY = 256


def sorted_edges(graph: WeightedGraph) -> List[Tuple[Node, Node, float]]:
    """Edges of *graph* in non-decreasing weight order.

    Ties are broken by the repr of the endpoints so the ordering — and
    therefore every downstream algorithm — is deterministic.
    """
    return sorted(graph.edges(), key=lambda e: (e[2], repr(e[0]), repr(e[1])))


def kruskal_mst(graph: WeightedGraph) -> WeightedGraph:
    """Minimum spanning tree of a connected *graph*.

    Raises ``ValueError`` when the graph is disconnected — in Algorithm 1
    this situation corresponds to the "B is too small" failure warning and
    is translated by the caller.
    """
    forest = minimum_spanning_forest(graph)
    if graph.node_count > 0 and forest.edge_count != graph.node_count - 1:
        raise ValueError(
            "graph is disconnected: spanning forest has "
            f"{forest.edge_count} edges for {graph.node_count} nodes"
        )
    return forest


def minimum_spanning_forest(
    graph: WeightedGraph, check: Optional[Callable[[], None]] = None
) -> WeightedGraph:
    """Minimum spanning forest (one tree per connected component).

    *check*, when given, is invoked every :data:`CHECK_EVERY` edges of
    the Kruskal loop; raising from it aborts the solve (the graph layer
    stays agnostic of what a deadline is — callers pass e.g.
    ``lambda: deadline.check("tree_cover")``).
    """
    forest = WeightedGraph()
    for node in graph.nodes():
        forest.add_node(node)
    uf = UnionFind(graph.nodes())
    for index, (u, v, w) in enumerate(sorted_edges(graph)):
        if check is not None and index % CHECK_EVERY == 0:
            check()
        if uf.union(u, v):
            forest.add_edge(u, v, w)
    return forest
