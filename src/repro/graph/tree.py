"""Rooted weighted trees with post-order traversal.

The tree-splitting procedures of the paper (Algorithms 2 and 3) operate on
mention-rooted trees obtained by decomposing the contracted MST.  This
module provides the tree container they manipulate: parent/children
orientation, subtree weights, post-order edge enumeration, and subtree
extraction.  All traversals are iterative so document-scale trees never hit
Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.weighted_graph import Node, WeightedGraph


@dataclass(frozen=True)
class TreeEdge:
    """A directed (parent -> child) edge of a rooted tree."""

    parent: Node
    child: Node
    weight: float


class RootedTree:
    """A weighted tree oriented away from a designated root.

    The structure is mutable only through :meth:`add_edge` and
    :meth:`detach_subtree`; every query keeps O(1)/O(subtree) costs so the
    splitting algorithms stay linear as the paper's complexity analysis
    requires.
    """

    def __init__(self, root: Node) -> None:
        self.root = root
        self._parent: Dict[Node, Node] = {}
        self._children: Dict[Node, List[Node]] = {root: []}
        self._edge_weight: Dict[Node, float] = {}  # keyed by child node

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, parent: Node, child: Node, weight: float) -> None:
        """Attach *child* under *parent*.

        *parent* must already be in the tree; *child* must not be (a node
        has exactly one parent in a tree).
        """
        if parent not in self._children:
            raise KeyError(f"parent node {parent!r} not in tree")
        if child in self._children:
            raise ValueError(f"node {child!r} already in tree")
        self._children[parent].append(child)
        self._children[child] = []
        self._parent[child] = parent
        self._edge_weight[child] = weight

    @classmethod
    def from_graph(cls, graph: WeightedGraph, root: Node) -> "RootedTree":
        """Orient the connected acyclic *graph* away from *root*.

        Only the component containing *root* is used; the caller is
        responsible for *graph* being a tree/forest (e.g. an MST).
        """
        tree = cls(root)
        stack = [root]
        visited = {root}
        while stack:
            node = stack.pop()
            for neighbour, weight in sorted(
                graph.neighbours(node).items(), key=lambda kv: repr(kv[0])
            ):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                tree.add_edge(node, neighbour, weight)
                stack.append(neighbour)
        return tree

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._children

    def __len__(self) -> int:
        return len(self._children)

    @property
    def node_count(self) -> int:
        return len(self._children)

    @property
    def edge_count(self) -> int:
        return len(self._edge_weight)

    def nodes(self) -> Iterator[Node]:
        return iter(self._children)

    def children(self, node: Node) -> List[Node]:
        return list(self._children[node])

    def parent(self, node: Node) -> Optional[Node]:
        """Parent of *node*, or ``None`` for the root."""
        return self._parent.get(node)

    def edge_weight_to(self, child: Node) -> float:
        """Weight of the edge from ``parent(child)`` to *child*."""
        return self._edge_weight[child]

    def edges(self) -> List[TreeEdge]:
        return [
            TreeEdge(self._parent[child], child, weight)
            for child, weight in self._edge_weight.items()
        ]

    def weight(self) -> float:
        """Total edge weight, the paper's ω(T)."""
        return sum(self._edge_weight.values())

    def is_singleton(self) -> bool:
        """True when the tree is only its root (weight 0, no concepts)."""
        return len(self._children) == 1

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def post_order_nodes(self) -> Iterator[Node]:
        """Nodes in post order (children before parents), iteratively."""
        stack: List[Tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            for child in reversed(self._children[node]):
                stack.append((child, False))

    def post_order_edges(self) -> Iterator[TreeEdge]:
        """Edges in post order of their child endpoint.

        This is the enumeration order used by the paper's Algorithms 2-3:
        an edge is reported only after the entire subtree below it has been
        reported.
        """
        for node in self.post_order_nodes():
            if node != self.root:
                yield TreeEdge(self._parent[node], node, self._edge_weight[node])

    def subtree_nodes(self, node: Node) -> List[Node]:
        """All nodes of the subtree rooted at *node* (inclusive)."""
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return result

    def subtree_weight(self, node: Node) -> float:
        """Total weight of edges inside the subtree rooted at *node*."""
        total = 0.0
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            total += self._edge_weight[current]
            stack.extend(self._children[current])
        return total

    def subtree(self, node: Node) -> "RootedTree":
        """A copy of the subtree rooted at *node*."""
        sub = RootedTree(node)
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            sub.add_edge(self._parent[current], current, self._edge_weight[current])
            stack.extend(self._children[current])
        return sub

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def detach_subtree(self, node: Node) -> "RootedTree":
        """Remove and return the subtree rooted at *node*.

        The connecting edge (parent(node), node) is removed from this tree
        and is *not* part of the returned subtree.  Detaching the root is
        an error.
        """
        if node == self.root:
            raise ValueError("cannot detach the root of the tree")
        detached = self.subtree(node)
        parent = self._parent[node]
        self._children[parent].remove(node)
        for member in detached.nodes():
            if member == node:
                self._parent.pop(member, None)
                self._edge_weight.pop(member, None)
            else:
                del self._parent[member]
                del self._edge_weight[member]
            del self._children[member]
        return detached

    def adopt(self, source: "RootedTree") -> None:
        """Replace this tree's structure with *source*'s.

        Both trees must share the same root; used when a tree is rebuilt
        from a merged graph (subtree attachment in Algorithm 1, Step (f)).
        """
        if source.root != self.root:
            raise ValueError(
                f"cannot adopt a tree rooted at {source.root!r} into one "
                f"rooted at {self.root!r}"
            )
        self._parent = dict(source._parent)
        self._children = {k: list(v) for k, v in source._children.items()}
        self._edge_weight = dict(source._edge_weight)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_graph(self) -> WeightedGraph:
        """The undirected view of this tree."""
        graph = WeightedGraph()
        graph.add_node(self.root)
        for edge in self.edges():
            graph.add_edge(edge.parent, edge.child, edge.weight)
        return graph

    def node_set(self) -> Set[Node]:
        return set(self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RootedTree(root={self.root!r}, nodes={self.node_count}, "
            f"weight={self.weight():.3f})"
        )
