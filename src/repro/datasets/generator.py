"""Synthetic document generator.

Renders KB facts into news-register sentences with exact gold character
offsets.  The generator controls every phenomenon the paper's evaluation
measures:

* **ambiguity** — subject mentions may use an alias shared by several
  entities across domains, with the gold entity *not* the most popular
  owner (the "Michael Jordan" trap for prior-only linkers);
* **sparse coherence / isolation** — a controllable number of facts come
  from unrelated domains, so their entities share no coherence with the
  rest of the document;
* **non-linkable phrases** — coined product names and coined relational
  verbs appear in otherwise normal sentences and are annotated with
  ``concept_id=None`` (Table 2's statistics, Fig. 6(c)'s ground truth);
* **overlapping mentions** — facts about multi-token creative-work
  titles ("The Signal on the Elysium") exercise mention groups and
  canopies;
* **co-reference** — follow-up facts about the same person are rendered
  with a pronoun subject.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.schema import AnnotatedDocument, GoldMention
from repro.kb import namepools
from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.synthetic import SyntheticWorld
from repro.nlp.spans import SpanKind
from repro.textnorm import normalize_phrase


@dataclass(frozen=True)
class DocumentSpec:
    """Controls the composition of one generated document."""

    domain: str
    facts: int = 5
    isolated_facts: int = 1
    non_linkable_noun_sentences: int = 1
    non_linkable_relation_sentences: int = 1
    non_linkable_ad_sentences: int = 0
    filler_sentences: int = 2
    ambiguous_alias_prob: float = 0.35
    surname_prob: float = 0.0
    pronoun_prob: float = 0.25
    title_facts: int = 1
    annotate_relations: bool = True
    # Out-of-vocabulary surface forms: the mention is linkable per the
    # gold standard, but its rendered surface is not in the alias index
    # ("Dr Wilson", "is studying").  This models the alias-coverage gaps
    # that cap every real system's recall.
    oov_noun_prob: float = 0.1
    oov_relation_prob: float = 0.12
    object_ambiguous_prob: float = 0.2


_IRREGULAR_ING = {
    "won": "winning", "wrote": "writing", "drew": "drawing",
    "was": "being", "married": "marrying", "comes": "coming",
}


def _ing_form(verb: str) -> str:
    """Best-effort progressive form: studies->studying, lives->living."""
    if verb in _IRREGULAR_ING:
        return _IRREGULAR_ING[verb]
    base = verb
    if base.endswith("ies") and len(base) > 4:
        base = base[:-3] + "y"
    elif base.endswith("ied") and len(base) > 4:
        base = base[:-3] + "y"
    elif base.endswith("es") and len(base) > 3:
        base = base[:-1]
    elif base.endswith("ed") and len(base) > 3:
        base = base[:-2]
    elif base.endswith("s") and not base.endswith("ss"):
        base = base[:-1]
    if base.endswith("e") and len(base) > 2 and not base.endswith("ee"):
        base = base[:-1]
    return base + "ing"


class _DocBuilder:
    """Accumulates text and gold mentions with exact char offsets."""

    def __init__(self) -> None:
        self.text = ""
        self.gold: List[GoldMention] = []

    def add(
        self,
        fragment: str,
        kind: Optional[SpanKind] = None,
        concept_id: Optional[str] = None,
        annotate: bool = False,
    ) -> None:
        start = len(self.text)
        self.text += fragment
        if annotate:
            assert kind is not None
            self.gold.append(
                GoldMention(fragment, start, len(self.text), kind, concept_id)
            )

    def space(self) -> None:
        if self.text and not self.text.endswith((" ", "\n")):
            self.text += " "

    def end_sentence(self) -> None:
        self.text += "."
        self.space()


class DocumentGenerator:
    """Generates :class:`AnnotatedDocument` objects from the world."""

    def __init__(self, world: SyntheticWorld, seed: int = 0) -> None:
        self.world = world
        self.kb = world.kb
        self.rng = random.Random(seed)
        self._trap_cache: Dict[str, List[Tuple[Triple, str]]] = {}
        self._alias_owners = self._build_alias_owners()
        self._predicate_alias_owners = self._build_predicate_alias_owners()
        self._fact_pools = self._build_fact_pools()
        self._title_facts = self._build_title_facts()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, doc_id: str, spec: DocumentSpec) -> AnnotatedDocument:
        builder = _DocBuilder()
        sentences: List[Tuple[int, callable]] = []

        plan: List[callable] = []
        for _ in range(spec.title_facts):
            plan.append(lambda b: self._title_fact_sentence(b, spec))
        for _ in range(spec.facts):
            plan.append(lambda b: self._fact_sentences(b, spec))
        for _ in range(spec.isolated_facts):
            plan.append(lambda b: self._isolated_fact_sentence(b, spec))
        for _ in range(spec.non_linkable_noun_sentences):
            plan.append(lambda b: self._non_linkable_noun_sentence(b, spec))
        for _ in range(spec.non_linkable_relation_sentences):
            plan.append(lambda b: self._non_linkable_relation_sentence(b, spec))
        for _ in range(spec.non_linkable_ad_sentences):
            plan.append(lambda b: self._ad_sentence(b, spec))

        # Interleave filler sentences at random positions to stretch the
        # document to news length without adding gold mentions.
        filler_positions = sorted(
            self.rng.randrange(len(plan) + 1) for _ in range(spec.filler_sentences)
        )
        enriched: List[callable] = []
        filler_iter = iter(filler_positions)
        next_filler = next(filler_iter, None)
        for i, step in enumerate(plan):
            while next_filler is not None and next_filler <= i:
                enriched.append(self._filler_sentence)
                next_filler = next(filler_iter, None)
            enriched.append(step)
        while next_filler is not None:
            enriched.append(self._filler_sentence)
            next_filler = next(filler_iter, None)

        for step in enriched:
            step(builder)

        return AnnotatedDocument(doc_id, builder.text.strip(), builder.gold)

    # ------------------------------------------------------------------
    # sentence renderers
    # ------------------------------------------------------------------
    def _fact_sentences(self, builder: _DocBuilder, spec: DocumentSpec) -> None:
        fact = self._pick_fact(spec.domain)
        if fact is None:
            return
        self._render_fact(builder, fact, spec, subject_style=self._subject_style(spec))
        # Optional pronoun follow-up about the same subject.
        subject = self.kb.get_entity(fact.subject)
        if (
            "person" in subject.types
            and self.rng.random() < spec.pronoun_prob
        ):
            follow = self._pick_fact_for_subject(fact.subject, exclude=fact)
            if follow is not None:
                self._render_pronoun_fact(builder, follow, spec)

    def _title_fact_sentence(self, builder: _DocBuilder, spec: DocumentSpec) -> None:
        if not self._title_facts:
            return
        fact = self.rng.choice(self._title_facts)
        self._render_fact(builder, fact, spec, subject_style="label")

    def _isolated_fact_sentence(
        self, builder: _DocBuilder, spec: DocumentSpec
    ) -> None:
        # The paper's central hard case: an isolated mention whose surface
        # is ambiguous, whose *correct* reading is the popular sense from
        # an unrelated domain, and which has a competing (wrong) sense
        # inside the document's domain.  Prior-following systems get it
        # right; global-coherence systems drag it into the document's
        # dense core and fail; TENET's relaxation keeps it isolated.
        # Domains hosting a *wrong* sense of an already-placed ambiguous
        # mention are off limits: an isolated thread from such a domain
        # would make the earlier gold genuinely undecidable (its wrong
        # sense would acquire real document coherence) — a cross-thread
        # coincidence that is vanishingly rare in real corpora but common
        # in a small world.
        blocked = self._wrong_sense_domains(builder)
        trap = self._find_isolated_trap(spec.domain, builder)
        if (
            trap is not None
            and self.rng.random() < 0.7
            and (self.kb.get_entity(trap[0].subject).domain or "")
            not in blocked
        ):
            fact, alias = trap
            self._render_fact(
                builder, fact, spec, subject_style="label",
                subject_surface=alias,
            )
            return
        other_domains = [
            d
            for d in self._fact_pools
            if d != spec.domain and d not in blocked
        ]
        if not other_domains:
            return
        domain = self.rng.choice(other_domains)
        # Plain isolated facts use *unambiguous* labels: the entity shares
        # no coherence with the document but is easy to look up.  A label
        # that happens to be a donated alias of some in-document-domain
        # entity would be an accidental, unfiltered trap — skip those.
        pool = [
            t
            for t in self._fact_pools.get(domain, ())
            if len(
                self._alias_owners.get(
                    normalize_phrase(self.kb.get_entity(t.subject).label), ()
                )
            )
            == 1
        ]
        if not pool:
            pool = self._fact_pools.get(domain, ())
        if not pool:
            return
        fact = self.rng.choice(pool)
        self._render_fact(builder, fact, spec, subject_style="label")

    def _wrong_sense_domains(self, builder: _DocBuilder) -> set:
        """Domains of the wrong senses of already-placed gold mentions."""
        blocked = set()
        for gold in builder.gold:
            if gold.concept_id is None or not gold.concept_id.startswith("Q"):
                continue
            owners = self._alias_owners.get(normalize_phrase(gold.surface), ())
            for owner in owners:
                if owner != gold.concept_id:
                    domain = self.kb.get_entity(owner).domain
                    if domain:
                        blocked.add(domain)
        return blocked

    def _find_isolated_trap(
        self, domain: str, builder: Optional[_DocBuilder] = None
    ) -> Optional[Tuple[Triple, str]]:
        """A (fact, alias) pair for the isolated-dominant trap above.

        When *builder* is given, traps whose wrong in-domain sense is a
        direct KB neighbour of a concept already placed in the document
        are skipped: a wrong sense with a *genuine* direct connection to
        the document is a reasonable coherence decision, not a trap — in
        real corpora alias collisions almost never land on an entity that
        is factually tied to the very document at hand.
        """
        options = self._trap_options(domain)
        if not options:
            return None
        if builder is None:
            fact, alias, _wrong = self.rng.choice(options)
            return fact, alias
        doc_concepts = {
            g.concept_id for g in builder.gold if g.concept_id is not None
        }
        viable = [
            (fact, alias)
            for fact, alias, wrong_owners in options
            if not any(
                self.kb.entity_neighbours(wrong) & doc_concepts
                for wrong in wrong_owners
            )
        ]
        if not viable:
            return None
        return self.rng.choice(viable)

    def _trap_options(self, domain: str):
        options = self._trap_cache.get(domain)
        if options is None:
            options = []
            for alias_key, owners in self._alias_owners.items():
                if len(owners) < 2:
                    continue
                popularity = {
                    eid: self.kb.get_entity(eid).popularity for eid in owners
                }
                top = max(owners, key=popularity.get)
                total = sum(popularity.values())
                if total == 0 or popularity[top] / total < 0.7:
                    continue  # the trap needs a clearly dominant sense
                top_record = self.kb.get_entity(top)
                if top_record.domain == domain:
                    continue
                if not any(
                    self.kb.get_entity(other).domain == domain
                    for other in owners
                    if other != top
                ):
                    continue
                facts = [
                    t
                    for t in self._fact_pools.get(top_record.domain or "", ())
                    if t.subject == top
                ]
                if not facts:
                    continue
                surface = next(
                    (
                        a
                        for a in top_record.aliases
                        if normalize_phrase(a) == alias_key
                    ),
                    None,
                )
                if surface is None:
                    continue
                wrong_owners = tuple(o for o in owners if o != top)
                options.extend(
                    (fact, surface, wrong_owners) for fact in facts
                )
            self._trap_cache[domain] = options
        return options

    def _non_linkable_noun_sentence(
        self, builder: _DocBuilder, spec: DocumentSpec
    ) -> None:
        phrase = self.rng.choice(namepools.NON_LINKABLE_PHRASES)
        city = self.kb.get_entity(self.rng.choice(self.world.cities))
        predicate = self.kb.get_predicate(self.world.predicate("located"))
        alias = "is located in"
        builder.add(phrase, SpanKind.NOUN, None, annotate=True)
        builder.space()
        builder.add(
            alias,
            SpanKind.RELATION,
            predicate.predicate_id,
            annotate=spec.annotate_relations,
        )
        builder.space()
        builder.add(city.label, SpanKind.NOUN, city.entity_id, annotate=True)
        builder.end_sentence()

    def _non_linkable_relation_sentence(
        self, builder: _DocBuilder, spec: DocumentSpec
    ) -> None:
        domain = spec.domain
        people = self.world.entities_of_type(domain, "person")
        orgs = [
            eid
            for eid in self.world.entities_in_domain(domain)
            if "person" not in self.kb.get_entity(eid).types
        ]
        if not people or not orgs:
            return
        subject = self.kb.get_entity(self.rng.choice(people))
        obj = self.kb.get_entity(self.rng.choice(orgs))
        verb = self.rng.choice(namepools.NON_LINKABLE_VERBS)
        builder.add(subject.label, SpanKind.NOUN, subject.entity_id, annotate=True)
        builder.space()
        builder.add(
            verb, SpanKind.RELATION, None, annotate=spec.annotate_relations
        )
        builder.space()
        builder.add(obj.label, SpanKind.NOUN, obj.entity_id, annotate=True)
        builder.end_sentence()

    def _ad_sentence(self, builder: _DocBuilder, spec: DocumentSpec) -> None:
        """Advertisement-style sentence: everything is non-linkable."""
        a, b = self.rng.sample(namepools.NON_LINKABLE_PHRASES, 2)
        verb = self.rng.choice(namepools.NON_LINKABLE_VERBS)
        builder.add(a, SpanKind.NOUN, None, annotate=True)
        builder.space()
        builder.add(verb, SpanKind.RELATION, None, annotate=spec.annotate_relations)
        builder.space()
        builder.add(b, SpanKind.NOUN, None, annotate=True)
        builder.end_sentence()

    def _filler_sentence(self, builder: _DocBuilder) -> None:
        sentence = self.rng.choice(namepools.FILLER_SENTENCES)
        builder.add(sentence[:-1])  # renderer adds the period uniformly
        builder.end_sentence()

    def _render_fact(
        self,
        builder: _DocBuilder,
        fact: Triple,
        spec: DocumentSpec,
        subject_style: str,
        subject_surface: Optional[str] = None,
    ) -> None:
        subject = self.kb.get_entity(fact.subject)
        predicate = self.kb.get_predicate(fact.predicate)
        if subject_surface is not None:
            pass  # caller-forced surface (isolated traps)
        elif self.rng.random() < spec.oov_noun_prob:
            subject_surface = self._oov_entity_surface(subject)
        else:
            subject_surface = self._entity_surface(subject, subject_style)
        if self.rng.random() < spec.oov_relation_prob:
            predicate_surface = self._oov_predicate_surface(predicate)
        else:
            predicate_surface = self._predicate_surface(predicate, spec)
        builder.add(
            subject_surface, SpanKind.NOUN, subject.entity_id, annotate=True
        )
        builder.space()
        builder.add(
            predicate_surface,
            SpanKind.RELATION,
            predicate.predicate_id,
            annotate=spec.annotate_relations,
        )
        builder.space()
        if fact.object_is_literal:
            builder.add(fact.obj)
        else:
            obj = self.kb.get_entity(fact.obj)
            obj_style = (
                "ambiguous"
                if self.rng.random() < spec.object_ambiguous_prob
                else "label"
            )
            builder.add(
                self._entity_surface(obj, obj_style),
                SpanKind.NOUN,
                obj.entity_id,
                annotate=True,
            )
        builder.end_sentence()

    def _render_pronoun_fact(
        self, builder: _DocBuilder, fact: Triple, spec: DocumentSpec
    ) -> None:
        predicate = self.kb.get_predicate(fact.predicate)
        predicate_surface = self._predicate_surface(predicate, spec)
        builder.add(self.rng.choice(("He", "She")))
        builder.space()
        builder.add(
            predicate_surface,
            SpanKind.RELATION,
            predicate.predicate_id,
            annotate=spec.annotate_relations,
        )
        builder.space()
        if fact.object_is_literal:
            builder.add(fact.obj)
        else:
            obj = self.kb.get_entity(fact.obj)
            builder.add(obj.label, SpanKind.NOUN, obj.entity_id, annotate=True)
        builder.end_sentence()

    # ------------------------------------------------------------------
    # surface-form selection
    # ------------------------------------------------------------------
    def _subject_style(self, spec: DocumentSpec) -> str:
        roll = self.rng.random()
        if roll < spec.surname_prob:
            return "surname"
        if roll < spec.surname_prob + spec.ambiguous_alias_prob:
            return "ambiguous"
        return "label"

    def _entity_surface(self, entity: EntityRecord, style: str) -> str:
        if style == "surname" and "person" in entity.types:
            surname = entity.label.split()[-1]
            if surname in entity.aliases:
                return surname
        if style == "ambiguous":
            ambiguous = self._ambiguous_aliases(entity)
            if ambiguous:
                return self.rng.choice(ambiguous)
        return entity.label

    def _ambiguous_aliases(self, entity: EntityRecord) -> List[str]:
        """Aliases of *entity* owned by >= 2 entities, preferring aliases
        where *entity* is not the most popular owner (the prior trap)."""
        trap: List[str] = []
        shared: List[str] = []
        for alias in entity.aliases:
            owners = self._alias_owners.get(normalize_phrase(alias), [])
            if len(owners) < 2:
                continue
            shared.append(alias)
            top = max(
                owners, key=lambda eid: self.kb.get_entity(eid).popularity
            )
            if top != entity.entity_id:
                trap.append(alias)
        return trap or shared

    def _oov_entity_surface(self, entity: EntityRecord) -> str:
        """A surface form the alias index does not contain."""
        if "person" in entity.types:
            honorific = self.rng.choice(("Dr", "Professor", "Mr", "Ms"))
            return f"{honorific} {entity.label.split()[-1]}"
        return f"the {entity.label}" if not entity.label.startswith("The") else entity.label

    def _oov_predicate_surface(self, predicate: PredicateRecord) -> str:
        """Progressive-form paraphrase missing from the alias index."""
        alias = self.rng.choice(predicate.aliases)
        words = alias.split()
        head = words[0]
        if head in ("is", "was", "are", "were", "has", "have"):
            return alias  # already auxiliary-led; leave as in-vocabulary
        return " ".join(["is", _ing_form(head)] + words[1:])

    def _predicate_surface(
        self, predicate: PredicateRecord, spec: DocumentSpec
    ) -> str:
        aliases = [a for a in predicate.aliases if a != predicate.label]
        if not aliases:
            return predicate.label
        if self.rng.random() < spec.ambiguous_alias_prob:
            shared: List[str] = []
            trap: List[str] = []
            for a in aliases:
                owners = self._predicate_alias_owners.get(normalize_phrase(a), [])
                if len(owners) < 2:
                    continue
                shared.append(a)
                top = max(
                    owners,
                    key=lambda pid: self.kb.get_predicate(pid).popularity,
                )
                if top != predicate.predicate_id:
                    trap.append(a)
            # Only aliases where the gold predicate is NOT the most
            # popular owner are selected deliberately: those separate
            # prior-following from coherence-aware systems.  Shared
            # aliases whose top owner IS gold add no discriminative
            # signal, so they only appear at the base random rate below.
            del shared
            if trap:
                return self.rng.choice(trap)
        return self.rng.choice(aliases)

    # ------------------------------------------------------------------
    # fact pools
    # ------------------------------------------------------------------
    def _pick_fact(self, domain: str) -> Optional[Triple]:
        pool = self._fact_pools.get(domain)
        if not pool:
            return None
        return self.rng.choice(pool)

    def _pick_fact_for_subject(
        self, subject: str, exclude: Triple
    ) -> Optional[Triple]:
        options = [
            t
            for pool in self._fact_pools.values()
            for t in pool
            if t.subject == subject and t != exclude
        ]
        if not options:
            return None
        return self.rng.choice(options)

    def _build_alias_owners(self) -> Dict[str, List[str]]:
        owners: Dict[str, List[str]] = {}
        for entity in self.kb.entities():
            for alias in entity.aliases:
                owners.setdefault(normalize_phrase(alias), []).append(
                    entity.entity_id
                )
        return owners

    def _build_predicate_alias_owners(self) -> Dict[str, List[str]]:
        owners: Dict[str, List[str]] = {}
        for predicate in self.kb.predicates():
            for alias in predicate.aliases:
                owners.setdefault(normalize_phrase(alias), []).append(
                    predicate.predicate_id
                )
        return owners

    def _build_fact_pools(self) -> Dict[str, List[Triple]]:
        pools: Dict[str, List[Triple]] = {}
        for domain, members in self.world.domain_entities.items():
            member_set = set(members)
            pool = [
                t
                for t in self.kb.triples()
                if t.subject in member_set
                and (t.object_is_literal or self.kb.has_entity(t.obj))
            ]
            # Fact sentences read best with entity objects; keep a couple
            # of literal facts for variety.
            pools[domain] = [t for t in pool if not t.object_is_literal]
        return pools

    def _build_title_facts(self) -> List[Triple]:
        facts: List[Triple] = []
        for triple in self.kb.triples():
            if triple.object_is_literal:
                continue
            subject = self.kb.get_entity(triple.subject)
            if (
                any(t in ("film", "book", "painting") for t in subject.types)
                and len(subject.label.split()) >= 4
            ):
                facts.append(triple)
        return facts
