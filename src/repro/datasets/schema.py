"""Gold-annotation data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.nlp.spans import SpanKind


@dataclass(frozen=True)
class GoldMention:
    """A gold-annotated mention.

    ``concept_id`` is ``None`` for *non-linkable* phrases — phrases a
    human annotator confirmed have no KB counterpart (Table 2's
    statistics and the ground truth for isolated-concept detection).
    """

    surface: str
    char_start: int
    char_end: int
    kind: SpanKind
    concept_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.char_end <= self.char_start:
            raise ValueError(
                f"empty gold span [{self.char_start}, {self.char_end})"
            )

    @property
    def is_linkable(self) -> bool:
        return self.concept_id is not None

    def overlaps_chars(self, start: int, end: int) -> bool:
        return self.char_start < end and start < self.char_end


@dataclass
class AnnotatedDocument:
    """A document with its gold mentions."""

    doc_id: str
    text: str
    gold: List[GoldMention] = field(default_factory=list)

    def gold_entities(self, linkable_only: bool = False) -> List[GoldMention]:
        return [
            g
            for g in self.gold
            if g.kind is SpanKind.NOUN and (g.is_linkable or not linkable_only)
        ]

    def gold_relations(self, linkable_only: bool = False) -> List[GoldMention]:
        return [
            g
            for g in self.gold
            if g.kind is SpanKind.RELATION and (g.is_linkable or not linkable_only)
        ]

    def non_linkable_gold(self) -> List[GoldMention]:
        return [g for g in self.gold if not g.is_linkable]

    @property
    def word_count(self) -> int:
        return len(self.text.split())


@dataclass
class Dataset:
    """A named collection of annotated documents."""

    name: str
    documents: List[AnnotatedDocument] = field(default_factory=list)
    has_relation_gold: bool = True

    def __iter__(self) -> Iterator[AnnotatedDocument]:
        return iter(self.documents)

    def __len__(self) -> int:
        return len(self.documents)

    @property
    def words_per_document(self) -> float:
        if not self.documents:
            return 0.0
        return sum(d.word_count for d in self.documents) / len(self.documents)

    def subset(self, doc_ids: List[str]) -> "Dataset":
        wanted = set(doc_ids)
        return Dataset(
            name=f"{self.name}-subset",
            documents=[d for d in self.documents if d.doc_id in wanted],
            has_relation_gold=self.has_relation_gold,
        )
