"""Dataset integrity validation.

Gold annotations loaded from disk (or produced by a modified generator)
can drift out of sync with their documents or their KB.  The validator
checks every invariant the evaluation relies on and returns actionable
problem reports instead of letting a broken corpus silently distort
scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.schema import AnnotatedDocument, Dataset
from repro.kb.store import KnowledgeBase
from repro.nlp.spans import SpanKind


@dataclass(frozen=True)
class ValidationProblem:
    """One violated invariant."""

    doc_id: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"[{self.severity}] {self.doc_id}: {self.message}"


@dataclass
class ValidationReport:
    problems: List[ValidationProblem]

    @property
    def errors(self) -> List[ValidationProblem]:
        return [p for p in self.problems if p.severity == "error"]

    @property
    def warnings(self) -> List[ValidationProblem]:
        return [p for p in self.problems if p.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_dataset(
    dataset: Dataset, kb: Optional[KnowledgeBase] = None
) -> ValidationReport:
    """Check every document of *dataset*; optionally against a KB.

    Errors (the evaluation would be wrong):
      * gold span out of the document's bounds or empty;
      * gold surface text not matching the document slice;
      * (with KB) a linkable gold referencing an unknown concept, or a
        noun gold referencing a predicate id / vice versa;
      * relation gold present although ``has_relation_gold`` is False.

    Warnings (suspicious but scoreable):
      * duplicate gold annotations (same span, kind and concept);
      * documents without any gold mention.
    """
    problems: List[ValidationProblem] = []
    for document in dataset:
        problems.extend(_validate_document(document, dataset, kb))
    return ValidationReport(problems)


def _validate_document(
    document: AnnotatedDocument,
    dataset: Dataset,
    kb: Optional[KnowledgeBase],
) -> List[ValidationProblem]:
    problems: List[ValidationProblem] = []

    def error(message: str) -> None:
        problems.append(ValidationProblem(document.doc_id, "error", message))

    def warning(message: str) -> None:
        problems.append(ValidationProblem(document.doc_id, "warning", message))

    if not document.gold:
        warning("document has no gold annotations")

    seen = set()
    for gold in document.gold:
        span = (gold.char_start, gold.char_end, gold.kind, gold.concept_id)
        if span in seen:
            warning(f"duplicate gold annotation {gold.surface!r}@{gold.char_start}")
        seen.add(span)

        if gold.char_start < 0 or gold.char_end > len(document.text):
            error(
                f"gold span [{gold.char_start}, {gold.char_end}) outside "
                f"document of length {len(document.text)}"
            )
            continue
        actual = document.text[gold.char_start : gold.char_end]
        if actual != gold.surface:
            error(
                f"gold surface {gold.surface!r} does not match document "
                f"slice {actual!r} at {gold.char_start}"
            )
        if gold.kind is SpanKind.RELATION and not dataset.has_relation_gold:
            error(
                f"relation gold {gold.surface!r} present although the "
                "dataset declares no relation annotations"
            )
        if kb is not None and gold.concept_id is not None:
            if gold.kind is SpanKind.NOUN:
                if not kb.has_entity(gold.concept_id):
                    error(
                        f"noun gold {gold.surface!r} references unknown "
                        f"entity {gold.concept_id!r}"
                    )
            else:
                if not kb.has_predicate(gold.concept_id):
                    error(
                        f"relation gold {gold.surface!r} references unknown "
                        f"predicate {gold.concept_id!r}"
                    )
    return problems
