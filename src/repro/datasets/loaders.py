"""JSON persistence for annotated datasets."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.datasets.schema import AnnotatedDocument, Dataset, GoldMention
from repro.nlp.spans import SpanKind

FORMAT_VERSION = 1


def dataset_to_json(dataset: Dataset) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "has_relation_gold": dataset.has_relation_gold,
        "documents": [
            {
                "doc_id": doc.doc_id,
                "text": doc.text,
                "gold": [
                    {
                        "surface": g.surface,
                        "char_start": g.char_start,
                        "char_end": g.char_end,
                        "kind": g.kind.value,
                        "concept_id": g.concept_id,
                    }
                    for g in doc.gold
                ],
            }
            for doc in dataset.documents
        ],
    }


def dataset_from_json(payload: dict) -> Dataset:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version!r}")
    documents = []
    for record in payload["documents"]:
        gold = [
            GoldMention(
                surface=g["surface"],
                char_start=g["char_start"],
                char_end=g["char_end"],
                kind=SpanKind(g["kind"]),
                concept_id=g["concept_id"],
            )
            for g in record["gold"]
        ]
        documents.append(AnnotatedDocument(record["doc_id"], record["text"], gold))
    return Dataset(
        payload["name"], documents, has_relation_gold=payload["has_relation_gold"]
    )


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(dataset_to_json(dataset), indent=1))


def load_dataset(path: Union[str, Path]) -> Dataset:
    return dataset_from_json(json.loads(Path(path).read_text()))
