"""Dataset substrate: synthetic analogs of the paper's four corpora.

The paper evaluates on News (NYT 2018), T-REx42, KORE50 and MSNBC19,
whose documents and gold annotations are not redistributable.  This
package generates synthetic analogs over the synthetic world with the
statistics the paper reports (Table 2 and Sec. 6.1): document length,
annotated noun/relational phrases per document, non-linkable fractions,
and ambiguity style (e.g. KORE50's surname-only highly ambiguous
mentions).
"""

from repro.datasets.schema import AnnotatedDocument, Dataset, GoldMention
from repro.datasets.generator import DocumentGenerator, DocumentSpec
from repro.datasets.benchmarks import (
    BenchmarkSuite,
    build_benchmark_suite,
    build_news,
    build_trex42,
    build_kore50,
    build_msnbc19,
)
from repro.datasets.loaders import save_dataset, load_dataset

__all__ = [
    "AnnotatedDocument",
    "Dataset",
    "GoldMention",
    "DocumentGenerator",
    "DocumentSpec",
    "BenchmarkSuite",
    "build_benchmark_suite",
    "build_news",
    "build_trex42",
    "build_kore50",
    "build_msnbc19",
    "save_dataset",
    "load_dataset",
]
