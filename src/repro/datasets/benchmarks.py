"""Builders for the four benchmark dataset analogs.

Sizes and composition follow the paper (Sec. 6.1, Table 2):

* **News** — 16 long-text documents (10 normal-domain + 6 advertisement
  documents full of fresh, non-linkable phrases), high non-linkable
  relation fraction;
* **T-REx42** — 42 long-text documents, moderate non-linkable nouns,
  many non-linkable relations;
* **KORE50** — 50 short hand-crafted-style sentences with very ambiguous
  (surname-only) mentions, entity annotations only;
* **MSNBC19** — 19 very long documents (hundreds of words, ~22 annotated
  entities each), entity annotations only.

All four are generated against one shared synthetic world so a single
:class:`~repro.core.linker.LinkingContext` serves the whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.generator import DocumentGenerator, DocumentSpec
from repro.datasets.schema import AnnotatedDocument, Dataset
from repro.kb.synthetic import SyntheticKBConfig, SyntheticWorld, build_synthetic_world

_DOMAIN_ROTATION = (
    "computer_science", "basketball", "cinema", "geography",
    "politics", "music", "literature", "business",
)


def _rotate(index: int) -> str:
    return _DOMAIN_ROTATION[index % len(_DOMAIN_ROTATION)]


def build_news(world: SyntheticWorld, seed: int = 101, scale: float = 1.0) -> Dataset:
    """News analog: 10 normal + 6 advertisement documents."""
    generator = DocumentGenerator(world, seed)
    documents: List[AnnotatedDocument] = []
    normal_count = max(2, round(10 * scale))
    ad_count = max(2, round(6 * scale))
    for i in range(normal_count):
        spec = DocumentSpec(
            domain=_rotate(i),
            facts=4,
            isolated_facts=1,
            non_linkable_noun_sentences=1,
            non_linkable_relation_sentences=2,
            filler_sentences=14,
            ambiguous_alias_prob=0.5,
            object_ambiguous_prob=0.3,
            pronoun_prob=0.3,
            title_facts=0,
        )
        documents.append(generator.generate(f"news-{i}", spec))
    for i in range(ad_count):
        spec = DocumentSpec(
            domain=_rotate(i + 3),
            facts=2,
            isolated_facts=1,
            non_linkable_noun_sentences=1,
            non_linkable_relation_sentences=1,
            non_linkable_ad_sentences=3,
            filler_sentences=8,
            ambiguous_alias_prob=0.25,
            pronoun_prob=0.2,
            title_facts=0,
        )
        documents.append(generator.generate(f"news-ad-{i}", spec))
    return Dataset("News", documents, has_relation_gold=True)


def news_advertisement_ids(dataset: Dataset) -> List[str]:
    """Document ids of the 6 advertisement articles (Fig. 6(c) subset)."""
    return [d.doc_id for d in dataset.documents if d.doc_id.startswith("news-ad-")]


def build_trex42(world: SyntheticWorld, seed: int = 202, scale: float = 1.0) -> Dataset:
    """T-REx analog: 42 long-text KB-population-style documents."""
    generator = DocumentGenerator(world, seed)
    documents: List[AnnotatedDocument] = []
    count = max(2, round(42 * scale))
    for i in range(count):
        spec = DocumentSpec(
            domain=_rotate(i),
            facts=4,
            isolated_facts=1,
            non_linkable_noun_sentences=(1 if i % 3 == 0 else 0),
            non_linkable_relation_sentences=2,
            filler_sentences=12,
            ambiguous_alias_prob=0.45,
            object_ambiguous_prob=0.3,
            pronoun_prob=0.25,
            title_facts=1,
        )
        documents.append(generator.generate(f"trex-{i}", spec))
    return Dataset("T-REx42", documents, has_relation_gold=True)


def build_kore50(world: SyntheticWorld, seed: int = 303, scale: float = 1.0) -> Dataset:
    """KORE50 analog: short sentences with very ambiguous mentions."""
    generator = DocumentGenerator(world, seed)
    documents: List[AnnotatedDocument] = []
    count = max(2, round(50 * scale))
    for i in range(count):
        spec = DocumentSpec(
            domain=_rotate(i),
            facts=1 + (i % 2),
            isolated_facts=0,
            non_linkable_noun_sentences=0,
            non_linkable_relation_sentences=0,
            filler_sentences=0,
            ambiguous_alias_prob=0.3,
            surname_prob=0.65,
            object_ambiguous_prob=0.35,
            pronoun_prob=0.0,
            title_facts=0,
            annotate_relations=False,
            oov_noun_prob=0.05,
            oov_relation_prob=0.0,
        )
        documents.append(generator.generate(f"kore-{i}", spec))
    return Dataset("KORE50", documents, has_relation_gold=False)


def build_msnbc19(world: SyntheticWorld, seed: int = 404, scale: float = 1.0) -> Dataset:
    """MSNBC analog: 19 very long documents, ~22 annotated entities each."""
    generator = DocumentGenerator(world, seed)
    documents: List[AnnotatedDocument] = []
    count = max(2, round(19 * scale))
    for i in range(count):
        spec = DocumentSpec(
            domain=_rotate(i),
            facts=12,
            isolated_facts=2,
            non_linkable_noun_sentences=2,
            non_linkable_relation_sentences=1,
            filler_sentences=48,
            ambiguous_alias_prob=0.5,
            object_ambiguous_prob=0.3,
            pronoun_prob=0.3,
            title_facts=1,
            annotate_relations=False,
        )
        documents.append(generator.generate(f"msnbc-{i}", spec))
    return Dataset("MSNBC19", documents, has_relation_gold=False)


@dataclass
class BenchmarkSuite:
    """The shared world plus the four dataset analogs."""

    world: SyntheticWorld
    news: Dataset
    trex42: Dataset
    kore50: Dataset
    msnbc19: Dataset

    def datasets(self) -> List[Dataset]:
        return [self.news, self.trex42, self.kore50, self.msnbc19]

    def dataset(self, name: str) -> Dataset:
        for dataset in self.datasets():
            if dataset.name.lower() == name.lower():
                return dataset
        raise KeyError(f"unknown dataset {name!r}")

    def advertisement_subset(self) -> Dataset:
        """The 6 News advertisement documents used in Fig. 6(c)."""
        return self.news.subset(news_advertisement_ids(self.news))


def build_benchmark_suite(
    seed: int = 7,
    scale: float = 1.0,
    kb_config: Optional[SyntheticKBConfig] = None,
) -> BenchmarkSuite:
    """Build the world and all four datasets.

    ``scale`` shrinks document counts proportionally (min 2 per dataset)
    for fast unit tests; 1.0 reproduces the paper-sized corpora.
    """
    world = build_synthetic_world(kb_config or SyntheticKBConfig(seed=seed))
    return BenchmarkSuite(
        world=world,
        news=build_news(world, seed=seed * 100 + 1, scale=scale),
        trex42=build_trex42(world, seed=seed * 100 + 2, scale=scale),
        kore50=build_kore50(world, seed=seed * 100 + 3, scale=scale),
        msnbc19=build_msnbc19(world, seed=seed * 100 + 4, scale=scale),
    )
