"""Linguistic pipeline substrate.

Stands in for the paper's tool stack (NLTK + spaCy + TAGME for noun
phrases and typing, MinIE safe mode for relational phrases, co-reference
canonicalisation).  Everything is rule-based and deterministic: a regex
tokenizer, a punctuation sentence splitter, a lexicon POS tagger, a rule
lemmatizer, gazetteer-aware noun-phrase candidate generation, verb-centric
Open IE, heuristic pronoun co-reference, and the J-NERD-style linguistic
features that drive mention canopies (Sec. 5.1).
"""

from repro.nlp.spans import Token, Sentence, Span, SpanKind, spans_overlap
from repro.nlp.tokenizer import tokenize
from repro.nlp.sentences import split_sentences
from repro.nlp.pos import PosTagger
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.features import LinguisticFeature, classify_gap, FEATURE_WORDS
from repro.nlp.chunker import NounPhraseChunker
from repro.nlp.openie import RelationExtractor, ExtractedRelation
from repro.nlp.coref import resolve_pronouns
from repro.nlp.pipeline import ExtractionPipeline, DocumentExtraction

__all__ = [
    "Token",
    "Sentence",
    "Span",
    "SpanKind",
    "spans_overlap",
    "tokenize",
    "split_sentences",
    "PosTagger",
    "lemmatize",
    "LinguisticFeature",
    "classify_gap",
    "FEATURE_WORDS",
    "NounPhraseChunker",
    "RelationExtractor",
    "ExtractedRelation",
    "resolve_pronouns",
    "ExtractionPipeline",
    "DocumentExtraction",
]
