"""End-to-end extraction pipeline (document text -> spans).

Chains the linguistic substrate exactly as the paper's pre-processing does
(Sec. 6.1, "Implementation Details"): tokenise, split sentences, POS-tag,
generate overlapping noun-phrase candidates against the KB gazetteer,
extract relational phrases, resolve pronouns.  The output is a
:class:`DocumentExtraction` consumed by TENET and every baseline, so all
systems compete on identical extractions (as in the paper, where the
extraction stack is shared).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kb.alias_index import AliasIndex
from repro.nlp import pos as _pos
from repro.nlp.chunker import NounPhraseChunker
from repro.nlp.coref import resolve_pronouns
from repro.nlp.openie import ExtractedRelation, RelationExtractor, _surface_variants
from repro.nlp.pos import PosTagger
from repro.nlp.sentences import sentence_of_token, split_sentences
from repro.nlp.spans import Sentence, Span, SpanKind, Token
from repro.nlp.tokenizer import tokenize


@dataclass
class DocumentExtraction:
    """Everything the linkers need to know about one document."""

    text: str
    tokens: List[Token]
    tags: List[str]
    sentences: List[Sentence]
    noun_spans: List[Span]
    regions: List[Span]
    relations: List[ExtractedRelation]
    pronoun_antecedents: Dict[int, Span]

    @property
    def relation_spans(self) -> List[Span]:
        return [r.span for r in self.relations]

    def relation_for_span(self, span: Span) -> Optional[ExtractedRelation]:
        for relation in self.relations:
            if relation.span == span:
                return relation
        return None

    @property
    def word_count(self) -> int:
        return sum(1 for t in self.tokens if t.text[0].isalnum())


class ExtractionPipeline:
    """Document text -> :class:`DocumentExtraction`.

    ``infer_types=True`` enables the TAGME-style mention typing of
    Sec. 3 Step 1: each noun span gets the decisive majority type of its
    candidate entities, which candidate generation then uses as a filter.
    """

    def __init__(
        self,
        alias_index: Optional[AliasIndex] = None,
        max_span_tokens: int = 8,
        infer_types: bool = False,
    ) -> None:
        self.alias_index = alias_index
        self.typer = None
        if infer_types and alias_index is not None:
            from repro.nlp.ner import MentionTyper

            self.typer = MentionTyper(alias_index)
        entity_gazetteer = (
            alias_index.has_entity_alias if alias_index is not None else None
        )
        predicate_gazetteer = (
            alias_index.has_predicate_alias if alias_index is not None else None
        )
        if alias_index is not None:
            self.tagger = PosTagger.from_predicate_aliases(
                alias_index.predicate_aliases(),
                nominal_tokens=alias_index.entity_alias_tokens(),
            )
        else:
            self.tagger = PosTagger()
        self.chunker = NounPhraseChunker(entity_gazetteer, max_span_tokens)
        self.relation_extractor = RelationExtractor(predicate_gazetteer)

    def extract(self, text: str) -> DocumentExtraction:
        tokens = tokenize(text)
        tags = self.tagger.tag(tokens)
        sentences = split_sentences(tokens)
        regions = self.chunker.regions(text, tokens, tags, sentences)
        noun_spans = self.chunker.chunk(text, tokens, tags, sentences)
        relations = self.relation_extractor.extract(
            text, tokens, tags, sentences, regions
        )
        antecedents = resolve_pronouns(tokens, tags, regions)
        relations = _add_pronoun_relations(
            tokens, tags, sentences, relations, antecedents
        )
        if self.typer is not None:
            noun_spans = [
                Span(
                    text=span.text,
                    token_start=span.token_start,
                    token_end=span.token_end,
                    sentence_index=span.sentence_index,
                    kind=span.kind,
                    mention_type=self.typer.type_of(span.text),
                    char_start=span.char_start,
                    char_end=span.char_end,
                )
                for span in noun_spans
            ]
        return DocumentExtraction(
            text=text,
            tokens=tokens,
            tags=tags,
            sentences=sentences,
            noun_spans=noun_spans,
            regions=regions,
            relations=relations,
            pronoun_antecedents=antecedents,
        )


def _add_pronoun_relations(
    tokens: List[Token],
    tags: List[str],
    sentences: List[Sentence],
    relations: List[ExtractedRelation],
    antecedents: Dict[int, Span],
) -> List[ExtractedRelation]:
    """Synthesise relations whose subject was a resolved pronoun.

    The relation extractor pairs nominal regions, so "He visited
    Brooklyn." yields no relation on its own (the pronoun is not a
    region).  For each resolved pronoun we locate the verbal stretch after
    it and the first following nominal run, then emit a relation whose
    subject is the *antecedent* region — this is the co-reference
    canonicalisation of the paper's pre-processing.
    """
    result = list(relations)
    claimed = {(r.span.token_start, r.span.token_end) for r in relations}
    for pronoun_index, antecedent in sorted(antecedents.items()):
        sentence = sentence_of_token(sentences, pronoun_index)
        verb_start = _first_with_tags(
            tokens, tags, pronoun_index + 1, sentence.token_end,
            (_pos.VERB, _pos.AUX),
        )
        if verb_start is None:
            continue
        verb_end = verb_start
        while verb_end < sentence.token_end and tags[verb_end] in (
            _pos.VERB, _pos.AUX,
        ):
            verb_end += 1
        while verb_end < sentence.token_end and tags[verb_end] == _pos.ADP:
            verb_end += 1
        if (verb_start, verb_end) in claimed:
            continue
        obj_start = _first_with_tags(
            tokens, tags, verb_end, sentence.token_end,
            (_pos.PROPN, _pos.NOUN, _pos.NUM),
        )
        if obj_start is None:
            continue
        obj_end = obj_start
        while obj_end < sentence.token_end and tags[obj_end] in (
            _pos.PROPN, _pos.NOUN, _pos.NUM,
        ):
            obj_end += 1
        span = _span_from_tokens(
            tokens, verb_start, verb_end, sentence.index, SpanKind.RELATION
        )
        obj_span = _span_from_tokens(
            tokens, obj_start, obj_end, sentence.index, SpanKind.NOUN
        )
        variants = _surface_variants(tokens, tags, verb_start, verb_end, span.text)
        claimed.add((verb_start, verb_end))
        result.append(ExtractedRelation(span, antecedent, obj_span, variants))
    result.sort(key=lambda r: r.span.token_start)
    return result


def _first_with_tags(tokens, tags, start, end, wanted):
    for i in range(start, end):
        if tags[i] in wanted:
            return i
    return None


def _span_from_tokens(
    tokens: List[Token], start: int, end: int, sentence_index: int, kind: SpanKind
) -> Span:
    surface = " ".join(t.text for t in tokens[start:end])
    return Span(
        text=surface,
        token_start=start,
        token_end=end,
        sentence_index=sentence_index,
        kind=kind,
        char_start=tokens[start].start,
        char_end=tokens[end - 1].end,
    )
