"""Heuristic pronoun co-reference.

The paper canonicalises noun phrases by co-reference [13] before linking.
For the synthetic documents (news-register prose) the classic recency
heuristic is sound: a third-person subject pronoun resolves to the most
recent preceding person-like nominal region.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.nlp import pos
from repro.nlp.spans import Span, Token

_SUBJECT_PRONOUNS = {"he", "she", "they", "it"}
_PERSON_PRONOUNS = {"he", "she"}


def resolve_pronouns(
    tokens: List[Token],
    tags: List[str],
    regions: List[Span],
) -> Dict[int, Span]:
    """Map pronoun token index -> antecedent nominal region.

    Only subject pronouns are resolved.  Person pronouns ("he"/"she")
    prefer the most recent region that looks like a person name (1-3
    capitalised tokens); "it"/"they" take the most recent region of any
    shape.  Pronouns with no preceding candidate stay unresolved.
    """
    resolved: Dict[int, Span] = {}
    sorted_regions = sorted(regions, key=lambda r: r.token_start)
    for token, tag in zip(tokens, tags):
        if tag != pos.PRON or token.lower not in _SUBJECT_PRONOUNS:
            continue
        antecedent = _find_antecedent(
            token.index, token.lower, tokens, sorted_regions
        )
        if antecedent is not None:
            resolved[token.index] = antecedent
    return resolved


def _find_antecedent(
    pronoun_index: int,
    pronoun: str,
    tokens: List[Token],
    regions: List[Span],
) -> Optional[Span]:
    best: Optional[Span] = None
    for region in regions:
        if region.token_end > pronoun_index:
            break
        if pronoun in _PERSON_PRONOUNS and not _looks_like_person(tokens, region):
            continue
        best = region
    return best


def _looks_like_person(tokens: List[Token], region: Span) -> bool:
    if not 1 <= region.length <= 3:
        return False
    return all(
        tokens[i].is_capitalized
        for i in range(region.token_start, region.token_end)
    )
