"""Verb-centric Open Information Extraction (MinIE-safe-mode stand-in).

Relational phrases are extracted from the gaps between top-level nominal
regions of a sentence:

* **adjacent pair** (R_i, R_{i+1}): if the gap contains a verbal token,
  the trimmed verbal stretch is a relational phrase connecting the two
  regions;
* **bridged pair** (R_i, R_{i+2}): when the whole stretch between R_i and
  R_{i+2} (including the middle region) matches a predicate alias in the
  gazetteer — e.g. "is the sister city of" — it becomes one relational
  phrase absorbing the middle region.

Each extraction carries *surface variants* (full phrase, phrase without
leading auxiliaries, lemmatised head) tried in order during candidate
predicate lookup, mirroring the paper's lemmatisation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.nlp import pos
from repro.nlp.lemmatizer import lemma_variants
from repro.nlp.spans import Sentence, Span, SpanKind, Token

_VERBAL_TAGS = {pos.VERB, pos.AUX}
_TRAIL_TAGS = {pos.ADP}  # particles/prepositions may close the phrase
_AUX_WORDS_SKIPPABLE = {"is", "was", "are", "were", "has", "have", "had", "be", "been"}


@dataclass(frozen=True)
class ExtractedRelation:
    """A relational phrase with its subject/object noun regions."""

    span: Span
    subject: Span
    object: Span
    surface_variants: Tuple[str, ...]


class RelationExtractor:
    """Extracts relational phrases between nominal regions."""

    def __init__(
        self, predicate_gazetteer: Optional[Callable[[str], bool]] = None
    ) -> None:
        self._gazetteer = predicate_gazetteer

    def extract(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        sentences: List[Sentence],
        regions: List[Span],
    ) -> List[ExtractedRelation]:
        """All relational phrases, document order."""
        relations: List[ExtractedRelation] = []
        for sentence in sentences:
            in_sentence = [
                r for r in regions if r.sentence_index == sentence.index
            ]
            in_sentence.sort(key=lambda r: r.token_start)
            relations.extend(
                self._sentence_relations(text, tokens, tags, in_sentence)
            )
        return relations

    # ------------------------------------------------------------------
    def _sentence_relations(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        regions: List[Span],
    ) -> List[ExtractedRelation]:
        relations: List[ExtractedRelation] = []
        for i in range(len(regions) - 1):
            subject = regions[i]
            # The adjacent extraction is the baseline reading; bridged /
            # absorbing variants recover multi-word predicate aliases
            # ("is the sister city of") that swallow nominal material.
            # All variants are emitted — span selection is the linker's
            # job (the paper's Sec. 6.2 discusses exactly this conflict).
            adjacent = self._gap_relation(
                text, tokens, tags, subject, regions[i + 1]
            )
            if adjacent is not None:
                relations.append(adjacent)
            absorbing = self._absorbing_relation(
                text, tokens, tags, subject, regions[i + 1]
            )
            if absorbing is not None:
                relations.append(absorbing)
            if i + 2 < len(regions):
                bridged = self._bridged_relation(
                    text, tokens, tags, subject, regions[i + 1], regions[i + 2]
                )
                if bridged is not None:
                    relations.append(bridged)
        return relations

    def _absorbing_relation(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        subject: Span,
        obj: Span,
    ) -> Optional[ExtractedRelation]:
        """Extend the relational phrase into the object region's prefix.

        "Rome is the sister city of Paris" tags "sister" verbally, so the
        object region becomes "city of Paris"; the true predicate alias
        absorbs the region's prefix.  For each nominal split point inside
        the object region, the stretch from the subject to that point is
        tested against the predicate gazetteer.
        """
        if self._gazetteer is None:
            return None
        start = subject.token_end
        for split in range(obj.token_start + 1, obj.token_end):
            if tags[split] not in ("PROPN", "NOUN", "NUM"):
                continue
            if split - start > 7:
                break
            surface = text[tokens[start].start : tokens[split - 1].end]
            if not self._gazetteer(surface):
                continue
            span = _relation_span(text, tokens, start, split, subject.sentence_index)
            new_obj = Span(
                text=text[tokens[split].start : tokens[obj.token_end - 1].end],
                token_start=split,
                token_end=obj.token_end,
                sentence_index=obj.sentence_index,
                kind=SpanKind.NOUN,
                char_start=tokens[split].start,
                char_end=tokens[obj.token_end - 1].end,
            )
            return ExtractedRelation(span, subject, new_obj, (surface,))
        return None

    def _gap_relation(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        subject: Span,
        obj: Span,
    ) -> Optional[ExtractedRelation]:
        gap_start, gap_end = subject.token_end, obj.token_start
        if gap_end <= gap_start:
            return None
        verb_positions = [
            i for i in range(gap_start, gap_end) if tags[i] in _VERBAL_TAGS
        ]
        if not verb_positions:
            return None
        start = verb_positions[0]
        end = verb_positions[-1] + 1
        # Extend over trailing particles/prepositions up to the object.
        while end < gap_end and tags[end] in _TRAIL_TAGS:
            end += 1
        span = _relation_span(text, tokens, start, end, subject.sentence_index)
        variants = _surface_variants(tokens, tags, start, end, span.text)
        return ExtractedRelation(span, subject, obj, variants)

    def _bridged_relation(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        subject: Span,
        middle: Span,
        obj: Span,
    ) -> Optional[ExtractedRelation]:
        if self._gazetteer is None:
            return None
        start, end = subject.token_end, obj.token_start
        if end <= start or end - start > 7:
            return None
        surface = text[tokens[start].start : tokens[end - 1].end]
        if not self._gazetteer(surface):
            return None
        span = _relation_span(text, tokens, start, end, subject.sentence_index)
        return ExtractedRelation(span, subject, obj, (surface,))


def _relation_span(
    text: str, tokens: List[Token], start: int, end: int, sentence_index: int
) -> Span:
    char_start = tokens[start].start
    char_end = tokens[end - 1].end
    return Span(
        text=text[char_start:char_end],
        token_start=start,
        token_end=end,
        sentence_index=sentence_index,
        kind=SpanKind.RELATION,
        char_start=char_start,
        char_end=char_end,
    )


def _surface_variants(
    tokens: List[Token], tags: List[str], start: int, end: int, full_text: str
) -> Tuple[str, ...]:
    """Lookup variants: full phrase, sans-auxiliary, lemmatised head."""
    variants: List[str] = [full_text]
    # Without leading auxiliaries: "was awarded" -> "awarded".
    core_start = start
    while (
        core_start < end - 1
        and tokens[core_start].lower in _AUX_WORDS_SKIPPABLE
    ):
        core_start += 1
    if core_start != start:
        stripped = " ".join(t.text for t in tokens[core_start:end])
        variants.append(stripped)
    # Lemmatised head: "studied at" -> "study at"; single "studies" ->
    # "study".
    words = [t.text for t in tokens[core_start:end]]
    if words:
        for lemma in lemma_variants(words[0]):
            candidate = " ".join([lemma] + [w.lower() for w in words[1:]])
            variants.append(candidate)
    deduped: List[str] = []
    for variant in variants:
        lowered = variant.lower()
        if lowered not in (v.lower() for v in deduped):
            deduped.append(variant)
    return tuple(deduped)
