"""Core span data model shared across the linguistic pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


@dataclass(frozen=True)
class Token:
    """A token with character offsets into the source document."""

    text: str
    start: int
    end: int
    index: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_capitalized(self) -> bool:
        return bool(self.text) and self.text[0].isupper()


@dataclass(frozen=True)
class Sentence:
    """A contiguous token range [token_start, token_end)."""

    index: int
    token_start: int
    token_end: int

    def contains_token(self, token_index: int) -> bool:
        return self.token_start <= token_index < self.token_end

    @property
    def length(self) -> int:
        return self.token_end - self.token_start


class SpanKind(Enum):
    """Whether a span is a noun phrase or a relational phrase."""

    NOUN = "noun"
    RELATION = "relation"


@dataclass(frozen=True)
class Span:
    """A mention candidate: a token range with surface text and kind.

    ``token_start`` is inclusive, ``token_end`` exclusive.  Identity (for
    dict keys, graph nodes, gold matching) is the full frozen tuple, so
    two extractions of the same range compare equal.
    """

    text: str
    token_start: int
    token_end: int
    sentence_index: int
    kind: SpanKind
    mention_type: Optional[str] = None
    # Character offsets into the source document, excluded from identity:
    # they are derived from the token list and only used for gold-span
    # alignment in evaluation.
    char_start: int = field(default=-1, compare=False)
    char_end: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.token_end <= self.token_start:
            raise ValueError(
                f"empty span [{self.token_start}, {self.token_end}) for {self.text!r}"
            )
        # Spans key nearly every dict/set on the linking hot path
        # (candidate maps, coherence nodes, session dirty regions); the
        # generated dataclass hash re-hashes the 6-tuple every call, so
        # cache it once.  Same tuple as the generated implementation —
        # the compare=True fields in declaration order.
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.text,
                    self.token_start,
                    self.token_end,
                    self.sentence_index,
                    self.kind,
                    self.mention_type,
                )
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def length(self) -> int:
        return self.token_end - self.token_start

    def covers(self, other: "Span") -> bool:
        """Whether this span's token range contains *other*'s."""
        return (
            self.token_start <= other.token_start
            and other.token_end <= self.token_end
        )

    def same_range(self, other: "Span") -> bool:
        return (
            self.token_start == other.token_start
            and self.token_end == other.token_end
        )


def spans_overlap(a: Span, b: Span) -> bool:
    """Whether two spans share at least one token position."""
    return a.token_start < b.token_end and b.token_start < a.token_end
