"""Lexicon-based part-of-speech tagging.

A closed-class lexicon plus morphological fallbacks, in the spirit of the
lightweight taggers the paper's pipeline chains together.  The verb
lexicon can be extended from the KB's predicate aliases so that relational
surface forms in the target domain are always recognised as verbs.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.nlp.spans import Token

# Universal-dependencies-flavoured tag set.
DET = "DET"
ADP = "ADP"
CCONJ = "CCONJ"
PRON = "PRON"
AUX = "AUX"
VERB = "VERB"
NUM = "NUM"
PUNCT = "PUNCT"
PROPN = "PROPN"
NOUN = "NOUN"
ADV = "ADV"

_DETERMINERS = {"the", "a", "an", "this", "that", "these", "those"}
_PREPOSITIONS = {
    "of", "in", "on", "at", "from", "to", "with", "by", "under", "over",
    "beyond", "for", "about", "into", "as", "during", "after", "before",
}
_CONJUNCTIONS = {"and", "or", "but", "nor"}
_PRONOUNS = {
    "he", "she", "it", "they", "we", "i", "you", "him", "her", "them",
    "his", "hers", "its", "their", "theirs", "our", "us", "me", "my",
}
_AUXILIARIES = {
    "is", "was", "are", "were", "be", "been", "being", "am",
    "has", "have", "had", "having",
    "do", "does", "did",
    "will", "would", "shall", "should", "can", "could", "may", "might", "must",
}
_ADVERBS = {"not", "also", "very", "recently", "later", "often", "never"}

_COMMON_VERBS = {
    "say", "said", "made", "make", "makes", "give", "gave", "took", "take",
    "went", "go", "goes", "became", "become", "becomes", "won", "win",
    "wins", "announced", "announce", "announces", "described", "describe",
    "expected", "expect", "continue", "continues", "offered", "offer",
    "drew", "draw", "picked", "pick", "circulated", "circulate",
    "anticipated", "monitor", "met", "meet", "meets",
}


class PosTagger:
    """Tags a token list; optionally primed with domain lexicons.

    ``extra_verbs`` come from the KB's predicate aliases; ``extra_nominals``
    from the tokens of the KB's entity aliases.  The nominal lexicon keeps
    participle tokens inside entity names ("distributed systems", "three
    point shooting") from being mis-guessed as verbs — the same KB-driven
    spotting the paper's TAGME stage performs.
    """

    def __init__(
        self,
        extra_verbs: Iterable[str] = (),
        extra_nominals: Iterable[str] = (),
    ) -> None:
        self._verbs: Set[str] = set(_COMMON_VERBS)
        for form in extra_verbs:
            self._verbs.add(form.lower())
        self._nominals: Set[str] = {form.lower() for form in extra_nominals}

    @classmethod
    def from_predicate_aliases(
        cls,
        aliases: Iterable[str],
        nominal_tokens: Iterable[str] = (),
    ) -> "PosTagger":
        """Prime the lexicons from the KB's alias vocabulary.

        The verb lexicon takes the head verb of each predicate alias (for
        "was awarded" or "is the sister city of", only the first
        non-auxiliary, non-function token).  ``nominal_tokens`` (entity
        alias vocabulary) populates the nominal lexicon; verb-lexicon
        membership wins on conflict so relational heads stay verbal.
        """
        verbs: Set[str] = set()
        for alias in aliases:
            for word in alias.lower().split():
                if word in _AUXILIARIES or word in _DETERMINERS:
                    continue
                if word in _PREPOSITIONS or word in _CONJUNCTIONS:
                    continue
                verbs.add(word)
                break  # only the head verb of the alias
        tagger = cls(verbs, nominal_tokens)
        tagger._nominals -= tagger._verbs
        return tagger

    def add_verbs(self, forms: Iterable[str]) -> None:
        for form in forms:
            self._verbs.add(form.lower())

    def tag(self, tokens: List[Token]) -> List[str]:
        """One tag per token, same order."""
        tags: List[str] = []
        sentence_start = True
        for token in tokens:
            tag = self._tag_one(token, sentence_start)
            tags.append(tag)
            sentence_start = token.text in {".", "!", "?"}
        return tags

    def _tag_one(self, token: Token, sentence_start: bool) -> str:
        text = token.text
        lower = token.lower
        if not text[0].isalnum():
            return PUNCT
        if text[0].isdigit():
            return NUM
        if lower in _DETERMINERS:
            return DET
        if lower in _PREPOSITIONS:
            return ADP
        if lower in _CONJUNCTIONS:
            return CCONJ
        if lower in _PRONOUNS:
            return PRON
        if lower in _AUXILIARIES:
            return AUX
        if lower in _ADVERBS:
            return ADV
        if lower in self._verbs:
            return VERB
        if lower in self._nominals:
            return NOUN
        if token.is_capitalized and not sentence_start:
            return PROPN
        if token.is_capitalized and sentence_start and lower not in self._verbs:
            # Sentence-initial capitalised tokens are ambiguous; treat
            # unknown ones as proper nouns (document-style text leads with
            # names far more often than with common nouns).
            return PROPN
        if self._looks_verbal(lower):
            return VERB
        return NOUN

    @staticmethod
    def _looks_verbal(lower: str) -> bool:
        """Morphological verb guess for unknown lower-case words."""
        if len(lower) > 4 and lower.endswith("ing"):
            return True
        if len(lower) > 3 and lower.endswith("ed"):
            return True
        return False
