"""KB-driven mention typing (the TAGME-style entity-typing stage).

Sec. 3 Step 1 filters candidate entities by the type the linguistic
tools assign to each noun phrase.  This module provides that typing
signal the way TAGME does: from the KB itself.  A mention's type is the
prior-weighted majority type over its candidate entities, assigned only
when the majority is decisive — an indecisive type would filter out
legitimate candidates and hurt more than it helps.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.kb.alias_index import AliasIndex
from repro.kb.types import TypeTaxonomy


class MentionTyper:
    """Assigns a semantic type to a surface form, conservatively."""

    def __init__(
        self,
        alias_index: AliasIndex,
        taxonomy: Optional[TypeTaxonomy] = None,
        min_confidence: float = 0.75,
    ) -> None:
        self.alias_index = alias_index
        self.taxonomy = taxonomy
        self.min_confidence = min_confidence

    def type_of(self, surface: str) -> Optional[str]:
        """The decisive majority type of *surface*'s candidates, or None.

        Weighted by prior: if 75%+ of the prior mass of the surface's
        candidate entities carries one type, that type is returned.
        Surfaces without candidates, or with mixed-type candidate sets
        (e.g. "Jordan": person vs. country), stay untyped so the filter
        never removes a plausible reading.
        """
        hits = self.alias_index.lookup_entities(surface)
        if not hits:
            return None
        mass: Dict[str, float] = defaultdict(float)
        total = 0.0
        for hit in hits:
            types = self.alias_index.entity_types(hit.concept_id)
            if not types:
                continue
            total += hit.prior
            mass[types[0]] += hit.prior
        if total <= 0.0:
            return None
        best_type, best_mass = max(mass.items(), key=lambda kv: kv[1])
        if best_mass / total >= self.min_confidence:
            return best_type
        return None
