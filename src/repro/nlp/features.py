"""Linguistic features connecting short-text mentions (Sec. 5.1).

The paper (following J-NERD [48]) uses four feature classes to decide
whether adjacent short-text mentions may merge into a long-text mention:

* coordinating conjunctions  — "Romeo *and* Juliet";
* prepositions / subordinating conjunctions — "Storm *on the* Island";
* numbers — "Apollo *11* mission";
* punctuation marks — "Jurassic World*:* Fallen Kingdom".

:func:`classify_gap` inspects the tokens strictly between two spans and
returns the feature class if *every* gap token belongs to one, else None.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.nlp.spans import Span, Token


class LinguisticFeature(Enum):
    COORDINATION = "coordination"
    PREPOSITION = "preposition"
    NUMBER = "number"
    PUNCTUATION = "punctuation"


_COORD_WORDS = {"and", "or"}
_PREP_WORDS = {
    "of", "on", "in", "the", "at", "under", "over", "beyond", "for",
    "from", "to", "with",
}
_PUNCT_MARKS = {":", "-", "'", ","}

# Flat view used by the short-text mention test (Definition 7): a mention
# containing any of these *inside* it is a long-text mention.
FEATURE_WORDS = _COORD_WORDS | _PREP_WORDS


def _classify_token(token: Token) -> Optional[LinguisticFeature]:
    lower = token.lower
    if lower in _COORD_WORDS:
        return LinguisticFeature.COORDINATION
    if lower in _PREP_WORDS:
        return LinguisticFeature.PREPOSITION
    if lower.isdigit():
        return LinguisticFeature.NUMBER
    if token.text in _PUNCT_MARKS:
        return LinguisticFeature.PUNCTUATION
    return None


def classify_gap(
    tokens: List[Token], left_end: int, right_start: int
) -> Optional[LinguisticFeature]:
    """Feature class of the tokens in [left_end, right_start), if any.

    Returns ``None`` when the gap is empty, too long (> 3 tokens), or
    contains a non-feature token.  When the gap mixes classes (e.g.
    "of the") the dominant class is the first non-determiner one.
    """
    if right_start <= left_end:
        return None
    gap = tokens[left_end:right_start]
    if len(gap) > 3:
        return None
    classes = []
    for token in gap:
        cls = _classify_token(token)
        if cls is None:
            return None
        classes.append(cls)
    for cls in classes:
        if cls is not LinguisticFeature.PREPOSITION:
            return cls
    return classes[0]


def contains_feature(tokens: List[Token], span: Span) -> bool:
    """Whether *span* contains a linguistic feature strictly inside it.

    This implements Definition 7: a *short-text* mention contains no
    feature; any internal coordination/preposition/number/punctuation
    token makes it a long-text mention.  Edge tokens are not counted
    (a mention cannot start or end with a connector anyway).
    """
    inner = tokens[span.token_start + 1 : span.token_end - 1]
    return any(_classify_token(token) is not None for token in inner)
