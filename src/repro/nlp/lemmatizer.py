"""Rule-based English lemmatiser for relational phrases.

The paper lemmatises relational phrases with NLTK before candidate
predicate lookup; this module provides the equivalent: an irregular-form
table plus standard suffix stripping.  It intentionally over-generates
variants (:func:`lemma_variants`) because alias lookup can try several
forms cheaply.
"""

from __future__ import annotations

from typing import List

_IRREGULAR = {
    "was": "be", "were": "be", "is": "be", "are": "be", "been": "be",
    "am": "be", "being": "be",
    "has": "have", "had": "have", "having": "have",
    "did": "do", "does": "do", "done": "do",
    "went": "go", "gone": "go",
    "won": "win", "drew": "draw", "drawn": "draw",
    "wrote": "write", "written": "write",
    "made": "make", "gave": "give", "given": "give",
    "took": "take", "taken": "take",
    "became": "become", "met": "meet", "led": "lead",
    "said": "say", "got": "get", "ran": "run", "sat": "sit",
    "held": "hold", "left": "leave", "found": "find",
}


def lemmatize(word: str) -> str:
    """Best-effort lemma of a single word."""
    lower = word.lower()
    if lower in _IRREGULAR:
        return _IRREGULAR[lower]
    variants = _suffix_variants(lower)
    return variants[0] if variants else lower


def lemma_variants(word: str) -> List[str]:
    """All plausible lemmas of *word*, most likely first.

    Includes the word itself (lower-cased) last, so exact-form lookups
    still work for aliases stored in inflected form.
    """
    lower = word.lower()
    variants: List[str] = []
    if lower in _IRREGULAR:
        variants.append(_IRREGULAR[lower])
    variants.extend(v for v in _suffix_variants(lower) if v not in variants)
    if lower not in variants:
        variants.append(lower)
    return variants


def _suffix_variants(lower: str) -> List[str]:
    variants: List[str] = []
    if len(lower) > 4 and lower.endswith("ies"):
        variants.append(lower[:-3] + "y")
    if len(lower) > 4 and lower.endswith("ied"):
        variants.append(lower[:-3] + "y")
    if len(lower) > 4 and lower.endswith("sses"):
        variants.append(lower[:-2])
    if len(lower) > 3 and lower.endswith("es"):
        variants.append(lower[:-2])
        variants.append(lower[:-1])
    elif len(lower) > 2 and lower.endswith("s") and not lower.endswith("ss"):
        variants.append(lower[:-1])
    if len(lower) > 4 and lower.endswith("ing"):
        stem = lower[:-3]
        variants.append(stem)
        variants.append(stem + "e")
        if len(stem) > 1 and stem[-1] == stem[-2]:
            variants.append(stem[:-1])
    if len(lower) > 3 and lower.endswith("ed"):
        stem = lower[:-2]
        variants.append(stem)
        variants.append(lower[:-1])  # e.g. "awarded" -> "awarde" (filtered by lookup)
        if len(stem) > 1 and stem[-1] == stem[-2]:
            variants.append(stem[:-1])
    return variants


def lemmatize_phrase(phrase: str) -> str:
    """Lemmatise the first word of a multi-word relational phrase.

    "studied at" -> "study at"; later words (particles, prepositions) are
    left intact because predicate aliases keep them inflected.
    """
    words = phrase.split()
    if not words:
        return phrase
    return " ".join([lemmatize(words[0])] + words[1:])
