"""Regex tokenizer with character offsets.

Word tokens are maximal runs of word characters (periods inside
abbreviations such as "Dr." stay attached); every other non-space
character becomes a single punctuation token.  Offsets are preserved so
gold spans can be aligned back to the source text.
"""

from __future__ import annotations

import re
from typing import List

from repro.nlp.spans import Token

_TOKEN_RE = re.compile(
    r"[A-Za-z0-9]+(?:[''][A-Za-z]+)?"  # words, incl. simple contractions
    r"|[^\sA-Za-z0-9]"  # single punctuation marks
)


def tokenize(text: str) -> List[Token]:
    """Tokenise *text*, returning :class:`Token` objects with offsets."""
    tokens: List[Token] = []
    for match in _TOKEN_RE.finditer(text):
        tokens.append(
            Token(
                text=match.group(0),
                start=match.start(),
                end=match.end(),
                index=len(tokens),
            )
        )
    return tokens


def detokenize(tokens: List[Token], text: str) -> str:
    """Original text slice spanned by *tokens* (must be non-empty)."""
    if not tokens:
        raise ValueError("cannot detokenize an empty token list")
    return text[tokens[0].start : tokens[-1].end]
