"""Punctuation-based sentence splitting over the token stream."""

from __future__ import annotations

from typing import List

from repro.nlp.spans import Sentence, Token

_TERMINATORS = {".", "!", "?"}


def split_sentences(tokens: List[Token]) -> List[Sentence]:
    """Partition the token stream into sentences.

    A sentence ends at a terminator token; the terminator belongs to the
    sentence it closes.  Trailing tokens without a terminator form a final
    sentence.  Every token belongs to exactly one sentence.
    """
    sentences: List[Sentence] = []
    start = 0
    for token in tokens:
        if token.text in _TERMINATORS:
            sentences.append(
                Sentence(index=len(sentences), token_start=start, token_end=token.index + 1)
            )
            start = token.index + 1
    if start < len(tokens):
        sentences.append(
            Sentence(index=len(sentences), token_start=start, token_end=len(tokens))
        )
    return sentences


def sentence_of_token(sentences: List[Sentence], token_index: int) -> Sentence:
    """The sentence containing *token_index* (sentences are sorted)."""
    for sentence in sentences:
        if sentence.contains_token(token_index):
            return sentence
    raise IndexError(f"token index {token_index} outside all sentences")
