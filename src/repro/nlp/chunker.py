"""Noun-phrase candidate generation.

TENET considers *all possible spans* as potential mentions (Sec. 1, the
end-to-end extraction problem) and lets the canopy machinery choose among
overlapping ones.  The chunker therefore produces, per sentence:

* **maximal nominal regions** — longest token runs of nominals optionally
  joined by connector tokens (determiners, prepositions, conjunctions,
  title punctuation);
* **candidate spans** inside each region — every sub-span that starts and
  ends on a nominal token (optionally with a leading determiner, since KB
  titles such as "The Storm" include it), kept when it is (a) a gazetteer
  hit, (b) a contiguous nominal run, or (c) the full region.

The gazetteer filter is the TAGME-style KB-driven spotting the paper's
pipeline performs against the Solr alias index.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.nlp import pos
from repro.nlp.spans import Sentence, Span, SpanKind, Token

_NOMINAL_TAGS = {pos.PROPN, pos.NOUN, pos.NUM}
_CONNECTOR_TAGS = {pos.DET, pos.ADP, pos.CCONJ}
_CONNECTOR_PUNCT = {":", "-", "'"}


class NounPhraseChunker:
    """Generates overlapping noun-phrase candidate spans."""

    def __init__(
        self,
        gazetteer: Optional[Callable[[str], bool]] = None,
        max_span_tokens: int = 8,
    ) -> None:
        self._gazetteer = gazetteer
        self.max_span_tokens = max_span_tokens

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def regions(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        sentences: List[Sentence],
    ) -> List[Span]:
        """Maximal nominal regions as NOUN spans, in document order."""
        regions: List[Span] = []
        for sentence in sentences:
            regions.extend(
                self._sentence_regions(text, tokens, tags, sentence)
            )
        return regions

    def _sentence_regions(
        self, text: str, tokens: List[Token], tags: List[str], sentence: Sentence
    ) -> List[Span]:
        regions: List[Span] = []
        i = sentence.token_start
        while i < sentence.token_end:
            if tags[i] not in _NOMINAL_TAGS and not self._is_title_det(tokens, tags, i):
                i += 1
                continue
            start = i
            last_nominal = i if tags[i] in _NOMINAL_TAGS else -1
            j = i + 1
            while j < sentence.token_end:
                if tags[j] in _NOMINAL_TAGS:
                    last_nominal = j
                    j += 1
                    continue
                if self._is_connector(tokens[j], tags[j]):
                    # A connector may only continue the region if a nominal
                    # follows before the region rules run out.
                    k = j + 1
                    while k < sentence.token_end and self._is_connector(
                        tokens[k], tags[k]
                    ):
                        k += 1
                    if (
                        k < sentence.token_end
                        and tags[k] in _NOMINAL_TAGS
                        and k - j <= 3
                    ):
                        j = k
                        continue
                break
            if last_nominal >= start:
                end = last_nominal + 1
                regions.append(_make_span(text, tokens, start, end, sentence.index))
            i = max(j, last_nominal + 1, i + 1)
        return regions

    @staticmethod
    def _is_title_det(tokens: List[Token], tags: List[str], i: int) -> bool:
        """A capitalised determiner opening a title ("The Storm ...")."""
        return (
            tags[i] == pos.DET
            and tokens[i].is_capitalized
            and i + 1 < len(tokens)
            and tags[i + 1] in _NOMINAL_TAGS
        )

    @staticmethod
    def _is_connector(token: Token, tag: str) -> bool:
        if tag in _CONNECTOR_TAGS:
            return True
        return tag == pos.PUNCT and token.text in _CONNECTOR_PUNCT

    # ------------------------------------------------------------------
    # candidate spans
    # ------------------------------------------------------------------
    def chunk(
        self,
        text: str,
        tokens: List[Token],
        tags: List[str],
        sentences: List[Sentence],
    ) -> List[Span]:
        """All candidate noun-phrase spans, deduplicated, document order."""
        candidates: List[Span] = []
        seen = set()
        for region in self.regions(text, tokens, tags, sentences):
            for span in self._region_candidates(text, tokens, tags, region):
                key = (span.token_start, span.token_end)
                if key not in seen:
                    seen.add(key)
                    candidates.append(span)
        candidates.sort(key=lambda s: (s.token_start, s.token_end))
        return candidates

    def _region_candidates(
        self, text: str, tokens: List[Token], tags: List[str], region: Span
    ) -> List[Span]:
        lo, hi = region.token_start, region.token_end
        spans: List[Span] = [region]
        # Contiguous nominal runs (no connectors inside) — always kept;
        # these are the short-text mention building blocks.
        run_start = None
        for i in range(lo, hi + 1):
            is_nominal = i < hi and tags[i] in _NOMINAL_TAGS
            if is_nominal and run_start is None:
                run_start = i
            elif not is_nominal and run_start is not None:
                if (run_start, i) != (lo, hi):
                    spans.append(
                        _make_span(text, tokens, run_start, i, region.sentence_index)
                    )
                run_start = None
        # Gazetteer-confirmed sub-spans (incl. leading determiner forms).
        if self._gazetteer is not None:
            for start in range(lo, hi):
                if tags[start] not in _NOMINAL_TAGS and not self._is_title_det(
                    tokens, tags, start
                ):
                    continue
                max_end = min(hi, start + self.max_span_tokens)
                for end in range(start + 1, max_end + 1):
                    if tags[end - 1] not in _NOMINAL_TAGS:
                        continue
                    if (start, end) == (lo, hi):
                        continue
                    surface = text[tokens[start].start : tokens[end - 1].end]
                    if self._gazetteer(surface):
                        spans.append(
                            _make_span(
                                text, tokens, start, end, region.sentence_index
                            )
                        )
        unique = {}
        for span in spans:
            unique[(span.token_start, span.token_end)] = span
        return list(unique.values())


def _make_span(
    text: str, tokens: List[Token], start: int, end: int, sentence_index: int
) -> Span:
    char_start = tokens[start].start
    char_end = tokens[end - 1].end
    return Span(
        text=text[char_start:char_end],
        token_start=start,
        token_end=end,
        sentence_index=sentence_index,
        kind=SpanKind.NOUN,
        char_start=char_start,
        char_end=char_end,
    )
