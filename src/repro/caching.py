"""Shared bounded LRU cache primitive.

Lives at the top level (next to :mod:`repro.textnorm`) because both the
KB layer (:class:`repro.kb.alias_index.AliasIndex`'s fuzzy-lookup memo)
and the serving layer (:mod:`repro.service.cache`) need the same
thread-safe bounded cache without introducing a dependency cycle
between ``repro.kb`` and ``repro.service``.

The cache is deliberately simple: an :class:`collections.OrderedDict`
guarded by a lock, with hit/miss/eviction counters.  Values stored in it
must be immutable (tuples of frozen dataclasses, floats) so that a hit
can be handed to concurrent callers without copying.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

_MISSING = object()


@dataclass
class CacheStats:
    """Monotonic counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Thread-safe bounded LRU mapping with hit/miss statistics.

    ``get_or_compute`` runs the compute callable *outside* the lock: for
    the pure-function memos this repo uses (alias lookups, candidate
    generation, pairwise cosine), a duplicated computation under
    contention is idempotent and cheaper than serialising every worker
    behind one lock.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # mapping-style access
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking recency) or *default*."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._stats.misses += 1
                return default
            self._data.move_to_end(key)
            self._stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh *key*, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._stats.evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Cached value for *key*, computing (and storing) it on a miss."""
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __getitem__(self, key: Hashable) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self._stats

    def snapshot(self) -> Dict[str, float]:
        """JSON-compatible view: size, capacity, and counters.

        The stats are read under the same lock that guards their
        mutation, so the reported hit/miss/eviction triple (and the
        hit rate derived from it) is always one consistent state, never
        a torn read taken mid-update by a concurrent worker.
        """
        with self._lock:
            payload: Dict[str, float] = {
                "size": len(self._data),
                "maxsize": self.maxsize,
            }
            payload.update(self._stats.snapshot())
        return payload


def make_cache(maxsize: Optional[int]) -> Optional[LRUCache]:
    """``LRUCache(maxsize)`` or ``None`` when *maxsize* is falsy.

    Callers treat ``None`` as "caching disabled", keeping the unhooked
    code path byte-identical to the pre-cache behaviour.
    """
    if not maxsize or maxsize < 1:
        return None
    return LRUCache(maxsize)
