"""Multi-process sharded serving over shared snapshot state.

CPython's GIL caps the thread-pooled :class:`LinkingService` at roughly
one core of linking throughput no matter how many pool threads it runs.
This module shards the engine across N worker *processes*, each
warm-starting from one shared :mod:`repro.snapshot` artifact: the KB
dump, serialized alias index, and gold sets load from the same files in
every worker (page-cache shared after the first read), and the
embedding matrix is memory-mapped read-only, so the resident cost of a
worker is one context's Python objects — the big numpy matrix is mapped
once by the OS and shared by all of them.

Shape:

* :func:`_worker_main` — the spawn entry point.  A worker loads the
  snapshot, builds its own single-threaded :class:`LinkingService`, and
  serves ``("link", seq, request, deadline)`` messages from a duplex
  pipe by calling ``service.handle`` — the exact code path of the
  single-process engine, which is what makes cluster output
  byte-identical to it.
* :class:`WorkerHandle` — front-end side of one worker: the process,
  the pipe, a reader thread resolving in-flight futures, and liveness
  bookkeeping.  A broken pipe fails every in-flight future with
  :class:`WorkerDiedError` — never a hang.
* :class:`WorkerRegistry` — owns the handles: spawn, least-loaded pick
  with a consistent-hash tiebreak, death detection, and respawn from
  the same snapshot.  It is deliberately a small, self-contained
  object so a future multi-host registry can replace it behind the
  same ``pick``/``handles``/``stop_all`` surface.
* :class:`ClusterService` — a :class:`LinkingService` subclass whose
  :meth:`~ClusterService.handle` routes to a worker instead of linking
  inline.  Everything in front of ``handle`` — admission control, rate
  limiting, degraded mode, deadlines, micro-batching, the HTTP server —
  is inherited unchanged.
* :func:`create_cluster_service` — the factory behind
  ``serve --cluster`` / ``bench --cluster``: resolves (or builds) the
  snapshot, spawns the workers, waits for every ready handshake.

Deadlines preserve the PR 3 contract across the process boundary: the
envelope carries the *absolute* ``time.monotonic`` anchor and expiry
(CLOCK_MONOTONIC is system-wide on Linux), so the worker reconstructs a
:class:`Deadline` anchored at front-end submission — queue time and
pipe time count against the budget, and a worker that trips mid-run
replies with the salvaged prior-only partial exactly like the
single-process engine.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import shutil
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import TenetConfig
from repro.core.deadline import Deadline
from repro.obs import StructuredLogger, Trace, Tracer
from repro.service.engine import LinkingService, ServiceConfig
from repro.service.schema import LinkRequest, LinkResponse, ServiceError
from repro.snapshot.store import SnapshotSpec, load_or_build, load_snapshot

#: Start method: ``spawn`` is mandatory — the front end runs pool,
#: batcher, admission, and reader threads, and forking a threaded
#: process is undefined behaviour territory (inherited locks mid-hold).
_MP_START_METHOD = "spawn"


class ClusterError(RuntimeError):
    """Cluster bring-up or dispatch failed (worker never became ready)."""


class WorkerDiedError(RuntimeError):
    """The worker process died with requests in flight (or before send)."""


class WorkerReplyError(RuntimeError):
    """The worker replied with a failure instead of a response payload."""


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the multi-process layer (see :class:`ServiceConfig` for
    the per-process engine knobs, which workers inherit)."""

    processes: int = 2
    #: Seconds to wait for each worker's ready handshake at boot.
    ready_timeout_seconds: float = 180.0
    #: Seconds a graceful shutdown waits for a worker to drain its pipe
    #: before escalating to terminate/kill.
    drain_timeout_seconds: float = 30.0
    #: Respawn a replacement (from the same snapshot) when a worker dies.
    respawn: bool = True
    #: Virtual points per worker on the consistent-hash ring.
    hash_points: int = 64
    #: Extra seconds the front end waits for a worker reply past the
    #: request deadline + cancel grace (covers pipe latency) before
    #: degrading front-end side.
    reply_grace_seconds: float = 0.25
    #: Re-hash snapshot artifacts in every worker.  Off by default: the
    #: front end verifies the snapshot once when it loads its own
    #: context, and workers boot from the very same directory.
    verify_snapshot: bool = False

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError(f"processes must be >= 1, got {self.processes}")
        if self.hash_points < 1:
            raise ValueError(f"hash_points must be >= 1, got {self.hash_points}")
        if self.drain_timeout_seconds < 0 or self.ready_timeout_seconds <= 0:
            raise ValueError("cluster timeouts must be positive")
        if self.reply_grace_seconds < 0:
            raise ValueError("reply_grace_seconds must be >= 0")


@dataclass(frozen=True)
class _WorkerBoot:
    """Everything a spawned worker needs (picklable by construction)."""

    worker_id: str
    snapshot_path: str
    service_config: ServiceConfig
    linker_config: TenetConfig
    seed_cache: bool = True
    verify_snapshot: bool = False


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _counter_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Counters that moved since *before* (monotonic counters only)."""
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def _trace_spans(tracer: Tracer, trace_id: Optional[str]) -> List[Dict[str, Any]]:
    """The finished worker-side trace's span payloads (or empty)."""
    if trace_id is None:
        return []
    payload = tracer.get(trace_id)
    if payload is None:
        return []
    return list(payload.get("spans", []))


def _worker_main(boot: _WorkerBoot, conn) -> None:
    """Entry point of one worker process (must stay module-top-level so
    the ``spawn`` start method can import it by qualified name).

    Boots a full single-threaded :class:`LinkingService` from the shared
    snapshot and serves pipe messages serially.  Every received ``seq``
    is answered — with ``("done", seq, payload)`` or
    ``("failed", seq, message)`` — so the front end never waits on a
    message a live worker swallowed.
    """
    started = time.perf_counter()
    warm = load_snapshot(
        boot.snapshot_path, mmap=True, verify=boot.verify_snapshot
    )
    if boot.seed_cache:
        warm.seed_fuzzy_cache()
    service = LinkingService(
        warm.context,
        config=boot.service_config,
        linker_config=boot.linker_config,
        snapshot_info=warm.info(),
    )
    last_counters: Dict[str, int] = {}
    try:
        conn.send(("ready", boot.worker_id, time.perf_counter() - started))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            seq = message[1]
            try:
                if kind == "link":
                    _kind, seq, request_json, anchor, expires = message
                    request = LinkRequest.from_json(request_json)
                    # Reconstruct the submission-anchored deadline: both
                    # instants are absolute time.monotonic values, valid
                    # across processes on this host.
                    deadline = Deadline(expires_at=expires)
                    deadline.started = anchor
                    response = service.handle(request, deadline)
                    counters = service.metrics.snapshot()["counters"]
                    payload = {
                        "response": response.to_json(),
                        "spans": _trace_spans(service.tracer, response.trace_id),
                        "counters": _counter_delta(last_counters, counters),
                    }
                    last_counters = counters
                    conn.send(("done", seq, payload))
                elif kind == "sleep":
                    # Test/diagnostic aid: park the (serial) worker loop
                    # for a bounded time, so drain and worker-death
                    # tests can deterministically catch it mid-request.
                    _kind, seq, seconds = message
                    time.sleep(min(float(seconds), 60.0))
                    conn.send(("done", seq, {"slept": float(seconds)}))
                else:
                    conn.send(("failed", seq, f"unknown message kind {kind!r}"))
            except Exception as exc:  # noqa: BLE001 - reply, don't die
                try:
                    conn.send(("failed", seq, f"{type(exc).__name__}: {exc}"))
                except (OSError, BrokenPipeError, ValueError):
                    break
    finally:
        service.close()
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# front-end side of one worker
# ---------------------------------------------------------------------------

class WorkerHandle:
    """One worker process as seen from the front end.

    A dedicated reader thread drains the pipe and resolves the pending
    future keyed by ``seq``.  When the pipe breaks — worker killed,
    OOMed, or exited — every in-flight future fails with
    :class:`WorkerDiedError` and the registry's death callback fires
    exactly once, so no caller ever hangs on a dead worker.
    """

    def __init__(
        self,
        boot: _WorkerBoot,
        mp_context,
        on_death: Optional[Callable[["WorkerHandle"], None]] = None,
    ) -> None:
        self.worker_id = boot.worker_id
        self.boot = boot
        self.boot_seconds: Optional[float] = None
        self.alive = False
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self._on_death = on_death
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: Dict[int, "Future[Any]"] = {}
        self._seq = 0
        self._death_handled = False
        parent_conn, child_conn = mp_context.Pipe(duplex=True)
        self._conn = parent_conn
        self.process = mp_context.Process(
            target=_worker_main,
            args=(boot, child_conn),
            name=f"tenet-worker-{self.worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"tenet-cluster-read-{self.worker_id}",
            daemon=True,
        )

    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    def wait_ready(self, timeout: float) -> None:
        """Block until the worker's ready handshake; raise on failure."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self.process.is_alive() and not self._conn.poll():
                break
            if self._conn.poll(min(remaining, 0.25)):
                try:
                    message = self._conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "ready":
                    self.boot_seconds = float(message[2])
                    with self._lock:
                        self.alive = True
                    self._reader.start()
                    return
                break
        self.process.terminate()
        self.process.join(timeout=2.0)
        raise ClusterError(
            f"worker {self.worker_id} never became ready "
            f"(exitcode={self.process.exitcode})"
        )

    # ------------------------------------------------------------------
    def dispatch(
        self, request: LinkRequest, deadline: Optional[Deadline]
    ) -> "Future[Dict[str, Any]]":
        """Ship one link request; the future resolves with the worker's
        reply payload (or :class:`WorkerDiedError`)."""
        anchor = deadline.started if deadline is not None else time.monotonic()
        expires = deadline.expires_at if deadline is not None else None
        return self._submit("link", request.to_json(), anchor, expires)

    def call(self, kind: str, *args: Any) -> "Future[Any]":
        """Ship a non-link control message (``sleep`` — test aid)."""
        return self._submit(kind, *args)

    def _submit(self, kind: str, *args: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        with self._lock:
            if not self.alive:
                raise WorkerDiedError(f"worker {self.worker_id} is not alive")
            self._seq += 1
            seq = self._seq
            self._pending[seq] = future
            if kind == "link":
                self.dispatched += 1
        try:
            with self._send_lock:
                self._conn.send((kind, seq) + args)
        except (OSError, BrokenPipeError, ValueError) as exc:
            with self._lock:
                self._pending.pop(seq, None)
            raise WorkerDiedError(
                f"worker {self.worker_id}: pipe closed ({exc})"
            ) from exc
        return future

    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "done":
                _kind, seq, payload = message
                future = self._pop(seq)
                with self._lock:
                    self.completed += 1
                if future is not None and future.set_running_or_notify_cancel():
                    future.set_result(payload)
            elif kind == "failed":
                _kind, seq, detail = message
                future = self._pop(seq)
                with self._lock:
                    self.failed += 1
                if future is not None and future.set_running_or_notify_cancel():
                    future.set_exception(WorkerReplyError(str(detail)))
            # unknown message kinds are dropped (forward compatibility)
        self._mark_dead()
        if self._on_death is not None:
            self._on_death(self)

    def _pop(self, seq: int) -> Optional["Future[Any]"]:
        with self._lock:
            return self._pending.pop(seq, None)

    def _mark_dead(self) -> None:
        with self._lock:
            if self._death_handled:
                return
            self._death_handled = True
            self.alive = False
            pending = list(self._pending.values())
            self._pending.clear()
            self.failed += len(pending)
        for future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    WorkerDiedError(
                        f"worker {self.worker_id} died with the request in flight"
                    )
                )
        self.process.join(timeout=1.0)

    # ------------------------------------------------------------------
    def stop(self, drain_timeout: float) -> None:
        """Graceful stop: send the sentinel, wait, then escalate."""
        with self._lock:
            alive = self.alive
        if alive:
            try:
                with self._send_lock:
                    self._conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        self.process.join(timeout=drain_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=2.0)
        try:
            self._conn.close()
        except OSError:
            pass
        # Closing the pipe unblocks the reader thread, whose exit path
        # fails any leftover in-flight futures — nothing hangs.
        if self._reader.is_alive():
            self._reader.join(timeout=5.0)
        self._mark_dead()

    def kill(self) -> None:
        """Hard-kill the process (worker-death tests and escalation)."""
        self.process.kill()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "id": self.worker_id,
                "pid": self.pid,
                "alive": self.alive,
                "inflight": len(self._pending),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "boot_seconds": self.boot_seconds,
            }


# ---------------------------------------------------------------------------
# registry: pick / death / respawn
# ---------------------------------------------------------------------------

class _HashRing:
    """Consistent-hash ring over worker ids (sha1-pointed).

    Used as the deterministic tiebreak of least-loaded dispatch: when
    several workers share the minimum inflight count, the same document
    key always lands on the same worker, which keeps any per-worker
    residency (page cache, linking caches) stable across requests.
    """

    def __init__(self, points: int = 64) -> None:
        self._points = points
        self._ring: List[Tuple[int, str]] = []

    @staticmethod
    def _hash(value: str) -> int:
        return int(hashlib.sha1(value.encode("utf-8")).hexdigest()[:16], 16)

    def add(self, worker_id: str) -> None:
        for i in range(self._points):
            bisect.insort(self._ring, (self._hash(f"{worker_id}:{i}"), worker_id))

    def pick(self, key: str, allowed: Sequence[str]) -> Optional[str]:
        if not self._ring:
            return None
        allowed_set = set(allowed)
        if not allowed_set:
            return None
        start = bisect.bisect_left(self._ring, (self._hash(key), ""))
        n = len(self._ring)
        for offset in range(n):
            _point, worker_id = self._ring[(start + offset) % n]
            if worker_id in allowed_set:
                return worker_id
        return None


class WorkerRegistry:
    """In-process registry of worker processes.

    Owns spawn, dispatch selection (least-loaded with a consistent-hash
    tiebreak), death detection, and respawn-from-snapshot.  The surface
    (``start`` / ``pick`` / ``handles`` / ``get`` / ``begin_close`` /
    ``stop_all``) is the pluggability seam for a future multi-host
    registry: :class:`ClusterService` only ever talks to these methods.
    """

    def __init__(
        self,
        config: ClusterConfig,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self.config = config
        self._mp = multiprocessing.get_context(_MP_START_METHOD)
        self._lock = threading.Lock()
        self._workers: Dict[str, WorkerHandle] = {}
        self._ring = _HashRing(points=config.hash_points)
        self._closing = False
        self._logger = logger
        self.deaths = 0
        self.respawns = 0

    # ------------------------------------------------------------------
    def start(self, boots: Sequence[_WorkerBoot]) -> None:
        """Spawn every worker, then wait for every ready handshake.

        Spawning first and handshaking second boots the fleet in
        parallel — worker N loads the snapshot while worker 0 is still
        importing numpy.  Any boot failure tears the whole fleet down.
        """
        handles: List[WorkerHandle] = []
        try:
            for boot in boots:
                handles.append(
                    WorkerHandle(boot, self._mp, on_death=self._handle_death)
                )
            for handle in handles:
                handle.wait_ready(self.config.ready_timeout_seconds)
        except BaseException:
            for handle in handles:
                handle.stop(drain_timeout=0.0)
            raise
        with self._lock:
            for handle in handles:
                self._workers[handle.worker_id] = handle
                self._ring.add(handle.worker_id)

    # ------------------------------------------------------------------
    def handles(self) -> List[WorkerHandle]:
        with self._lock:
            return list(self._workers.values())

    def get(self, worker_id: str) -> Optional[WorkerHandle]:
        with self._lock:
            return self._workers.get(worker_id)

    def pick(self, key: str) -> Tuple[Optional[WorkerHandle], str]:
        """Least-loaded alive worker; consistent-hash tiebreak on *key*.

        Returns ``(handle, policy)`` where policy is ``"least_loaded"``
        when the inflight minimum was unique and ``"hash_fallback"``
        when the ring broke the tie — or ``(None, "none")`` with no
        alive worker.
        """
        with self._lock:
            alive = [w for w in self._workers.values() if w.alive]
            if not alive:
                return None, "none"
            loads = [(w.inflight, w.worker_id) for w in alive]
            minimum = min(load for load, _wid in loads)
            least = [wid for load, wid in loads if load == minimum]
            if len(least) == 1:
                return self._workers[least[0]], "least_loaded"
            picked = self._ring.pick(key, least)
            if picked is None:  # ring empty (cannot happen after start)
                picked = sorted(least)[0]
            return self._workers[picked], "hash_fallback"

    # ------------------------------------------------------------------
    def _handle_death(self, handle: WorkerHandle) -> None:
        """Reader-thread callback: count the death, respawn in place."""
        with self._lock:
            if self._closing:
                return
            if self._workers.get(handle.worker_id) is not handle:
                return  # already replaced
            self.deaths += 1
            respawn = self.config.respawn
        if self._logger is not None and self._logger.enabled:
            self._logger.log(
                "cluster.worker_died",
                level="error",
                worker=handle.worker_id,
                pid=handle.pid,
                exitcode=handle.process.exitcode,
                inflight_failed=handle.failed,
            )
        if not respawn:
            return
        replacement = WorkerHandle(
            handle.boot, self._mp, on_death=self._handle_death
        )
        try:
            replacement.wait_ready(self.config.ready_timeout_seconds)
        except ClusterError:
            return
        with self._lock:
            if self._closing:
                closing = True
            else:
                closing = False
                self._workers[handle.worker_id] = replacement
                self.respawns += 1
        if closing:
            replacement.stop(drain_timeout=0.0)
            return
        if self._logger is not None and self._logger.enabled:
            self._logger.log(
                "cluster.worker_respawned",
                worker=replacement.worker_id,
                pid=replacement.pid,
                boot_seconds=replacement.boot_seconds,
            )

    # ------------------------------------------------------------------
    def begin_close(self) -> None:
        """Stop respawns; the drain that follows uses the live fleet."""
        with self._lock:
            self._closing = True

    def stop_all(self, drain_timeout: float) -> None:
        self.begin_close()
        for handle in self.handles():
            handle.stop(drain_timeout)

    def stats(self) -> Dict[str, Any]:
        handles = self.handles()
        workers = [handle.stats() for handle in handles]
        return {
            "workers": len(workers),
            "alive": sum(1 for w in workers if w["alive"]),
            "inflight": sum(w["inflight"] for w in workers),
            "deaths": self.deaths,
            "respawns": self.respawns,
            "per_worker": workers,
        }


# ---------------------------------------------------------------------------
# the sharded service
# ---------------------------------------------------------------------------

#: Span attribute keys that would collide with Trace.record parameters.
_RESERVED_SPAN_KEYS = frozenset({"name", "duration", "status", "self"})


class ClusterService(LinkingService):
    """A :class:`LinkingService` whose linking happens in N processes.

    Only :meth:`handle` changes: instead of running the linker inline it
    ships the request (with its submission-anchored deadline) over a
    pipe to a worker picked least-loaded (consistent-hash tiebreak on
    the document id) and rehydrates the worker's
    :class:`~repro.service.schema.LinkResponse`.  Every request path —
    ``link`` / ``submit`` / ``link_batch`` / the admitted HTTP paths —
    funnels through ``handle``, so admission control, rate limiting,
    deadline enforcement, micro-batching, and the shutdown-drain
    contract are all inherited verbatim.

    The front end keeps its own warm context (from the same snapshot)
    for the degraded-mode prior-only fast path and caller-side deadline
    fallbacks, which therefore stay byte-compatible with the
    single-process engine.
    """

    def __init__(
        self,
        context,
        config: ServiceConfig = ServiceConfig(),
        linker_config: TenetConfig = TenetConfig(),
        cluster_config: ClusterConfig = ClusterConfig(),
        snapshot_path: Union[str, Path, None] = None,
        logger: Optional[StructuredLogger] = None,
        snapshot_info: Optional[Dict[str, Any]] = None,
        seed_cache: bool = True,
        owned_store: Optional[Path] = None,
    ) -> None:
        if snapshot_path is None:
            raise ClusterError(
                "ClusterService needs a snapshot directory to boot workers "
                "from (use create_cluster_service to build one)"
            )
        super().__init__(
            context,
            config=config,
            linker_config=linker_config,
            logger=logger,
            snapshot_info=snapshot_info,
        )
        self.cluster_config = cluster_config
        self._owned_store = owned_store
        self._registry = WorkerRegistry(cluster_config, logger=self.logger)
        worker_config = replace(
            config,
            workers=1,
            # Workers must trace whenever the front end does, explicitly
            # (the env default would otherwise decide per-process).
            trace_enabled=self.tracer.enabled,
        )
        boots = [
            _WorkerBoot(
                worker_id=f"w{i}",
                snapshot_path=str(snapshot_path),
                service_config=worker_config,
                linker_config=linker_config,
                seed_cache=seed_cache,
                verify_snapshot=cluster_config.verify_snapshot,
            )
            for i in range(cluster_config.processes)
        ]
        try:
            self._registry.start(boots)
        except BaseException:
            super().close()
            if owned_store is not None:
                shutil.rmtree(owned_store, ignore_errors=True)
            raise
        self.metrics.set_gauge("cluster.workers", cluster_config.processes)

    # ------------------------------------------------------------------
    @property
    def registry(self) -> WorkerRegistry:
        return self._registry

    @staticmethod
    def _dispatch_key(request: LinkRequest) -> str:
        """The consistent-hash key: document id, else the text itself."""
        return request.request_id if request.request_id else request.text

    # ------------------------------------------------------------------
    def handle(
        self,
        request: LinkRequest,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        started = time.perf_counter()
        if deadline is None:
            deadline = Deadline.after(self._timeout_for(request))
        if trace is None:
            trace = self.tracer.start(request.request_id)
        if trace is not None:
            queue_wait = max(0.0, trace.elapsed())
            trace.record("queue_wait", queue_wait)
            self.metrics.observe("latency.queue_wait", queue_wait)
        self.metrics.incr("requests.total")
        if self._degraded_mode.active:
            # Overload valve stays front-end local: prior-only answers
            # are cheap enough to not be worth a pipe round-trip.
            return self._finalize(
                self._respond_degraded_mode(request, started, trace), trace, None
            )
        worker, policy = self._registry.pick(self._dispatch_key(request))
        if worker is None:
            self.metrics.incr("cluster.no_worker")
            return self._finalize(
                LinkResponse(
                    request_id=request.request_id,
                    elapsed_seconds=time.perf_counter() - started,
                    error=ServiceError(
                        "unavailable", "no linker worker is available"
                    ),
                ),
                trace,
                None,
            )
        self.metrics.incr(f"cluster.dispatch.{policy}")
        if trace is not None:
            trace.annotate(worker=worker.worker_id)
        try:
            pending = worker.dispatch(request, deadline)
        except WorkerDiedError:
            return self._finalize(
                self._worker_lost_response(request, worker, started, trace),
                trace,
                None,
            )
        timeout = deadline.remaining()
        if timeout is not None:
            timeout += (
                self.config.cancel_grace_seconds
                + self.cluster_config.reply_grace_seconds
            )
        try:
            payload = pending.result(timeout)
        except WorkerDiedError:
            return self._finalize(
                self._worker_lost_response(request, worker, started, trace),
                trace,
                None,
            )
        except FutureTimeoutError:
            # The worker blew past deadline + grace without replying;
            # degrade front-end side exactly like the single-process
            # caller would (the worker's eventual reply is discarded by
            # the already-resolved... by the abandoned future).
            deadline.cancel()
            self.metrics.incr("cluster.reply_timeouts")
            response = self._degrade(request, deadline, trace)
            if trace is not None:
                trace.mark_aborted("cluster_reply")
                self.tracer.finish(trace)
            return response
        except Exception as exc:  # noqa: BLE001 - worker-side failure reply
            self.metrics.incr("requests.errors")
            return self._finalize(
                LinkResponse(
                    request_id=request.request_id,
                    elapsed_seconds=time.perf_counter() - started,
                    error=ServiceError(
                        "internal", f"{type(exc).__name__}: {exc}"
                    ),
                ),
                trace,
                None,
            )
        return self._finalize(
            self._absorb_reply(request, worker, payload, started, trace),
            trace,
            None,
        )

    # ------------------------------------------------------------------
    def _absorb_reply(
        self,
        request: LinkRequest,
        worker: WorkerHandle,
        payload: Dict[str, Any],
        started: float,
        trace: Optional[Trace],
    ) -> LinkResponse:
        """Rehydrate the reply and fold its observability into /metrics."""
        response = LinkResponse.from_json(payload["response"])
        # Per-worker counter fold-in: the worker ships the delta of its
        # own registry since its last reply; merge_counters applies the
        # whole batch atomically under the registry lock.
        self.metrics.merge_counters(
            payload.get("counters", {}),
            prefix=f"cluster.worker.{worker.worker_id}.",
        )
        if trace is not None:
            for span in payload.get("spans", []):
                attributes = {
                    key: value
                    for key, value in (span.get("attributes") or {}).items()
                    if key not in _RESERVED_SPAN_KEYS
                }
                attributes["worker"] = worker.worker_id
                trace.record(
                    str(span.get("name", "worker_span")),
                    float(span.get("duration_seconds", 0.0)),
                    status=str(span.get("status", "ok")),
                    **attributes,
                )
        elapsed = time.perf_counter() - started
        response = replace(
            response, request_id=request.request_id, elapsed_seconds=elapsed
        )
        # Mirror the single-process _respond accounting front-end side
        # so the global counters and the overload machinery see cluster
        # traffic exactly like local traffic.
        self.metrics.observe_stages(response.timings)
        self.metrics.observe("latency.link", elapsed)
        self._latency_window.observe(elapsed)
        self._update_overload_state()
        if response.error is not None:
            self.metrics.incr("requests.errors")
        elif response.degraded:
            self.metrics.incr("requests.degraded")
        else:
            self.metrics.incr("requests.completed")
        if response.aborted_stage is not None:
            self.metrics.incr("requests.cancelled")
            self.metrics.incr(f"stage.{response.aborted_stage}.aborted")
        if response.result is not None:
            cover_mode = response.result.get("cover_mode")
            if cover_mode:
                self.metrics.incr(f"cover_mode.{cover_mode}")
        return response

    def _worker_lost_response(
        self,
        request: LinkRequest,
        worker: WorkerHandle,
        started: float,
        trace: Optional[Trace],
    ) -> LinkResponse:
        """A worker died with this request in flight: clean 503."""
        self.metrics.incr("cluster.worker_failures")
        self.metrics.incr("requests.errors")
        if trace is not None:
            trace.mark_aborted("worker")
        return LinkResponse(
            request_id=request.request_id,
            elapsed_seconds=time.perf_counter() - started,
            error=ServiceError(
                "unavailable",
                f"linker worker {worker.worker_id} died mid-request",
            ),
        )

    # ------------------------------------------------------------------
    def cluster_stats(self) -> Dict[str, Any]:
        """The ``cluster`` block of ``/metrics``."""
        stats = self._registry.stats()
        stats["dispatch"] = {
            "least_loaded": self.metrics.counter("cluster.dispatch.least_loaded"),
            "hash_fallback": self.metrics.counter("cluster.dispatch.hash_fallback"),
            "queue_depth": self._admission.depth(),
            "worker_failures": self.metrics.counter("cluster.worker_failures"),
            "reply_timeouts": self.metrics.counter("cluster.reply_timeouts"),
        }
        return stats

    def snapshot(self) -> Dict[str, Any]:
        payload = super().snapshot()
        payload["cluster"] = self.cluster_stats()
        return payload

    def close(self) -> None:
        with self._lifecycle:
            closing = not self._closed
        if not closing:
            return
        # Respawns stop first (a worker dying during drain must not be
        # replaced), then the parent drain runs against the live fleet —
        # every queued request resolves with a real worker response or
        # the clean 503 envelope — and only then are the workers
        # stopped, with terminate/kill escalation for stragglers.
        self._registry.begin_close()
        super().close()
        self._registry.stop_all(self.cluster_config.drain_timeout_seconds)
        if self._owned_store is not None:
            shutil.rmtree(self._owned_store, ignore_errors=True)


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------

def create_cluster_service(
    processes: int = 2,
    snapshot_path: Union[str, Path, None] = None,
    seed: int = 7,
    scales: Sequence[float] = (0.1,),
    config: Optional[ServiceConfig] = None,
    linker_config: TenetConfig = TenetConfig(),
    cluster_config: Optional[ClusterConfig] = None,
    logger: Optional[StructuredLogger] = None,
    echo: Optional[Callable[[str], None]] = None,
    seed_cache: bool = True,
) -> ClusterService:
    """Boot a cluster over one shared snapshot artifact.

    *snapshot_path* may be a snapshot directory or a store root (it is
    resolved — and built on first use — by
    :func:`repro.snapshot.store.load_or_build`).  When ``None``, an
    ephemeral store is built under a temp directory and removed when the
    service closes: the cluster *always* boots from one on-disk
    artifact, because that is what lets N workers share page cache
    instead of each paying a full context build.

    The front-end ``config.workers`` (its dispatch thread pool) is
    raised to at least ``2 × processes`` so every worker can have a
    request in flight plus one queued in its pipe.
    """
    import tempfile

    if cluster_config is None:
        cluster_config = ClusterConfig(processes=processes)
    elif cluster_config.processes != processes:
        cluster_config = replace(cluster_config, processes=processes)
    owned: Optional[Path] = None
    if snapshot_path is None:
        owned = Path(tempfile.mkdtemp(prefix="tenet-cluster-store-"))
        root: Union[str, Path] = owned
    else:
        root = Path(snapshot_path)
    try:
        spec = SnapshotSpec(seed=seed, scales=tuple(scales))
        warm = load_or_build(root, spec, echo=echo)
        if seed_cache:
            warm.seed_fuzzy_cache()
        if config is None:
            config = ServiceConfig(workers=max(4, 2 * processes))
        elif config.workers < 2 * processes:
            config = replace(config, workers=2 * processes)
        return ClusterService(
            warm.context,
            config=config,
            linker_config=linker_config,
            cluster_config=cluster_config,
            snapshot_path=warm.path,
            logger=logger,
            snapshot_info=warm.info(),
            seed_cache=seed_cache,
            owned_store=owned,
        )
    except BaseException:
        if owned is not None:
            shutil.rmtree(owned, ignore_errors=True)
        raise
