"""Typed request/response schema of the linking service.

Every wire object is a frozen dataclass with an exact JSON round-trip
(``to_json`` / ``from_json``).  Parsing is strict: unknown fields and
wrong types raise :class:`SchemaError`, which the HTTP layer maps to a
400 error envelope, so malformed client input never reaches the engine.

Response bodies are deterministic for a given document: the linking
``result`` block excludes wall-clock timings (those travel in the
separate ``timings`` field), so identical documents produce
byte-identical ``result`` payloads whether linked sequentially or by
many threads — the property the service-parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple


class SchemaError(ValueError):
    """A request body that does not match the schema."""


def _require(payload: Mapping[str, Any], cls: str, allowed: Tuple[str, ...]) -> None:
    if not isinstance(payload, Mapping):
        raise SchemaError(f"{cls}: expected a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SchemaError(f"{cls}: unknown fields {unknown}")


@dataclass(frozen=True)
class ServiceError:
    """Error envelope carried in responses and HTTP error bodies.

    ``code`` is a stable machine-readable slug (``bad_request``,
    ``timeout``, ``internal``, ``not_found``, ``rate_limited``,
    ``queue_full``, ``unavailable``, ``session_evicted``); ``message``
    is for humans.
    """

    code: str
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ServiceError":
        _require(payload, "ServiceError", ("code", "message"))
        try:
            return cls(code=str(payload["code"]), message=str(payload["message"]))
        except KeyError as exc:
            raise SchemaError(f"ServiceError: missing field {exc}") from exc


LANES = ("interactive", "batch")


@dataclass(frozen=True)
class LinkRequest:
    """One document to link.

    ``timeout_seconds`` overrides the service's default per-request
    deadline (``None`` keeps the service default).  ``lane`` picks the
    admission lane (``"interactive"`` — the default — or ``"batch"``;
    batch work is strictly lower priority and can never starve
    interactive traffic).
    """

    text: str
    request_id: Optional[str] = None
    timeout_seconds: Optional[float] = None
    lane: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.text, str):
            raise SchemaError(
                f"LinkRequest.text must be a string, got {type(self.text).__name__}"
            )
        if not self.text.strip():
            raise SchemaError("LinkRequest.text must be non-empty")
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise SchemaError("LinkRequest.timeout_seconds must be >= 0")
        if self.lane is not None and self.lane not in LANES:
            raise SchemaError(
                f"LinkRequest.lane must be one of {list(LANES)}, got {self.lane!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"text": self.text}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.timeout_seconds is not None:
            payload["timeout_seconds"] = self.timeout_seconds
        if self.lane is not None:
            payload["lane"] = self.lane
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "LinkRequest":
        _require(
            payload,
            "LinkRequest",
            ("text", "request_id", "timeout_seconds", "lane"),
        )
        if "text" not in payload:
            raise SchemaError("LinkRequest: missing field 'text'")
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            raise SchemaError("LinkRequest.request_id must be a string")
        timeout = payload.get("timeout_seconds")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise SchemaError("LinkRequest.timeout_seconds must be a number")
        lane = payload.get("lane")
        if lane is not None and not isinstance(lane, str):
            raise SchemaError("LinkRequest.lane must be a string")
        return cls(
            text=payload["text"],
            request_id=request_id,
            timeout_seconds=float(timeout) if timeout is not None else None,
            lane=lane,
        )


@dataclass(frozen=True)
class LinkResponse:
    """Outcome of linking one document.

    ``result`` is the deterministic ``LinkingResult.to_json`` payload
    (timings stripped); ``degraded`` marks a deadline-exceeded request
    answered by the prior-only fallback; ``aborted_stage`` names the
    pipeline checkpoint where a cooperative cancellation tripped (only
    on worker-side aborts — ``None`` when the degraded answer was built
    caller-side or the request completed); ``trace_id`` is the
    request-scoped trace identifier (also echoed by the HTTP server as
    the ``X-Trace-Id`` header) that resolves at ``GET /debug/traces``
    when tracing is enabled; ``error`` is set (and ``result`` is None)
    only when linking failed outright.
    """

    result: Optional[Dict[str, Any]] = None
    request_id: Optional[str] = None
    degraded: bool = False
    elapsed_seconds: float = 0.0
    timings: Dict[str, float] = field(default_factory=dict)
    aborted_stage: Optional[str] = None
    trace_id: Optional[str] = None
    error: Optional[ServiceError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "result": self.result,
            "degraded": self.degraded,
            "elapsed_seconds": self.elapsed_seconds,
            "timings": dict(self.timings),
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.aborted_stage is not None:
            payload["aborted_stage"] = self.aborted_stage
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.error is not None:
            payload["error"] = self.error.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "LinkResponse":
        _require(
            payload,
            "LinkResponse",
            (
                "result",
                "degraded",
                "elapsed_seconds",
                "timings",
                "request_id",
                "aborted_stage",
                "trace_id",
                "error",
            ),
        )
        error = payload.get("error")
        aborted_stage = payload.get("aborted_stage")
        if aborted_stage is not None and not isinstance(aborted_stage, str):
            raise SchemaError("LinkResponse.aborted_stage must be a string")
        trace_id = payload.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise SchemaError("LinkResponse.trace_id must be a string")
        return cls(
            result=payload.get("result"),
            request_id=payload.get("request_id"),
            degraded=bool(payload.get("degraded", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            timings=dict(payload.get("timings", {})),
            aborted_stage=aborted_stage,
            trace_id=trace_id,
            error=ServiceError.from_json(error) if error is not None else None,
        )


@dataclass(frozen=True)
class BatchLinkRequest:
    """Several documents linked as one micro-batch."""

    requests: Tuple[LinkRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise SchemaError("BatchLinkRequest: 'documents' must be non-empty")

    @classmethod
    def of_texts(cls, *texts: str) -> "BatchLinkRequest":
        return cls(tuple(LinkRequest(text=t) for t in texts))

    def to_json(self) -> Dict[str, Any]:
        return {"documents": [r.to_json() for r in self.requests]}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "BatchLinkRequest":
        _require(payload, "BatchLinkRequest", ("documents",))
        documents = payload.get("documents")
        if not isinstance(documents, list) or not documents:
            raise SchemaError("BatchLinkRequest: 'documents' must be a non-empty list")
        requests = []
        for entry in documents:
            # Bare strings are accepted as shorthand for {"text": ...}.
            if isinstance(entry, str):
                requests.append(LinkRequest(text=entry))
            else:
                requests.append(LinkRequest.from_json(entry))
        return cls(tuple(requests))


@dataclass(frozen=True)
class BatchLinkResponse:
    """Responses in the same order as the batch's documents."""

    responses: Tuple[LinkResponse, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.responses)

    def to_json(self) -> Dict[str, Any]:
        return {"responses": [r.to_json() for r in self.responses]}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "BatchLinkResponse":
        _require(payload, "BatchLinkResponse", ("responses",))
        responses = payload.get("responses")
        if not isinstance(responses, list):
            raise SchemaError("BatchLinkResponse: 'responses' must be a list")
        return cls(tuple(LinkResponse.from_json(r) for r in responses))


SESSION_REQUEST_KINDS = ("stream", "conversation")


@dataclass(frozen=True)
class SessionFeedRequest:
    """One increment fed into a stateful session.

    ``kind`` selects the session flavour on first use (``"stream"``
    appends verbatim document chunks; ``"conversation"`` appends
    newline-joined dialog turns with coref threading and the context
    prior boost).  Subsequent feeds must repeat the same kind; a
    mismatch is a ``bad_request``.
    """

    chunk: str
    kind: str = "stream"
    request_id: Optional[str] = None
    timeout_seconds: Optional[float] = None
    lane: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.chunk, str):
            raise SchemaError(
                f"SessionFeedRequest.chunk must be a string, got "
                f"{type(self.chunk).__name__}"
            )
        if not self.chunk.strip():
            raise SchemaError("SessionFeedRequest.chunk must be non-empty")
        if self.kind not in SESSION_REQUEST_KINDS:
            raise SchemaError(
                f"SessionFeedRequest.kind must be one of "
                f"{list(SESSION_REQUEST_KINDS)}, got {self.kind!r}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise SchemaError("SessionFeedRequest.timeout_seconds must be >= 0")
        if self.lane is not None and self.lane not in LANES:
            raise SchemaError(
                f"SessionFeedRequest.lane must be one of {list(LANES)}, "
                f"got {self.lane!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"chunk": self.chunk, "kind": self.kind}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.timeout_seconds is not None:
            payload["timeout_seconds"] = self.timeout_seconds
        if self.lane is not None:
            payload["lane"] = self.lane
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SessionFeedRequest":
        _require(
            payload,
            "SessionFeedRequest",
            ("chunk", "kind", "request_id", "timeout_seconds", "lane"),
        )
        if "chunk" not in payload:
            raise SchemaError("SessionFeedRequest: missing field 'chunk'")
        kind = payload.get("kind", "stream")
        if not isinstance(kind, str):
            raise SchemaError("SessionFeedRequest.kind must be a string")
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            raise SchemaError("SessionFeedRequest.request_id must be a string")
        timeout = payload.get("timeout_seconds")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise SchemaError(
                "SessionFeedRequest.timeout_seconds must be a number"
            )
        lane = payload.get("lane")
        if lane is not None and not isinstance(lane, str):
            raise SchemaError("SessionFeedRequest.lane must be a string")
        return cls(
            chunk=payload["chunk"],
            kind=kind,
            request_id=request_id,
            timeout_seconds=float(timeout) if timeout is not None else None,
            lane=lane,
        )


@dataclass(frozen=True)
class SessionFeedResponse:
    """Outcome of one session increment.

    ``result`` is the session's *accumulated* deterministic linking
    payload after this increment (``LinkingResult.to_json`` with
    timings stripped — the same shape :class:`LinkResponse` carries, so
    the final increment of a chunked feed is byte-comparable against a
    one-shot ``/link`` of the concatenated text).  ``solve`` names the
    solver path the increment took (``initial`` | ``full`` |
    ``scoped``); ``mentions`` / ``memo`` / ``coref`` summarise the
    incremental reuse for observability.
    """

    result: Optional[Dict[str, Any]] = None
    session_id: Optional[str] = None
    kind: Optional[str] = None
    mode: Optional[str] = None
    increment: int = 0
    created: bool = False
    solve: Optional[str] = None
    mentions: Dict[str, int] = field(default_factory=dict)
    memo: Dict[str, int] = field(default_factory=dict)
    coref: Tuple[Dict[str, Any], ...] = ()
    text_length: int = 0
    request_id: Optional[str] = None
    degraded: bool = False
    elapsed_seconds: float = 0.0
    timings: Dict[str, float] = field(default_factory=dict)
    aborted_stage: Optional[str] = None
    trace_id: Optional[str] = None
    error: Optional[ServiceError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "result": self.result,
            "increment": self.increment,
            "created": self.created,
            "degraded": self.degraded,
            "elapsed_seconds": self.elapsed_seconds,
            "timings": dict(self.timings),
            "mentions": dict(self.mentions),
            "memo": dict(self.memo),
            "coref": [dict(entry) for entry in self.coref],
            "text_length": self.text_length,
        }
        for key in ("session_id", "kind", "mode", "solve"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.aborted_stage is not None:
            payload["aborted_stage"] = self.aborted_stage
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.error is not None:
            payload["error"] = self.error.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SessionFeedResponse":
        _require(
            payload,
            "SessionFeedResponse",
            (
                "result",
                "session_id",
                "kind",
                "mode",
                "increment",
                "created",
                "solve",
                "mentions",
                "memo",
                "coref",
                "text_length",
                "request_id",
                "degraded",
                "elapsed_seconds",
                "timings",
                "aborted_stage",
                "trace_id",
                "error",
            ),
        )
        error = payload.get("error")
        coref = payload.get("coref", [])
        if not isinstance(coref, list):
            raise SchemaError("SessionFeedResponse.coref must be a list")
        return cls(
            result=payload.get("result"),
            session_id=payload.get("session_id"),
            kind=payload.get("kind"),
            mode=payload.get("mode"),
            increment=int(payload.get("increment", 0)),
            created=bool(payload.get("created", False)),
            solve=payload.get("solve"),
            mentions=dict(payload.get("mentions", {})),
            memo=dict(payload.get("memo", {})),
            coref=tuple(dict(entry) for entry in coref),
            text_length=int(payload.get("text_length", 0)),
            request_id=payload.get("request_id"),
            degraded=bool(payload.get("degraded", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            timings=dict(payload.get("timings", {})),
            aborted_stage=payload.get("aborted_stage"),
            trace_id=payload.get("trace_id"),
            error=ServiceError.from_json(error) if error is not None else None,
        )
