"""Stdlib-only JSON-over-HTTP front end for :class:`LinkingService`.

``ThreadingHTTPServer`` gives one handler thread per connection; each
handler parses the request against the typed schema and calls into the
shared service (which does its own pooling, deadlines, and metrics).

Endpoints:

* ``POST /link``   — body :class:`LinkRequest`, returns :class:`LinkResponse`
  (plus an ``X-Trace-Id`` response header when tracing is enabled);
* ``POST /batch``  — body :class:`BatchLinkRequest`, returns :class:`BatchLinkResponse`;
* ``GET /metrics`` — counters, latency histograms, cache/tracer stats,
  and the overload block (queue depths, degraded-mode state);
* ``GET /debug/traces`` — recent request traces from the tracer's ring
  buffer; query params ``limit`` (int), ``slow_seconds`` (float,
  keep only traces at least that slow) and ``trace_id`` (resolve one);
* ``GET /healthz`` — liveness probe;
* ``POST /session/{id}/feed`` — body :class:`SessionFeedRequest`, one
  increment into a stateful session (created on first feed), returns
  :class:`SessionFeedResponse` with the accumulated linking; **410**
  (``session_evicted``) means the session was LRU/TTL-evicted or
  deleted — recreate and re-feed.  404 when the service runs without
  ``--sessions``;
* ``GET /session/{id}`` — session introspection (404 when unknown);
* ``DELETE /session/{id}`` — drop a session.

Both POST endpoints go through the engine's admission layer:
``/link`` takes the interactive lane (or the request's ``lane`` field),
``/batch`` the strictly-lower-priority batch lane, and the per-client
token bucket is keyed on the ``X-Client-Id`` header (peer address when
absent).  A shed request gets **429** with a ``Retry-After`` header and
a ``rate_limited`` / ``queue_full`` envelope — early rejection, before
any linking work.

Errors are JSON envelopes: 400 for malformed bodies (``bad_request``),
404 for unknown paths (``not_found``), 429 for shed load, 500 for
engine failures (``internal``), 503 (``unavailable``) during shutdown.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.engine import LinkingService, ServiceClosedError
from repro.service.overload import INTERACTIVE_LANE, AdmissionError
from repro.service.schema import (
    BatchLinkRequest,
    LinkRequest,
    SchemaError,
    ServiceError,
    SessionFeedRequest,
)
from repro.session import SessionError, validate_session_id

MAX_BODY_BYTES = 8 * 1024 * 1024  # refuse absurd payloads outright


class LinkingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that owns a :class:`LinkingService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: LinkingService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: LinkingHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path == "/healthz":
            self._send(200, {"status": "ok"})
        elif path == "/metrics":
            self._send(200, self.server.service.snapshot())
        elif path == "/debug/traces":
            self._handle_traces()
        elif path.startswith("/session/"):
            self._handle_session_get(path)
        else:
            self._send_error(404, "not_found", f"unknown path {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path == "/link":
            self._handle_link()
        elif path == "/batch":
            self._handle_batch()
        elif path.startswith("/session/") and path.endswith("/feed"):
            self._handle_session_feed(path)
        else:
            self._send_error(404, "not_found", f"unknown path {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path.startswith("/session/"):
            self._handle_session_delete(path)
        else:
            self._send_error(404, "not_found", f"unknown path {self.path}")

    # ------------------------------------------------------------------
    # endpoint bodies
    # ------------------------------------------------------------------
    def _client_id(self) -> str:
        """Rate-limit key: ``X-Client-Id`` header, else the peer address."""
        header = self.headers.get("X-Client-Id")
        if header:
            return header.strip()
        return self.client_address[0]

    def _handle_link(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        try:
            request = LinkRequest.from_json(payload)
        except SchemaError as exc:
            self._send_error(400, "bad_request", str(exc))
            return
        try:
            response = self.server.service.link_admitted(
                request,
                lane=request.lane or INTERACTIVE_LANE,
                client_id=self._client_id(),
            )
        except AdmissionError as exc:
            self._send_rejected(exc)
            return
        except ServiceClosedError:
            self._send_error(503, "unavailable", "service is shutting down")
            return
        status = 200
        if response.error is not None:
            status = 503 if response.error.code == "unavailable" else 500
        self._send(status, response.to_json(), trace_id=response.trace_id)

    def _handle_batch(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        try:
            batch = BatchLinkRequest.from_json(payload)
        except SchemaError as exc:
            self._send_error(400, "bad_request", str(exc))
            return
        try:
            response = self.server.service.link_batch_admitted(
                batch, client_id=self._client_id()
            )
        except ServiceClosedError:
            self._send_error(503, "unavailable", "service is shutting down")
            return
        # Per-document shedding (rate_limited / queue_full / timeout /
        # unavailable envelopes inside the batch) is an expected outcome
        # of admission control, not a server failure: the batch itself
        # still returns 200.  Only an `internal` failure is a 500.
        codes = {
            r.error.code for r in response.responses if r.error is not None
        }
        status = 500 if "internal" in codes else 200
        self._send(status, response.to_json())

    # ------------------------------------------------------------------
    # session endpoints
    # ------------------------------------------------------------------
    _SESSION_STATUS = {
        "bad_request": 400,
        "session_evicted": 410,
        "timeout": 504,
        "unavailable": 503,
    }

    def _session_id_from(self, path: str, suffix: str = "") -> Optional[str]:
        """Extract and validate the ``{id}`` of ``/session/{id}<suffix>``."""
        session_id = path[len("/session/"):]
        if suffix:
            session_id = session_id[: -len(suffix)]
        try:
            return validate_session_id(session_id)
        except SessionError as exc:
            self._send_error(400, "bad_request", str(exc))
            return None

    def _sessions_enabled(self) -> bool:
        if self.server.service.sessions is None:
            self._send_error(
                404,
                "not_found",
                "sessions are not enabled (start the server with --sessions)",
            )
            return False
        return True

    def _handle_session_feed(self, path: str) -> None:
        if not self._sessions_enabled():
            return
        session_id = self._session_id_from(path, suffix="/feed")
        if session_id is None:
            return
        payload = self._read_json()
        if payload is None:
            return
        try:
            request = SessionFeedRequest.from_json(payload)
        except SchemaError as exc:
            self._send_error(400, "bad_request", str(exc))
            return
        try:
            response = self.server.service.session_feed_admitted(
                session_id, request, client_id=self._client_id()
            )
        except AdmissionError as exc:
            self._send_rejected(exc)
            return
        except (ServiceClosedError, SessionError) as exc:
            # SessionError here means sessions were disabled between the
            # check above and the call — treat both as shutdown races.
            self._send_error(503, "unavailable", str(exc))
            return
        status = 200
        if response.error is not None:
            status = self._SESSION_STATUS.get(response.error.code, 500)
        self._send(status, response.to_json(), trace_id=response.trace_id)

    def _handle_session_get(self, path: str) -> None:
        if not self._sessions_enabled():
            return
        session_id = self._session_id_from(path)
        if session_id is None:
            return
        info = self.server.service.session_info(session_id)
        if info is None:
            self._send_error(
                404, "not_found", f"unknown session {session_id!r}"
            )
            return
        self._send(200, info)

    def _handle_session_delete(self, path: str) -> None:
        if not self._sessions_enabled():
            return
        session_id = self._session_id_from(path)
        if session_id is None:
            return
        if not self.server.service.session_delete(session_id):
            self._send_error(
                404, "not_found", f"unknown session {session_id!r}"
            )
            return
        self._send(200, {"deleted": session_id})

    def _send_rejected(self, exc: AdmissionError) -> None:
        """One shed request: 429 + Retry-After + typed envelope."""
        body = json.dumps(
            {"error": ServiceError(exc.code, str(exc)).to_json()}
        ).encode("utf-8")
        self.send_response(429)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header(
            "Retry-After", str(max(1, math.ceil(exc.retry_after_seconds)))
        )
        self.end_headers()
        self.wfile.write(body)

    def _handle_traces(self) -> None:
        """``GET /debug/traces`` — recent traces, filterable."""
        query = parse_qs(urlsplit(self.path).query)
        try:
            limit = int(query.get("limit", ["50"])[0])
            slow_raw = query.get("slow_seconds", [None])[0]
            slow_seconds = float(slow_raw) if slow_raw is not None else None
        except ValueError:
            self._send_error(
                400, "bad_request",
                "limit must be an integer and slow_seconds a number",
            )
            return
        if limit < 1 or (slow_seconds is not None and slow_seconds < 0):
            self._send_error(
                400, "bad_request",
                "limit must be >= 1 and slow_seconds >= 0",
            )
            return
        trace_id = query.get("trace_id", [None])[0]
        tracer = self.server.service.tracer
        traces = tracer.recent(
            limit=limit, slow_seconds=slow_seconds, trace_id=trace_id
        )
        self._send(
            200,
            {
                "enabled": tracer.enabled,
                "count": len(traces),
                "tracer": tracer.stats(),
                "traces": traces,
            },
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _read_json(self) -> Optional[Dict[str, Any]]:
        # The early 400s below answer *without* reading the declared
        # body.  On an HTTP/1.1 keep-alive connection those unread bytes
        # would be parsed as the next request line, poisoning every
        # subsequent exchange — so these paths close the connection.
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            # A non-numeric declaration must not become an unhandled
            # ValueError (500 + traceback); and since we cannot know how
            # many body bytes the client will send, drop the connection.
            self._send_error(
                400,
                "bad_request",
                f"invalid Content-Length header {raw_length!r}",
                close=True,
            )
            return None
        if length < 0:
            # A negative length would turn into rfile.read(-1): block
            # until the client closes its end of a keep-alive socket.
            self._send_error(
                400,
                "bad_request",
                f"invalid Content-Length header {raw_length!r}",
                close=True,
            )
            return None
        if length == 0:
            self._send_error(400, "bad_request", "empty request body", close=True)
            return None
        if length > MAX_BODY_BYTES:
            self._send_error(400, "bad_request", "request body too large", close=True)
            return None
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_error(400, "bad_request", f"invalid JSON: {exc}")
            return None
        # Reject non-object top levels here with one uniform envelope,
        # before the typed from_json parsers ever see the payload.
        if not isinstance(payload, dict):
            self._send_error(
                400,
                "bad_request",
                "request body must be a JSON object, "
                f"got {type(payload).__name__}",
            )
            return None
        return payload

    def _send(
        self,
        status: int,
        payload: Dict[str, Any],
        close: bool = False,
        trace_id: Optional[str] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        if close:
            # send_header("Connection", "close") also flips
            # self.close_connection, so the handler loop stops reusing
            # this socket after the response is written.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self, status: int, code: str, message: str, close: bool = False
    ) -> None:
        self._send(
            status, {"error": ServiceError(code, message).to_json()}, close=close
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Request logging goes through the service metrics, not stderr;
        # keep the test output and CLI quiet.
        pass


def create_server(
    service: LinkingService, host: str = "127.0.0.1", port: int = 8080
) -> LinkingHTTPServer:
    """Bind (``port=0`` picks a free port) without starting the loop."""
    return LinkingHTTPServer((host, port), service)


def serve_forever(
    service: LinkingService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Blocking convenience used by ``tenet-repro serve``."""
    server = create_server(service, host, port)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()
