"""Admission control, load shedding, and degraded-mode switching.

The engine's worker pool is a fixed resource; this module decides what
is allowed to reach it.  Four cooperating pieces:

* :class:`TokenBucket` / :class:`ClientRateLimiter` — per-client
  token-bucket rate limiting keyed on the ``X-Client-Id`` header (or
  the peer address), so one hot client cannot crowd out the rest.
* :class:`AdmissionController` — a bounded two-lane queue (interactive
  vs. batch) in front of the worker pool.  Dispatch is strict-priority:
  a queued batch item never runs while an interactive item waits, so
  batch floods cannot starve interactive traffic.  A full lane rejects
  *early* — before any linking work — with a typed error the HTTP layer
  maps to ``429`` + ``Retry-After``.
* :class:`LatencyWindow` — a rolling window of recent request
  latencies, giving the observed p95 that drives degraded mode.
* :class:`DegradedModeController` — hysteresis switch: when queue
  depth or observed p95 crosses the *enter* watermarks, new requests
  are routed to the prior-only fast path (PR 1's degradation fallback)
  until both signals fall back under the *exit* watermarks.  Distinct
  enter/exit thresholds prevent flapping across the boundary.

Everything takes an injectable monotonic ``clock`` so the concurrency
tests are deterministic.  Like the rest of the service layer this is a
leaf over the stdlib: no third-party dependency, no imports from the
engine (the engine imports *this*).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

INTERACTIVE_LANE = "interactive"
BATCH_LANE = "batch"
LANES = (INTERACTIVE_LANE, BATCH_LANE)

Clock = Callable[[], float]


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the admission / shedding / degraded-mode layer.

    ``max_queue_interactive`` / ``max_queue_batch`` bound the admission
    lanes (requests beyond the bound are rejected with ``queue_full``).
    ``rate_limit_per_second`` enables per-client token buckets when set
    (``None`` disables rate limiting); ``rate_limit_burst`` is each
    bucket's capacity.  Degraded mode engages when queue depth reaches
    ``degraded_enter_queue_depth`` or the rolling p95 reaches
    ``degraded_enter_p95_seconds``, and disengages only when depth is
    at or below ``degraded_exit_queue_depth`` *and* p95 at or below
    ``degraded_exit_p95_seconds`` — the hysteresis band.
    """

    max_queue_interactive: int = 64
    max_queue_batch: int = 256
    rate_limit_per_second: Optional[float] = None
    rate_limit_burst: int = 8
    max_tracked_clients: int = 1024
    degraded_enter_queue_depth: int = 32
    degraded_exit_queue_depth: int = 8
    degraded_enter_p95_seconds: Optional[float] = None
    degraded_exit_p95_seconds: Optional[float] = None
    latency_window: int = 256
    # Fallback Retry-After hint when the queue is full and there is no
    # latency sample yet to derive a better one from.
    retry_after_floor_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_interactive < 1:
            raise ValueError("max_queue_interactive must be >= 1")
        if self.max_queue_batch < 1:
            raise ValueError("max_queue_batch must be >= 1")
        if self.rate_limit_per_second is not None and self.rate_limit_per_second <= 0:
            raise ValueError("rate_limit_per_second must be > 0 when set")
        if self.rate_limit_burst < 1:
            raise ValueError("rate_limit_burst must be >= 1")
        if self.max_tracked_clients < 1:
            raise ValueError("max_tracked_clients must be >= 1")
        if self.degraded_enter_queue_depth < 1:
            raise ValueError("degraded_enter_queue_depth must be >= 1")
        if not 0 <= self.degraded_exit_queue_depth < self.degraded_enter_queue_depth:
            raise ValueError(
                "degraded_exit_queue_depth must satisfy "
                "0 <= exit < enter (the hysteresis band)"
            )
        enter_p95, exit_p95 = (
            self.degraded_enter_p95_seconds,
            self.degraded_exit_p95_seconds,
        )
        if (enter_p95 is None) != (exit_p95 is None):
            raise ValueError(
                "degraded p95 watermarks must be set together (enter and exit)"
            )
        if enter_p95 is not None:
            if enter_p95 <= 0:
                raise ValueError("degraded_enter_p95_seconds must be > 0")
            if not 0 < exit_p95 < enter_p95:
                raise ValueError(
                    "degraded_exit_p95_seconds must satisfy 0 < exit < enter"
                )
        if self.latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        if self.retry_after_floor_seconds <= 0:
            raise ValueError("retry_after_floor_seconds must be > 0")

    def to_json(self) -> Dict[str, Any]:
        return {
            "max_queue_interactive": self.max_queue_interactive,
            "max_queue_batch": self.max_queue_batch,
            "rate_limit_per_second": self.rate_limit_per_second,
            "rate_limit_burst": self.rate_limit_burst,
            "degraded_enter_queue_depth": self.degraded_enter_queue_depth,
            "degraded_exit_queue_depth": self.degraded_exit_queue_depth,
            "degraded_enter_p95_seconds": self.degraded_enter_p95_seconds,
            "degraded_exit_p95_seconds": self.degraded_exit_p95_seconds,
            "latency_window": self.latency_window,
        }


class AdmissionError(RuntimeError):
    """A request was shed before reaching the worker pool.

    ``code`` is the stable envelope slug; ``retry_after_seconds`` is the
    client hint the HTTP layer emits as the ``Retry-After`` header.
    """

    code = "overloaded"

    def __init__(self, message: str, retry_after_seconds: float) -> None:
        super().__init__(message)
        self.retry_after_seconds = max(0.0, retry_after_seconds)


class QueueFullError(AdmissionError):
    """The request's admission lane is at capacity."""

    code = "queue_full"


class RateLimitedError(AdmissionError):
    """The client's token bucket is empty."""

    code = "rate_limited"


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, steady refill.

    ``try_acquire`` returns ``None`` when a token was taken, else the
    seconds until one will be available (the Retry-After hint).  The
    bucket refills continuously at ``refill_per_second`` up to
    ``capacity``; all methods are thread-safe.
    """

    def __init__(
        self,
        capacity: int,
        refill_per_second: float,
        clock: Clock = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if refill_per_second <= 0:
            raise ValueError(
                f"refill_per_second must be > 0, got {refill_per_second}"
            )
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(
            float(self.capacity), self._tokens + elapsed * self.refill_per_second
        )

    def try_acquire(self) -> Optional[float]:
        """Take one token; ``None`` on success, retry-after seconds else."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.refill_per_second

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


class ClientRateLimiter:
    """One :class:`TokenBucket` per client id, LRU-bounded.

    The bucket map is capped at ``max_clients``: the least-recently-seen
    client's bucket is dropped when a new client would exceed the cap.
    Dropping a bucket effectively refills it, which errs on the side of
    admitting — acceptable, since the admission queue still bounds total
    work.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        max_clients: int = 1024,
        clock: Clock = time.monotonic,
    ) -> None:
        self.rate_per_second = rate_per_second
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def try_acquire(self, client_id: str) -> Optional[float]:
        """Take a token for *client_id*; ``None`` or retry-after seconds."""
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(
                    self.burst, self.rate_per_second, clock=self._clock
                )
                self._buckets[client_id] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client_id)
        return bucket.try_acquire()

    @property
    def tracked_clients(self) -> int:
        with self._lock:
            return len(self._buckets)


class LatencyWindow:
    """Rolling window of the last *size* request latencies."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._values: Deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._values.append(seconds)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the window (``None`` if empty)."""
        with self._lock:
            values = sorted(self._values)
        if not values:
            return None
        rank = max(1, math.ceil(q * len(values)))
        return values[min(rank, len(values)) - 1]

    def mean(self) -> Optional[float]:
        with self._lock:
            if not self._values:
                return None
            return sum(self._values) / len(self._values)

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


class DegradedModeController:
    """Hysteresis switch between the full and prior-only pipelines.

    ``update(queue_depth, p95)`` re-evaluates the state: degraded mode
    *enters* when either signal reaches its enter watermark and *exits*
    only when every configured signal is back at or under its exit
    watermark.  Because the exit watermarks sit strictly below the
    enter watermarks, a signal oscillating inside the band cannot flap
    the switch — the property the hysteresis tests pin down.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._active = False
        self._enters = 0
        self._exits = 0

    @property
    def active(self) -> bool:
        with self._lock:
            return self._active

    @property
    def transitions(self) -> Tuple[int, int]:
        """``(enters, exits)`` since construction."""
        with self._lock:
            return self._enters, self._exits

    def update(self, queue_depth: int, p95_seconds: Optional[float]) -> bool:
        """Re-evaluate against the watermarks; returns the new state."""
        config = self.config
        depth_high = queue_depth >= config.degraded_enter_queue_depth
        depth_low = queue_depth <= config.degraded_exit_queue_depth
        if config.degraded_enter_p95_seconds is not None and p95_seconds is not None:
            p95_high = p95_seconds >= config.degraded_enter_p95_seconds
            p95_low = p95_seconds <= config.degraded_exit_p95_seconds
        else:
            p95_high, p95_low = False, True
        with self._lock:
            if not self._active and (depth_high or p95_high):
                self._active = True
                self._enters += 1
            elif self._active and depth_low and p95_low:
                self._active = False
                self._exits += 1
            return self._active


class _AdmittedItem:
    """One queued unit of work awaiting dispatch to the pool."""

    __slots__ = ("work", "future", "lane", "enqueued_at")

    def __init__(self, work: Callable[[], Any], future: Any, lane: str,
                 enqueued_at: float) -> None:
        self.work = work
        self.future = future
        self.lane = lane
        self.enqueued_at = enqueued_at


class AdmissionController:
    """Bounded two-lane admission queue with strict-priority dispatch.

    ``admit(work, future, lane)`` either enqueues the item or raises a
    typed :class:`AdmissionError`; a dispatcher thread feeds at most
    ``workers`` items concurrently to ``dispatch`` (interactive lane
    always first).  ``dispatch(item)`` must arrange for
    :meth:`release` to be called exactly once when the item's work
    finishes — the engine does this from the pooled future's done
    callback; tests drive it by hand.

    On :meth:`close` every still-queued item's future is failed with
    the exception built by ``close_error`` — queued work is *rejected
    with a clean envelope*, never dropped silently and never left to
    hang a waiting caller.
    """

    def __init__(
        self,
        config: OverloadConfig,
        workers: int,
        dispatch: Callable[[_AdmittedItem], None],
        close_error: Callable[[], Exception],
        clock: Clock = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.config = config
        self.workers = workers
        self._dispatch = dispatch
        self._close_error = close_error
        self._clock = clock
        self._queues: Dict[str, Deque[_AdmittedItem]] = {
            lane: deque() for lane in LANES
        }
        self._limits = {
            INTERACTIVE_LANE: config.max_queue_interactive,
            BATCH_LANE: config.max_queue_batch,
        }
        self._cond = threading.Condition()
        self._inflight = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="tenet-admission", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def admit(
        self,
        work: Callable[[], Any],
        future: Any,
        lane: str = INTERACTIVE_LANE,
        retry_after_hint: Optional[float] = None,
    ) -> None:
        """Enqueue one item or raise a typed admission error.

        *retry_after_hint* (e.g. queue depth x mean latency, computed by
        the caller) overrides the config floor on a full-queue
        rejection.
        """
        if lane not in self._queues:
            raise ValueError(f"unknown admission lane {lane!r}")
        with self._cond:
            if self._closed:
                raise self._close_error()
            queue = self._queues[lane]
            if len(queue) >= self._limits[lane]:
                retry_after = retry_after_hint
                if retry_after is None or retry_after <= 0:
                    retry_after = self.config.retry_after_floor_seconds
                raise QueueFullError(
                    f"{lane} admission queue is full "
                    f"({len(queue)}/{self._limits[lane]})",
                    retry_after_seconds=retry_after,
                )
            queue.append(_AdmittedItem(work, future, lane, self._clock()))
            self._cond.notify()

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------
    def _next_item_locked(self) -> Optional[_AdmittedItem]:
        for lane in LANES:  # interactive strictly before batch
            queue = self._queues[lane]
            if queue:
                return queue.popleft()
        return None

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (
                    self._inflight >= self.workers
                    or not any(self._queues[lane] for lane in LANES)
                ):
                    self._cond.wait()
                if self._closed:
                    return
                item = self._next_item_locked()
                if item is None:  # pragma: no cover - guarded by the wait
                    continue
                self._inflight += 1
            # A future cancelled while queued (deadline expired before
            # dispatch) must not reach the pool; its canceller already
            # answered the request.
            if not item.future.set_running_or_notify_cancel():
                self.release()
                continue
            try:
                self._dispatch(item)
            except Exception as exc:  # noqa: BLE001 - dispatch must not kill the loop
                self.release()
                if not item.future.done():
                    item.future.set_exception(exc)

    def release(self) -> None:
        """Signal that one dispatched item finished (frees a slot)."""
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            self._cond.notify()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def depth(self, lane: Optional[str] = None) -> int:
        with self._cond:
            if lane is not None:
                return len(self._queues[lane])
            return sum(len(q) for q in self._queues.values())

    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def close(self) -> int:
        """Stop dispatching and reject everything still queued.

        Returns the number of rejected items; each of their futures is
        failed with the typed close error so callers unblock with a
        clean envelope instead of hanging on a dropped request.
        """
        with self._cond:
            if self._closed:
                return 0
            self._closed = True
            stranded: List[_AdmittedItem] = []
            for lane in LANES:
                stranded.extend(self._queues[lane])
                self._queues[lane].clear()
            self._cond.notify_all()
        rejected = 0
        for item in stranded:
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(self._close_error())
                rejected += 1
        self._thread.join(timeout=5.0)
        return rejected
