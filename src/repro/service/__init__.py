"""Concurrent linking service layer (serving subsystem).

Turns the one-shot :class:`repro.core.linker.TenetLinker` into a
long-lived service: typed request/response schema, bounded caches that
amortise candidate generation and similarity lookups across requests, a
thread-pooled engine with micro-batching / per-request deadlines /
graceful degradation, process metrics, and a stdlib-only JSON-over-HTTP
server (``tenet-repro serve``).
"""

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.service.cache import LinkerCacheConfig, LinkerCaches, attach_caches
from repro.service.engine import LinkingService, ServiceClosedError, ServiceConfig
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.schema import (
    BatchLinkRequest,
    BatchLinkResponse,
    LinkRequest,
    LinkResponse,
    SchemaError,
    ServiceError,
)
from repro.service.server import LinkingHTTPServer, create_server

__all__ = [
    "BatchLinkRequest",
    "BatchLinkResponse",
    "Deadline",
    "DeadlineExceeded",
    "LatencyHistogram",
    "LinkerCacheConfig",
    "LinkerCaches",
    "LinkingHTTPServer",
    "LinkingService",
    "LinkRequest",
    "LinkResponse",
    "MetricsRegistry",
    "SchemaError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "attach_caches",
    "create_server",
]
