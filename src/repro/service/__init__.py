"""Concurrent linking service layer (serving subsystem).

Turns the one-shot :class:`repro.core.linker.TenetLinker` into a
long-lived service: typed request/response schema, bounded caches that
amortise candidate generation and similarity lookups across requests, a
thread-pooled engine with micro-batching / per-request deadlines /
graceful degradation, process metrics, and a stdlib-only JSON-over-HTTP
server (``tenet-repro serve``).
"""

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.service.cache import LinkerCacheConfig, LinkerCaches, attach_caches
from repro.service.cluster import (
    ClusterConfig,
    ClusterError,
    ClusterService,
    WorkerDiedError,
    WorkerRegistry,
    create_cluster_service,
)
from repro.service.engine import LinkingService, ServiceClosedError, ServiceConfig
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.overload import (
    AdmissionController,
    AdmissionError,
    ClientRateLimiter,
    DegradedModeController,
    LatencyWindow,
    OverloadConfig,
    QueueFullError,
    RateLimitedError,
    TokenBucket,
)
from repro.service.schema import (
    BatchLinkRequest,
    BatchLinkResponse,
    LinkRequest,
    LinkResponse,
    SchemaError,
    ServiceError,
)
from repro.service.server import LinkingHTTPServer, create_server

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "BatchLinkRequest",
    "BatchLinkResponse",
    "ClientRateLimiter",
    "ClusterConfig",
    "ClusterError",
    "ClusterService",
    "Deadline",
    "DeadlineExceeded",
    "DegradedModeController",
    "LatencyHistogram",
    "LatencyWindow",
    "LinkerCacheConfig",
    "LinkerCaches",
    "LinkingHTTPServer",
    "LinkingService",
    "LinkRequest",
    "LinkResponse",
    "MetricsRegistry",
    "OverloadConfig",
    "QueueFullError",
    "RateLimitedError",
    "SchemaError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "TokenBucket",
    "WorkerDiedError",
    "WorkerRegistry",
    "attach_caches",
    "create_cluster_service",
    "create_server",
]
