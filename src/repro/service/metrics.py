"""Process metrics of the linking service.

Thread-safe counters and fixed-bucket latency histograms, exposed as
one JSON snapshot (the ``/metrics`` endpoint).  Per-stage latencies are
fed from ``LinkingResult.stage_seconds`` — the same record
``eval/timing.py`` reads — so the serving metrics and the paper's
Fig. 7 timing harness report from a single source of truth.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

# Upper bounds (seconds) of the latency buckets; the last bucket is
# open-ended.  Spaced for a linker whose requests run 1 ms - 10 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram of seconds with count/sum/min/max."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.sum += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-upper-bound estimate of the *q* quantile (None if empty)."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for i, bound in enumerate(self.bounds):
            seen += self._counts[i]
            if seen >= target:
                return bound
        return self.max

    def snapshot(self) -> Dict[str, object]:
        mean = self.sum / self.count if self.count else None
        return {
            "count": self.count,
            "sum_seconds": self.sum,
            "mean_seconds": mean,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "p50_seconds": self.quantile(0.50),
            "p90_seconds": self.quantile(0.90),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.bounds, self._counts)
            },
            "overflow": self._counts[-1],
        }


class MetricsRegistry:
    """Named counters, gauges, + latency histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def merge_counters(self, deltas: Dict[str, int], prefix: str = "") -> None:
        """Fold a batch of counter deltas in under one lock acquisition.

        The cluster front end folds per-worker counter snapshots into
        this registry; doing the whole batch inside a single critical
        section keeps the fold atomic with respect to concurrent
        :meth:`incr` calls and :meth:`snapshot` reads — a reader never
        observes half a worker's contribution, and no read-modify-write
        interleaving can lose an update.
        """
        with self._lock:
            for name, delta in deltas.items():
                if not delta:
                    continue
                key = f"{prefix}{name}" if prefix else name
                self._counters[key] = self._counters.get(key, 0) + int(delta)

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous value (e.g. active workers right now)."""
        with self._lock:
            self._gauges[name] = value

    def add_gauge(self, name: str, delta: float) -> float:
        """Adjust a gauge by *delta*, returning the new value."""
        with self._lock:
            value = self._gauges.get(name, 0) + delta
            self._gauges[name] = value
            return value

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def observe_stages(self, stage_seconds: Dict[str, float], prefix: str = "stage") -> None:
        """Feed one result's per-stage timing record into the histograms."""
        for stage, seconds in stage_seconds.items():
            self.observe(f"{prefix}.{stage}", seconds)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "latencies": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }
