"""Cross-request caches of the serving layer.

One :class:`LinkerCaches` bundle holds the bounded LRU caches a warm
service keeps between requests:

* **candidates** — memoises :class:`repro.core.candidates.CandidateGenerator`
  lookups per normalised phrase (+ type filter / surface variants), so a
  mention repeated across documents is resolved against the alias index
  once;
* **similarity** — replaces :class:`repro.embeddings.similarity.SimilarityIndex`'s
  unbounded per-process dict with a bounded pair cache that survives
  across requests without growing forever;
* the **alias fuzzy memo** lives inside :class:`repro.kb.alias_index.AliasIndex`
  itself (it is useful to batch evaluation too); its stats are surfaced
  here alongside the rest.

All hooks are injectable and optional: with caching disabled the wired
objects behave byte-identically to the unhooked pipeline, which the
parity tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.caching import LRUCache, make_cache
from repro.core.linker import TenetLinker
from repro.embeddings.similarity import SimilarityIndex


@dataclass(frozen=True)
class LinkerCacheConfig:
    """Sizes of the cross-request caches (0 disables one; ``enabled=False``
    disables the whole bundle)."""

    enabled: bool = True
    candidate_cache_size: int = 8192
    similarity_cache_size: int = 131072

    def __post_init__(self) -> None:
        if self.candidate_cache_size < 0:
            raise ValueError("candidate_cache_size must be >= 0")
        if self.similarity_cache_size < 0:
            raise ValueError("similarity_cache_size must be >= 0")


class LinkerCaches:
    """The live cache bundle built from a :class:`LinkerCacheConfig`."""

    def __init__(self, config: LinkerCacheConfig = LinkerCacheConfig()) -> None:
        self.config = config
        self.candidates: Optional[LRUCache] = None
        self.similarity: Optional[LRUCache] = None
        if config.enabled:
            self.candidates = make_cache(config.candidate_cache_size)
            self.similarity = make_cache(config.similarity_cache_size)

    @classmethod
    def disabled(cls) -> "LinkerCaches":
        return cls(LinkerCacheConfig(enabled=False))

    @property
    def enabled(self) -> bool:
        return self.candidates is not None or self.similarity is not None

    def clear(self) -> None:
        for cache in (self.candidates, self.similarity):
            if cache is not None:
                cache.clear()

    def snapshot(self, linker: Optional[TenetLinker] = None) -> Dict[str, Any]:
        """JSON-compatible stats of every cache (all-zero when disabled).

        Passing the wired *linker* additionally reports the alias
        index's fuzzy-lookup memo, giving ``/metrics`` one block with
        every cache the process holds.
        """
        payload: Dict[str, Any] = {"enabled": self.enabled}
        payload["candidates"] = (
            self.candidates.snapshot() if self.candidates is not None else None
        )
        payload["similarity"] = (
            self.similarity.snapshot() if self.similarity is not None else None
        )
        if linker is not None:
            payload["alias_fuzzy"] = linker.context.alias_index.fuzzy_cache_stats()
            # The batched E @ E.T path bypasses the pair cache by design;
            # its call/pair counters sit next to the LRU stats so the
            # bench trajectory sees both sides of the trade.
            payload["similarity_batch"] = linker.similarity.batch_stats()
        return payload


def attach_caches(linker: TenetLinker, caches: LinkerCaches) -> TenetLinker:
    """Wire a cache bundle into an already-built linker, in place.

    The candidate memo is installed on the generator's injectable hook;
    the similarity index is rebuilt around the bounded pair cache (same
    embedding store, so values are identical).  Returns the linker for
    chaining.
    """
    linker.generator.cache = caches.candidates
    if caches.similarity is not None:
        linker.similarity = SimilarityIndex(
            linker.context.embeddings, cache=caches.similarity
        )
    return linker
