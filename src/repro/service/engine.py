"""The linking engine: a warm, concurrent, deadline-aware service.

:class:`LinkingService` owns one warm :class:`LinkingContext` and one
:class:`TenetLinker` wired with the cross-request caches, and dispatches
documents to a ``ThreadPoolExecutor``.  Linking is a pure function of
the document (the caches are idempotent memos), so N threads produce
results identical to sequential calls — the property the parity tests
pin down.

Deadlines are cooperative: every request gets one
:class:`~repro.core.deadline.Deadline` anchored at submission, and the
worker carries it through the pipeline, which checks the token at each
stage boundary (plus the tree-cover and disambiguation inner loops).  A
request that crosses its deadline therefore *releases its worker within
one checkpoint interval* instead of grinding the full pipeline to
completion with nobody waiting — the failure mode where a burst of slow
documents silently eats the whole pool.  The degraded answer is built
from whatever partial state the aborted run salvaged (candidates
already generated are not recomputed) and is identical to
``link_prior_only`` output for the same document.

Request paths:

* :meth:`link` — synchronous, enforces the per-request deadline and
  degrades gracefully instead of erroring.
* :meth:`submit` — fire-and-collect future; the deadline still travels
  with the worker (cooperative only — nobody force-collects).
* :meth:`link_batch` — one micro-batch through the pool, responses in
  request order, every deadline anchored at submission.
* :meth:`enqueue` — hands the request to the :class:`MicroBatcher`,
  which coalesces queued singles into batches (size- or delay-bound)
  before dispatch; useful for high-QPS callers that want batching
  without assembling batches themselves.
* :meth:`link_admitted` / :meth:`link_batch_admitted` / :meth:`admit` —
  the HTTP front end's paths: the same semantics, but behind the
  bounded two-lane admission queue, per-client token buckets, and
  degraded-mode switching of :mod:`repro.service.overload`.  Shed
  requests raise a typed :class:`AdmissionError` (HTTP 429 +
  ``Retry-After``) *before* any linking work happens.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import TenetConfig
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.linker import LinkingContext, TenetLinker
from repro.core.result import LinkingResult
from repro.obs import (
    DEFAULT_RING_SIZE,
    StructuredLogger,
    Trace,
    Tracer,
    tracing_enabled_by_env,
)
from repro.service.cache import LinkerCacheConfig, LinkerCaches, attach_caches
from repro.service.metrics import MetricsRegistry
from repro.service.overload import (
    BATCH_LANE,
    INTERACTIVE_LANE,
    AdmissionController,
    AdmissionError,
    ClientRateLimiter,
    DegradedModeController,
    LatencyWindow,
    OverloadConfig,
    RateLimitedError,
)
from repro.service.schema import (
    BatchLinkRequest,
    BatchLinkResponse,
    LinkRequest,
    LinkResponse,
    ServiceError,
    SessionFeedRequest,
    SessionFeedResponse,
)
from repro.session import (
    SESSION_MODES,
    ConversationSession,
    SessionClosedError,
    SessionConfig,
    SessionError,
    SessionEvictedError,
    SessionManager,
    StreamingSession,
)


class ServiceClosedError(RuntimeError):
    """A request reached a component that has already been shut down."""


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving engine."""

    workers: int = 4
    default_timeout_seconds: Optional[float] = None
    batch_max_size: int = 16
    batch_max_delay_seconds: float = 0.005
    # After a deadline expires, how long the waiting caller gives the
    # cancelled worker to deliver its partial-based degraded response
    # before degrading caller-side (covers workers parked between two
    # checkpoints).  One stage-checkpoint interval is plenty.
    cancel_grace_seconds: float = 0.1
    # Request-scoped tracing: None follows the TENET_TRACE environment
    # variable; True/False force it.  Finished traces are kept in a ring
    # of trace_ring_size and served at GET /debug/traces.
    trace_enabled: Optional[bool] = None
    trace_ring_size: int = DEFAULT_RING_SIZE
    cache: LinkerCacheConfig = field(default_factory=LinkerCacheConfig)
    # Admission control / load shedding / degraded-mode watermarks (see
    # repro.service.overload).  Only the admitted request paths
    # (link_admitted / link_batch_admitted, i.e. the HTTP front end) go
    # through the bounded queue; the in-process link/submit/link_batch
    # APIs stay direct for trusted callers like the bench harness.
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    # Stateful sessions (repro.session): off by default.  When enabled
    # the engine owns a SessionManager over the warm linker, so session
    # increments share the cross-request caches with /link, and exposes
    # the admitted feed path behind the same admission queue.
    sessions_enabled: bool = False
    session_max_sessions: int = 64
    session_ttl_seconds: float = 600.0
    session_mode: str = "full"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.session_max_sessions < 1:
            raise ValueError(
                f"session_max_sessions must be >= 1, got {self.session_max_sessions}"
            )
        if self.session_ttl_seconds <= 0:
            raise ValueError("session_ttl_seconds must be positive")
        if self.session_mode not in SESSION_MODES:
            raise ValueError(
                f"session_mode must be one of {SESSION_MODES}, "
                f"got {self.session_mode!r}"
            )
        if self.batch_max_size < 1:
            raise ValueError(f"batch_max_size must be >= 1, got {self.batch_max_size}")
        if self.batch_max_delay_seconds < 0:
            raise ValueError("batch_max_delay_seconds must be >= 0")
        if self.cancel_grace_seconds < 0:
            raise ValueError("cancel_grace_seconds must be >= 0")
        if self.trace_ring_size < 1:
            raise ValueError(
                f"trace_ring_size must be >= 1, got {self.trace_ring_size}"
            )
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds < 0
        ):
            raise ValueError("default_timeout_seconds must be >= 0")


class LinkingService:
    """Concurrent linking over one warm context."""

    def __init__(
        self,
        context: LinkingContext,
        config: ServiceConfig = ServiceConfig(),
        linker_config: TenetConfig = TenetConfig(),
        logger: Optional[StructuredLogger] = None,
        snapshot_info: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.config = config
        # Identity of the snapshot the context was warm-started from
        # (None for a cold build); surfaced verbatim on /metrics so a
        # rolling restart can assert every replica serves the same
        # artifact bytes (compare the content_digest).
        self.snapshot_info = snapshot_info
        self.caches = LinkerCaches(config.cache)
        self.linker = attach_caches(TenetLinker(context, linker_config), self.caches)
        self.metrics = MetricsRegistry()
        trace_enabled = (
            config.trace_enabled
            if config.trace_enabled is not None
            else tracing_enabled_by_env()
        )
        self.tracer = Tracer(enabled=trace_enabled, ring_size=config.trace_ring_size)
        # JSON-lines request logging; the default follows TENET_LOG so
        # the engine never prints unless asked to.
        self.logger = logger if logger is not None else StructuredLogger.from_env()
        self.metrics.set_gauge("pool.worker_count", config.workers)
        self.metrics.set_gauge("pool.active_workers", 0)
        self._pool = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="tenet-link"
        )
        self._batcher = MicroBatcher(
            self,
            max_size=config.batch_max_size,
            max_delay_seconds=config.batch_max_delay_seconds,
        )
        # Overload layer: bounded two-lane admission queue in front of
        # the pool, per-client token buckets, and the degraded-mode
        # hysteresis switch fed by queue depth + rolling p95.
        self._latency_window = LatencyWindow(config.overload.latency_window)
        self._degraded_mode = DegradedModeController(config.overload)
        self._limiter: Optional[ClientRateLimiter] = None
        if config.overload.rate_limit_per_second is not None:
            self._limiter = ClientRateLimiter(
                config.overload.rate_limit_per_second,
                config.overload.rate_limit_burst,
                max_clients=config.overload.max_tracked_clients,
            )
        self._admission = AdmissionController(
            config.overload,
            config.workers,
            self._dispatch_admitted,
            close_error=lambda: ServiceClosedError("LinkingService is closed"),
        )
        self.metrics.set_gauge("admission.queue_depth", 0)
        self.metrics.set_gauge("degraded_mode.active", 0)
        # Stateful sessions: the manager shares the warm linker, so
        # every session increment reuses the same candidate/similarity
        # caches as /link.
        self.sessions: Optional[SessionManager] = None
        if config.sessions_enabled:
            self.sessions = SessionManager(
                self._session_factory,
                max_sessions=config.session_max_sessions,
                ttl_seconds=config.session_ttl_seconds,
            )
            self.metrics.set_gauge("sessions.active", 0)
        # Lifecycle guard: every pool submission takes this lock and
        # re-checks `_pool_open`; close() flips the flag under the same
        # lock immediately before ThreadPoolExecutor.shutdown.  A
        # submission therefore either lands strictly before shutdown
        # (and is drained by `wait=True`) or gets the typed
        # ServiceClosedError — never the executor's raw
        # "cannot schedule new futures after shutdown" RuntimeError.
        self._lifecycle = threading.Lock()
        self._pool_open = True
        self._closed = False

    # ------------------------------------------------------------------
    # request paths
    # ------------------------------------------------------------------
    def handle(
        self,
        request: LinkRequest,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        """Link one request in the calling thread.

        Never raises: failures come back as an ``error`` envelope so one
        poisonous document cannot take down a worker or a batch, and a
        tripped *deadline* comes back as the degraded prior-only answer
        built from the aborted run's partial state.

        A *trace* started at submission (by :meth:`link` / :meth:`submit`
        / :meth:`link_batch`) arrives here so the queue-wait — the gap
        between submission and a worker picking the request up — is its
        first span; when called directly, a fresh trace is started.
        """
        started = time.perf_counter()
        if trace is None:
            trace = self.tracer.start(request.request_id)
        if trace is not None:
            queue_wait = max(0.0, trace.elapsed())
            trace.record("queue_wait", queue_wait)
            self.metrics.observe("latency.queue_wait", queue_wait)
        cache_before = self._cache_counters() if trace is not None else None
        self.metrics.incr("requests.total")
        active = self.metrics.add_gauge("pool.active_workers", 1)
        self.metrics.set_gauge(
            "pool.saturation", min(1.0, active / self.config.workers)
        )
        try:
            try:
                if self._degraded_mode.active:
                    # Overload valve: under pressure (queue depth or p95
                    # past the enter watermarks) requests are answered
                    # from the prior-only fast path until the hysteresis
                    # controller sees the signals back under the exit
                    # watermarks.
                    return self._finalize(
                        self._respond_degraded_mode(request, started, trace),
                        trace,
                        cache_before,
                    )
                result = self.linker.link(
                    request.text, deadline=deadline, trace=trace
                )
            except DeadlineExceeded as exc:
                return self._finalize(
                    self._respond_cancelled(request, exc, started, trace),
                    trace,
                    cache_before,
                )
            except Exception as exc:  # noqa: BLE001 - envelope, don't crash workers
                self.metrics.incr("requests.errors")
                return self._finalize(
                    LinkResponse(
                        request_id=request.request_id,
                        elapsed_seconds=time.perf_counter() - started,
                        error=ServiceError(
                            "internal", f"{type(exc).__name__}: {exc}"
                        ),
                    ),
                    trace,
                    cache_before,
                )
            return self._finalize(
                self._respond(
                    request, result, time.perf_counter() - started, degraded=False
                ),
                trace,
                cache_before,
            )
        finally:
            active = self.metrics.add_gauge("pool.active_workers", -1)
            self.metrics.set_gauge(
                "pool.saturation", min(1.0, max(0.0, active) / self.config.workers)
            )

    def link(self, request: LinkRequest) -> LinkResponse:
        """Link with the per-request deadline and graceful degradation."""
        deadline = Deadline.after(self._timeout_for(request))
        trace = self.tracer.start(request.request_id)
        try:
            future = self._pool_submit(self.handle, request, deadline, trace)
        except ServiceClosedError:
            return self._closed_response(request, deadline, trace)
        return self._await(request, deadline, future, trace)

    def submit(
        self, request: LinkRequest, deadline: Optional[Deadline] = None
    ) -> "Future[LinkResponse]":
        """Asynchronous variant: a future of the response.

        The request's deadline (anchored here, at submission) rides
        along and is enforced cooperatively by the worker itself — when
        it trips, the future resolves with the degraded response.  No
        caller-side wall-clock guard is applied; callers managing their
        own deadlines can pass ``deadline`` explicitly or cancel it.
        """
        if deadline is None:
            deadline = Deadline.after(self._timeout_for(request))
        trace = self.tracer.start(request.request_id)
        try:
            return self._pool_submit(self.handle, request, deadline, trace)
        except ServiceClosedError:
            # Losing the race against shutdown resolves the future with
            # the clean 503 envelope (never a raised RuntimeError) so
            # fire-and-collect callers — notably the MicroBatcher's
            # dispatch thread — stay hang- and crash-free.
            resolved: "Future[LinkResponse]" = Future()
            resolved.set_result(self._closed_response(request, deadline, trace))
            return resolved

    def enqueue(self, request: LinkRequest) -> "Future[LinkResponse]":
        """Queue for micro-batched dispatch (see :class:`MicroBatcher`)."""
        return self._batcher.enqueue(request)

    # ------------------------------------------------------------------
    # admitted request paths (what the HTTP front end calls)
    # ------------------------------------------------------------------
    def admit(
        self,
        request: LinkRequest,
        lane: str = INTERACTIVE_LANE,
        client_id: Optional[str] = None,
    ) -> "Future[LinkResponse]":
        """Queue *request* through the bounded admission layer.

        Raises :class:`~repro.service.overload.AdmissionError` when the
        request is shed — the client is over its token bucket
        (``rate_limited``) or the lane is at capacity (``queue_full``) —
        carrying the ``Retry-After`` hint.  Raises
        :class:`ServiceClosedError` after shutdown.
        """
        future, _deadline, _trace = self._admit(request, lane, client_id)
        return future

    def link_admitted(
        self,
        request: LinkRequest,
        lane: str = INTERACTIVE_LANE,
        client_id: Optional[str] = None,
    ) -> LinkResponse:
        """Synchronous admitted path with the same deadline semantics
        as :meth:`link`.  Admission rejections propagate as
        :class:`AdmissionError` (the HTTP layer's 429); a shutdown while
        the request waits in the queue comes back as a clean
        ``unavailable`` error envelope, never a hang."""
        future, deadline, trace = self._admit(request, lane, client_id)
        try:
            return self._await(request, deadline, future, trace)
        except ServiceClosedError:
            return self._closed_envelope(request, deadline)

    def link_batch_admitted(
        self, batch: BatchLinkRequest, client_id: Optional[str] = None
    ) -> BatchLinkResponse:
        """Admitted batch path: every document takes the batch lane.

        Batch work is strictly lower priority than interactive traffic:
        a queued batch document never dispatches while an interactive
        request waits.  Per-document admission failures become error
        envelopes (``rate_limited`` / ``queue_full``) so one shed
        document does not void the rest of the batch.
        """
        self.metrics.incr("requests.batches")
        self.metrics.incr("requests.batched_documents", len(batch.requests))
        jobs = []
        for request in batch.requests:
            try:
                jobs.append((request, self._admit(request, BATCH_LANE, client_id)))
            except AdmissionError as exc:
                jobs.append((request, exc))
        responses = []
        for request, job in jobs:
            if isinstance(job, AdmissionError):
                responses.append(self._rejected_envelope(request, job))
                continue
            future, deadline, trace = job
            try:
                responses.append(self._await(request, deadline, future, trace))
            except ServiceClosedError:
                responses.append(self._closed_envelope(request, deadline))
        return BatchLinkResponse(tuple(responses))

    # ------------------------------------------------------------------
    # session paths (POST /session/{id}/feed and friends)
    # ------------------------------------------------------------------
    def session_feed_admitted(
        self,
        session_id: str,
        request: SessionFeedRequest,
        client_id: Optional[str] = None,
    ) -> SessionFeedResponse:
        """Feed one increment into a session through the admission layer.

        Same admission semantics as :meth:`link_admitted` — per-client
        token buckets and the bounded lane queue apply, so a burst of
        session traffic is shed with 429s before it can starve the pool.
        The increment's deadline anchors here, at admission.  Lifecycle
        errors come back as typed envelopes, never raises (except
        :class:`AdmissionError` / :class:`ServiceClosedError`, which the
        HTTP layer maps to 429/503): an evicted session is
        ``session_evicted`` (HTTP 410 — recreate and re-feed), a closed
        manager is ``unavailable`` (503), id/kind misuse is
        ``bad_request``, and a tripped deadline is ``timeout`` with the
        session state rolled back to the previous increment.
        """
        if self.sessions is None:
            raise SessionError("sessions are not enabled on this service")
        if self._closed:
            raise ServiceClosedError("LinkingService is closed")
        lane = request.lane or INTERACTIVE_LANE
        if self._limiter is not None:
            client = client_id or "anonymous"
            retry_after = self._limiter.try_acquire(client)
            if retry_after is not None:
                self.metrics.incr("requests.rejected")
                self.metrics.incr("requests.rejected.rate_limited")
                raise RateLimitedError(
                    f"client {client!r} is over its rate limit",
                    retry_after_seconds=retry_after,
                )
        deadline = Deadline.after(self._timeout_for(request))
        trace = self.tracer.start(request.request_id)
        if trace is not None:
            trace.annotate(
                lane=lane, session_id=session_id, session_kind=request.kind
            )
        future: "Future[SessionFeedResponse]" = Future()

        def work() -> SessionFeedResponse:
            return self._handle_session_feed(session_id, request, deadline, trace)

        try:
            self._admission.admit(
                work, future, lane, retry_after_hint=self._retry_after_hint()
            )
        except AdmissionError:
            self.metrics.incr("requests.rejected")
            self.metrics.incr("requests.rejected.queue_full")
            if trace is not None:
                trace.mark_aborted("admission")
                self.tracer.finish(trace)
            raise
        self.metrics.incr(f"admission.admitted.{lane}")
        self._update_overload_state()
        try:
            return future.result(deadline.remaining())
        except FutureTimeoutError:
            deadline.cancel()
            if not future.cancel():
                # The worker is mid-feed; the cooperative abort will
                # resolve the future with the timeout envelope (and the
                # session rolled back) within one checkpoint interval.
                try:
                    return future.result(self.config.cancel_grace_seconds)
                except FutureTimeoutError:
                    self.metrics.incr("requests.abandoned")
            elif trace is not None:
                trace.mark_aborted("queue")
                self.tracer.finish(trace)
            self.metrics.incr("requests.timeouts")
            return self._session_envelope(
                session_id,
                request,
                deadline.elapsed(),
                ServiceError(
                    "timeout",
                    "session feed exceeded its deadline; "
                    "session state unchanged",
                ),
                trace,
            )
        except CancelledError:
            return self._session_envelope(
                session_id,
                request,
                deadline.elapsed(),
                ServiceError(
                    "timeout", "session feed was cancelled before dispatch"
                ),
                trace,
            )
        except ServiceClosedError:
            self.metrics.incr("requests.rejected_on_close")
            return self._session_envelope(
                session_id,
                request,
                deadline.elapsed(),
                ServiceError("unavailable", "service is shutting down"),
                trace,
            )

    def session_info(self, session_id: str) -> Optional[Dict[str, Any]]:
        """Introspection payload for ``GET /session/{id}`` (None = 404)."""
        if self.sessions is None:
            return None
        return self.sessions.get(session_id)

    def session_delete(self, session_id: str) -> bool:
        """Drop one session (``DELETE /session/{id}``)."""
        if self.sessions is None:
            return False
        deleted = self.sessions.delete(session_id)
        if deleted:
            self.metrics.incr("session.deleted")
            self.metrics.set_gauge(
                "sessions.active", self.sessions.active_count()
            )
        return deleted

    def link_batch(self, batch: BatchLinkRequest) -> BatchLinkResponse:
        """Link one explicit batch; responses keep the request order.

        Every request's deadline is anchored *here*, when its work is
        submitted to the pool — not when its turn comes in the collection
        loop — so request *i* gets its own wall-clock window rather than
        ``timeout + sum(earlier waits)``, and the ``elapsed_seconds`` of
        a degraded response measures from submission.
        """
        self.metrics.incr("requests.batches")
        self.metrics.incr("requests.batched_documents", len(batch.requests))
        jobs = []
        for request in batch.requests:
            deadline = Deadline.after(self._timeout_for(request))
            trace = self.tracer.start(request.request_id)
            try:
                future = self._pool_submit(self.handle, request, deadline, trace)
            except ServiceClosedError:
                future = Future()
                future.set_result(
                    self._closed_response(request, deadline, trace)
                )
            jobs.append((request, deadline, future, trace))
        responses = [
            self._await(request, deadline, future, trace)
            for request, deadline, future, trace in jobs
        ]
        return BatchLinkResponse(tuple(responses))

    def link_text(self, text: str) -> LinkingResult:
        """Convenience: link raw text through the warm linker."""
        return self.linker.link(text)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload: counters, latencies, cache stats."""
        payload = self.metrics.snapshot()
        payload["caches"] = self.caches.snapshot(self.linker)
        payload["tracing"] = self.tracer.stats()
        payload["snapshot"] = self.snapshot_info
        enters, exits = self._degraded_mode.transitions
        payload["overload"] = {
            "config": self.config.overload.to_json(),
            "queue_depth": {
                "interactive": self._admission.depth(INTERACTIVE_LANE),
                "batch": self._admission.depth(BATCH_LANE),
                "total": self._admission.depth(),
            },
            "inflight": self._admission.inflight(),
            "window_p95_seconds": self._latency_window.percentile(0.95),
            "degraded_mode": {
                "active": self._degraded_mode.active,
                "enters": enters,
                "exits": exits,
            },
            "rate_limiter": (
                {"tracked_clients": self._limiter.tracked_clients}
                if self._limiter is not None
                else None
            ),
        }
        payload["sessions"] = (
            self.sessions.stats() if self.sessions is not None else None
        )
        payload["config"] = {
            "workers": self.config.workers,
            "default_timeout_seconds": self.config.default_timeout_seconds,
            "batch_max_size": self.config.batch_max_size,
            "batch_max_delay_seconds": self.config.batch_max_delay_seconds,
            "cancel_grace_seconds": self.config.cancel_grace_seconds,
            "cache_enabled": self.caches.enabled,
            "trace_enabled": self.tracer.enabled,
            "trace_ring_size": self.config.trace_ring_size,
            "sessions_enabled": self.config.sessions_enabled,
            "session_mode": self.config.session_mode,
            "session_max_sessions": self.config.session_max_sessions,
            "session_ttl_seconds": self.config.session_ttl_seconds,
        }
        return payload

    def close(self) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        # Order matters: stop admitting first, so everything still
        # queued is rejected with the typed ServiceClosedError (which
        # waiting callers surface as a clean `unavailable` envelope —
        # never a hang, never a silent drop); then the batcher (whose
        # dispatch thread may still feed its final batch to the pool),
        # then the pool (draining the in-flight work).  `_pool_open`
        # flips under the lifecycle lock at the last moment, so any
        # submission that won the lock first is safely inside the pool
        # before shutdown begins.
        rejected = self._admission.close()
        if rejected:
            self.metrics.incr("requests.rejected_on_close", rejected)
        # Drain sessions after admission stops: nothing new can queue,
        # and any feed already in the pool observes the closed flag and
        # resolves with the clean `unavailable` envelope (503).
        if self.sessions is not None:
            drained = self.sessions.close()
            if drained:
                self.metrics.incr("session.drained_on_close", drained)
            self.metrics.set_gauge("sessions.active", 0)
        self._batcher.close()
        with self._lifecycle:
            self._pool_open = False
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "LinkingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pool_submit(self, fn, *args) -> "Future[LinkResponse]":
        """Submit to the worker pool, racing shutdown safely.

        The executor's own post-shutdown behaviour is a raw
        ``RuntimeError: cannot schedule new futures after shutdown``;
        taking the lifecycle lock around the open-check + submit pair
        makes that unreachable — :meth:`close` flips ``_pool_open``
        under the same lock before calling ``shutdown``, so a submission
        either fully lands first or raises :class:`ServiceClosedError`.
        """
        with self._lifecycle:
            if not self._pool_open:
                raise ServiceClosedError("LinkingService is closed")
            return self._pool.submit(fn, *args)

    def _closed_response(
        self,
        request: LinkRequest,
        deadline: Deadline,
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        """Seal the trace of a submission that lost the shutdown race."""
        if trace is not None:
            trace.mark_aborted("shutdown")
            self.tracer.finish(trace)
        response = self._closed_envelope(request, deadline)
        if trace is not None:
            response = replace(response, trace_id=trace.trace_id)
        return response

    def _timeout_for(self, request: LinkRequest) -> Optional[float]:
        return (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.config.default_timeout_seconds
        )

    def _session_factory(self, kind: str):
        session_config = SessionConfig(mode=self.config.session_mode)
        if kind == "conversation":
            return ConversationSession(self.linker, session_config)
        return StreamingSession(self.linker, session_config)

    def _handle_session_feed(
        self,
        session_id: str,
        request: SessionFeedRequest,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> SessionFeedResponse:
        """Run one session increment in the worker thread.

        Never raises: lifecycle and solver failures come back as typed
        error envelopes.  The session's commit-at-end protocol means any
        failure (deadline abort included) leaves the session at its
        previous increment, so the client can simply retry the chunk.
        """
        started = time.perf_counter()
        if trace is not None:
            queue_wait = max(0.0, trace.elapsed())
            trace.record("queue_wait", queue_wait)
            self.metrics.observe("latency.queue_wait", queue_wait)
        cache_before = self._cache_counters() if trace is not None else None
        self.metrics.incr("requests.total")
        self.metrics.incr("session.feeds")
        active = self.metrics.add_gauge("pool.active_workers", 1)
        self.metrics.set_gauge(
            "pool.saturation", min(1.0, active / self.config.workers)
        )
        try:
            error: Optional[ServiceError] = None
            try:
                outcome, created = self.sessions.feed(
                    session_id,
                    request.chunk,
                    kind=request.kind,
                    deadline=deadline,
                    trace=trace,
                )
            except SessionEvictedError as exc:
                self.metrics.incr("session.rejected.evicted")
                error = ServiceError("session_evicted", str(exc))
            except SessionClosedError as exc:
                self.metrics.incr("requests.rejected_on_close")
                error = ServiceError("unavailable", str(exc))
            except SessionError as exc:
                self.metrics.incr("requests.errors")
                error = ServiceError("bad_request", str(exc))
            except DeadlineExceeded as exc:
                self.metrics.incr("requests.cancelled")
                self.metrics.incr(f"stage.{exc.stage}.aborted")
                self.metrics.incr("session.feed_timeouts")
                error = ServiceError(
                    "timeout",
                    f"session feed aborted at stage {exc.stage!r}; "
                    "session state unchanged",
                )
            except Exception as exc:  # noqa: BLE001 - envelope, don't crash workers
                self.metrics.incr("requests.errors")
                error = ServiceError("internal", f"{type(exc).__name__}: {exc}")
            if error is not None:
                return self._finalize(
                    SessionFeedResponse(
                        session_id=session_id,
                        kind=request.kind,
                        request_id=request.request_id,
                        elapsed_seconds=time.perf_counter() - started,
                        error=error,
                    ),
                    trace,
                    cache_before,
                )
            elapsed = time.perf_counter() - started
            if created:
                self.metrics.incr("session.created")
            self.metrics.incr(f"session.solve.{outcome.solve}")
            if outcome.coref_inherited:
                self.metrics.incr(
                    "session.coref_inherited", len(outcome.coref_inherited)
                )
            self.metrics.incr("session.memo.hits", outcome.memo_hits)
            self.metrics.incr("session.memo.misses", outcome.memo_misses)
            timings = dict(outcome.stage_seconds)
            self.metrics.observe_stages(timings)
            self.metrics.observe("latency.session_feed", elapsed)
            self._latency_window.observe(elapsed)
            self._update_overload_state()
            self.metrics.incr("requests.completed")
            stats = self.sessions.stats()
            self.metrics.set_gauge("sessions.active", stats["active"])
            self.metrics.set_gauge("sessions.evicted_lru", stats["evicted_lru"])
            self.metrics.set_gauge("sessions.evicted_ttl", stats["evicted_ttl"])
            return self._finalize(
                SessionFeedResponse(
                    result=outcome.result.to_json(include_timings=False),
                    session_id=session_id,
                    kind=request.kind,
                    mode=outcome.mode,
                    increment=outcome.increment,
                    created=created,
                    solve=outcome.solve,
                    mentions=outcome.mention_counts(),
                    memo={
                        "hits": outcome.memo_hits,
                        "misses": outcome.memo_misses,
                    },
                    coref=tuple(outcome.coref_inherited),
                    text_length=outcome.text_length,
                    request_id=request.request_id,
                    elapsed_seconds=elapsed,
                    timings=timings,
                ),
                trace,
                cache_before,
            )
        finally:
            active = self.metrics.add_gauge("pool.active_workers", -1)
            self.metrics.set_gauge(
                "pool.saturation", min(1.0, max(0.0, active) / self.config.workers)
            )

    def _session_envelope(
        self,
        session_id: str,
        request: SessionFeedRequest,
        elapsed: float,
        error: ServiceError,
        trace: Optional[Trace] = None,
    ) -> SessionFeedResponse:
        """Caller-side session error envelope (worker never answered)."""
        response = SessionFeedResponse(
            session_id=session_id,
            kind=request.kind,
            request_id=request.request_id,
            elapsed_seconds=elapsed,
            error=error,
        )
        if trace is not None:
            response = replace(response, trace_id=trace.trace_id)
        self._log_request(response, event="session.caller_error")
        return response

    def _admit(
        self,
        request: LinkRequest,
        lane: str,
        client_id: Optional[str],
    ) -> Tuple["Future[LinkResponse]", Deadline, Optional[Trace]]:
        """Rate-limit then enqueue; the deadline anchors here, at admission."""
        if self._closed:
            raise ServiceClosedError("LinkingService is closed")
        if self._limiter is not None:
            client = client_id or "anonymous"
            retry_after = self._limiter.try_acquire(client)
            if retry_after is not None:
                self.metrics.incr("requests.rejected")
                self.metrics.incr("requests.rejected.rate_limited")
                raise RateLimitedError(
                    f"client {client!r} is over its rate limit",
                    retry_after_seconds=retry_after,
                )
        deadline = Deadline.after(self._timeout_for(request))
        trace = self.tracer.start(request.request_id)
        if trace is not None:
            trace.annotate(lane=lane)
        future: "Future[LinkResponse]" = Future()

        def work() -> LinkResponse:
            return self.handle(request, deadline, trace)

        try:
            self._admission.admit(
                work, future, lane, retry_after_hint=self._retry_after_hint()
            )
        except AdmissionError:
            self.metrics.incr("requests.rejected")
            self.metrics.incr("requests.rejected.queue_full")
            if trace is not None:
                trace.mark_aborted("admission")
                self.tracer.finish(trace)
            raise
        self.metrics.incr(f"admission.admitted.{lane}")
        self._update_overload_state()
        return future, deadline, trace

    def _retry_after_hint(self) -> Optional[float]:
        """Seconds a shed client should back off: backlog x mean latency."""
        mean = self._latency_window.mean()
        if mean is None:
            return None
        backlog = self._admission.depth() + self._admission.inflight()
        return mean * max(1.0, backlog / self.config.workers)

    def _dispatch_admitted(self, item) -> None:
        """Feed one admitted item to the pool (admission dispatcher hook).

        A dispatch racing shutdown raises the typed
        :class:`ServiceClosedError`, which the admission loop chains onto
        the waiter's future — surfaced as the clean ``unavailable``
        envelope by :meth:`link_admitted`.
        """
        pooled = self._pool_submit(item.work)

        def _done(source: "Future[LinkResponse]") -> None:
            self._admission.release()
            self._update_overload_state()
            if item.future.done():
                return
            exc = source.exception()
            if exc is not None:
                item.future.set_exception(exc)
            else:
                item.future.set_result(source.result())

        pooled.add_done_callback(_done)

    def _update_overload_state(self) -> None:
        """Re-evaluate the degraded-mode switch and the queue gauges."""
        depth = self._admission.depth()
        p95 = self._latency_window.percentile(0.95)
        was = self._degraded_mode.active
        now = self._degraded_mode.update(depth, p95)
        self.metrics.set_gauge("admission.queue_depth", depth)
        self.metrics.set_gauge(
            "admission.queue_depth.interactive",
            self._admission.depth(INTERACTIVE_LANE),
        )
        self.metrics.set_gauge(
            "admission.queue_depth.batch", self._admission.depth(BATCH_LANE)
        )
        self.metrics.set_gauge("degraded_mode.active", 1 if now else 0)
        if now != was and self.logger.enabled:
            self.logger.log(
                "overload.degraded_mode",
                level="warning",
                active=now,
                queue_depth=depth,
                p95_seconds=p95,
            )

    def _respond_degraded_mode(
        self,
        request: LinkRequest,
        started: float,
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        """Overload routing: answer from the prior-only fast path."""
        self.metrics.incr("degraded_mode.requests")
        if trace is not None:
            trace.annotate(degraded_mode=True)
            trace.record(
                "degraded_route",
                0.0,
                queue_depth=self._admission.depth(),
                p95_seconds=self._latency_window.percentile(0.95),
            )
        try:
            result = self.linker.link_prior_only(request.text, trace=trace)
        except Exception as exc:  # noqa: BLE001 - envelope, don't crash workers
            self.metrics.incr("requests.errors")
            return LinkResponse(
                request_id=request.request_id,
                elapsed_seconds=time.perf_counter() - started,
                degraded=True,
                error=ServiceError("internal", f"{type(exc).__name__}: {exc}"),
            )
        return self._respond(
            request, result, time.perf_counter() - started, degraded=True
        )

    def _rejected_envelope(
        self, request: LinkRequest, exc: AdmissionError
    ) -> LinkResponse:
        return LinkResponse(
            request_id=request.request_id,
            error=ServiceError(
                exc.code,
                f"{exc} (retry after {exc.retry_after_seconds:.2f}s)",
            ),
        )

    def _closed_envelope(
        self, request: LinkRequest, deadline: Deadline
    ) -> LinkResponse:
        """A queued request rejected by shutdown: clean typed envelope."""
        self.metrics.incr("requests.rejected_on_close")
        return LinkResponse(
            request_id=request.request_id,
            elapsed_seconds=deadline.elapsed(),
            error=ServiceError("unavailable", "service is shutting down"),
        )

    def _await(
        self,
        request: LinkRequest,
        deadline: Deadline,
        future: "Future[LinkResponse]",
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        """Collect one pooled response, enforcing *deadline* wall-clock.

        The fast path is the worker's own cooperative abort: it notices
        the expiry at a checkpoint and resolves the future with the
        partial-based degraded response.  The caller only steps in when
        the worker is parked between checkpoints (grace expired) or the
        request never left the queue (future cancelled) — then the
        degraded answer is computed caller-side.
        """
        try:
            return future.result(deadline.remaining())
        except FutureTimeoutError:
            deadline.cancel()
            if not future.cancel():
                # The worker is running; give it one checkpoint interval
                # to deliver the cheaper partial-based degraded response.
                try:
                    return future.result(self.config.cancel_grace_seconds)
                except FutureTimeoutError:
                    self.metrics.incr("requests.abandoned")
            elif trace is not None:
                # The request never left the queue, so no worker will
                # ever touch this trace: seal it here with the outcome.
                trace.mark_aborted("queue")
                self.tracer.finish(trace)
        except CancelledError:
            pass
        return self._degrade(request, deadline, trace)

    def _respond(
        self,
        request: LinkRequest,
        result: LinkingResult,
        elapsed: float,
        degraded: bool,
    ) -> LinkResponse:
        timings = dict(result.stage_seconds)
        self.metrics.observe_stages(timings)
        self.metrics.observe("latency.link", elapsed)
        # Feed the overload layer: the rolling window drives the p95
        # watermark, and every completion re-evaluates the hysteresis
        # switch (so degraded mode can disengage once pressure drops).
        self._latency_window.observe(elapsed)
        self._update_overload_state()
        if degraded:
            self.metrics.incr("requests.degraded")
        else:
            self.metrics.incr("requests.completed")
        if result.cover_mode is not None:
            # Router observability: how many answers came from the exact
            # tree-cover path vs. the pairwise fast path (/metrics).
            self.metrics.incr(f"cover_mode.{result.cover_mode}")
        return LinkResponse(
            result=result.to_json(include_timings=False),
            request_id=request.request_id,
            degraded=degraded,
            elapsed_seconds=elapsed,
            timings=timings,
            aborted_stage=result.aborted_stage,
        )

    def _respond_cancelled(
        self,
        request: LinkRequest,
        exc: DeadlineExceeded,
        started: float,
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        """Worker-side abort: degrade from the run's salvaged partials."""
        self.metrics.incr("requests.cancelled")
        self.metrics.incr(f"stage.{exc.stage}.aborted")
        partial = exc.partial
        try:
            if partial is not None and partial.candidates is not None:
                # Candidates survived the abort: the prior-only answer
                # needs no recomputation of extraction or generation.
                result = self.linker.prior_only_from_candidates(
                    partial.candidates, timings=partial.stage_seconds, trace=trace
                )
            else:
                result = self.linker.link_prior_only(request.text, trace=trace)
        except Exception as fallback_exc:  # noqa: BLE001 - last resort envelope
            self.metrics.incr("requests.errors")
            return LinkResponse(
                request_id=request.request_id,
                elapsed_seconds=time.perf_counter() - started,
                degraded=True,
                error=ServiceError(
                    "timeout", f"{type(fallback_exc).__name__}: {fallback_exc}"
                ),
            )
        result.aborted_stage = exc.stage
        return self._respond(
            request, result, time.perf_counter() - started, degraded=True
        )

    def _degrade(
        self,
        request: LinkRequest,
        deadline: Deadline,
        trace: Optional[Trace] = None,
    ) -> LinkResponse:
        """Caller-side fallback: the worker never produced a response.

        Either the request never left the queue (its future was
        cancelled) or the worker blew through the cancellation grace;
        answer from the prior-only fast path in the calling thread.
        ``elapsed_seconds`` measures from the deadline's anchor — the
        moment the request was submitted.

        The trace (if any) may still be owned by a running worker, so
        only its immutable ``trace_id`` is attached here — the worker
        seals the span record whenever it finally aborts.
        """
        self.metrics.incr("requests.timeouts")
        try:
            result = self.linker.link_prior_only(request.text)
        except Exception as exc:  # noqa: BLE001 - last resort envelope
            self.metrics.incr("requests.errors")
            response = LinkResponse(
                request_id=request.request_id,
                elapsed_seconds=deadline.elapsed(),
                degraded=True,
                error=ServiceError("timeout", f"{type(exc).__name__}: {exc}"),
            )
        else:
            response = self._respond(
                request, result, deadline.elapsed(), degraded=True
            )
        if trace is not None:
            response = replace(response, trace_id=trace.trace_id)
        self._log_request(response, event="request.caller_degraded")
        return response

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def _cache_counters(self) -> Dict[str, Tuple[int, int]]:
        """Current (hits, misses) of every cross-request cache."""
        counters: Dict[str, Tuple[int, int]] = {}
        for name, cache in (
            ("candidates", self.caches.candidates),
            ("similarity", self.caches.similarity),
        ):
            if cache is not None:
                stats = cache.stats
                counters[name] = (stats.hits, stats.misses)
        fuzzy = self.linker.context.alias_index.fuzzy_cache_stats()
        counters["alias_fuzzy"] = (int(fuzzy["hits"]), int(fuzzy["misses"]))
        return counters

    def _cache_delta(
        self, before: Dict[str, Tuple[int, int]]
    ) -> Dict[str, int]:
        """Hit/miss deltas since *before*.

        The caches are shared across workers, so under concurrency a
        delta can include a neighbour request's lookups — the numbers
        are attribution hints, not exact per-request accounting.
        """
        delta: Dict[str, int] = {}
        for name, (hits_now, misses_now) in self._cache_counters().items():
            hits_then, misses_then = before.get(name, (hits_now, misses_now))
            delta[f"{name}_hits"] = max(0, hits_now - hits_then)
            delta[f"{name}_misses"] = max(0, misses_now - misses_then)
        return delta

    def _finalize(
        self,
        response: LinkResponse,
        trace: Optional[Trace],
        cache_before: Optional[Dict[str, Tuple[int, int]]],
    ) -> LinkResponse:
        """Seal the trace, stamp its id on the response, emit the log."""
        cache_delta: Optional[Dict[str, int]] = None
        if trace is not None:
            if cache_before is not None:
                cache_delta = self._cache_delta(cache_before)
                trace.record("cache_lookups", 0.0, **cache_delta)
            trace.annotate(
                degraded=response.degraded,
                error_code=response.error.code if response.error else None,
            )
            self.tracer.finish(trace)
            response = replace(response, trace_id=trace.trace_id)
        self._log_request(response, cache_delta=cache_delta)
        return response

    def _log_request(
        self,
        response: LinkResponse,
        event: Optional[str] = None,
        cache_delta: Optional[Dict[str, int]] = None,
    ) -> None:
        """One structured request log line (no-op when logging is off)."""
        if not self.logger.enabled:
            return
        if event is None:
            if response.error is not None:
                event = "request.error"
            elif response.degraded:
                event = "request.degraded"
            else:
                event = "request.completed"
        level = "info"
        if response.error is not None:
            level = "error"
        elif response.degraded:
            level = "warning"
        self.logger.log(
            event,
            level=level,
            trace_id=response.trace_id,
            request_id=response.request_id,
            elapsed_seconds=response.elapsed_seconds,
            degraded=response.degraded,
            aborted_stage=response.aborted_stage,
            stages={k: round(v, 6) for k, v in response.timings.items()},
            cache=cache_delta,
            error_code=response.error.code if response.error else None,
        )


class _QueuedRequest:
    """One enqueued request awaiting micro-batch dispatch."""

    __slots__ = ("request", "future")

    def __init__(self, request: LinkRequest) -> None:
        self.request = request
        self.future: "Future[LinkResponse]" = Future()


class MicroBatcher:
    """Coalesces queued single requests into batches before dispatch.

    A daemon dispatcher thread drains the queue: a batch closes when it
    reaches ``max_size`` or when ``max_delay_seconds`` has passed since
    its first request, whichever comes first — the standard
    latency/throughput trade of serving systems.  Each batch is then
    fanned out to the service's worker pool and every caller's future is
    resolved with its own response.

    ``enqueue`` and ``close`` share one lock so the shutdown sentinel is
    always the *last* item the dispatch loop sees: an enqueue that has
    passed the closed check cannot slip its item in behind the sentinel
    and leave the caller's future forever unresolved.  As a second line
    of defence the loop drains stragglers after the sentinel anyway,
    failing them with :class:`ServiceClosedError`.
    """

    def __init__(
        self,
        service: LinkingService,
        max_size: int = 16,
        max_delay_seconds: float = 0.005,
    ) -> None:
        self._service = service
        self.max_size = max_size
        self.max_delay_seconds = max_delay_seconds
        self._queue: "queue.Queue[Optional[_QueuedRequest]]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="tenet-batcher", daemon=True
        )
        self._thread.start()

    def enqueue(self, request: LinkRequest) -> "Future[LinkResponse]":
        item = _QueuedRequest(request)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("MicroBatcher is closed")
            self._queue.put(item)
        return item.future

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._drain_after_close()
                return
            batch = [item]
            deadline = time.monotonic() + self.max_delay_seconds
            while len(batch) < self.max_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is None:
                    self._dispatch(batch)
                    self._drain_after_close()
                    return
                batch.append(extra)
            self._dispatch(batch)

    def _drain_after_close(self) -> None:
        """Resolve anything found behind the shutdown sentinel.

        With the shared enqueue/close lock this is unreachable in
        practice, but a straggler must never be left with a pending
        future — fail it with the typed shutdown error instead.
        """
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None and item.future.set_running_or_notify_cancel():
                item.future.set_exception(
                    ServiceClosedError("MicroBatcher closed before dispatch")
                )

    def _dispatch(self, batch: List[_QueuedRequest]) -> None:
        self._service.metrics.incr("batcher.batches")
        self._service.metrics.incr("batcher.documents", len(batch))
        self._service.metrics.observe("batcher.batch_size", float(len(batch)))
        for item in batch:
            pooled = self._service.submit(item.request)
            pooled.add_done_callback(_chain_future(item.future))


def _chain_future(target: "Future[LinkResponse]"):
    def _copy(source: "Future[LinkResponse]") -> None:
        if not target.set_running_or_notify_cancel():
            return
        exc = source.exception()
        if exc is not None:
            target.set_exception(exc)
        else:
            target.set_result(source.result())

    return _copy
