"""The linking engine: a warm, concurrent, deadline-aware service.

:class:`LinkingService` owns one warm :class:`LinkingContext` and one
:class:`TenetLinker` wired with the cross-request caches, and dispatches
documents to a ``ThreadPoolExecutor``.  Linking is a pure function of
the document (the caches are idempotent memos), so N threads produce
results identical to sequential calls — the property the parity tests
pin down.

Request paths:

* :meth:`link` — synchronous, enforces the per-request deadline and
  degrades gracefully: on timeout the caller gets the fast prior-only
  fallback (marked ``degraded``) instead of an error, while the worker
  finishes in the background and warms the caches for the next hit.
* :meth:`submit` — fire-and-collect future for callers managing their
  own deadlines.
* :meth:`link_batch` — one micro-batch through the pool, responses in
  request order.
* :meth:`enqueue` — hands the request to the :class:`MicroBatcher`,
  which coalesces queued singles into batches (size- or delay-bound)
  before dispatch; useful for high-QPS callers that want batching
  without assembling batches themselves.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.core.result import LinkingResult
from repro.service.cache import LinkerCacheConfig, LinkerCaches, attach_caches
from repro.service.metrics import MetricsRegistry
from repro.service.schema import (
    BatchLinkRequest,
    BatchLinkResponse,
    LinkRequest,
    LinkResponse,
    ServiceError,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving engine."""

    workers: int = 4
    default_timeout_seconds: Optional[float] = None
    batch_max_size: int = 16
    batch_max_delay_seconds: float = 0.005
    cache: LinkerCacheConfig = field(default_factory=LinkerCacheConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_max_size < 1:
            raise ValueError(f"batch_max_size must be >= 1, got {self.batch_max_size}")
        if self.batch_max_delay_seconds < 0:
            raise ValueError("batch_max_delay_seconds must be >= 0")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds < 0
        ):
            raise ValueError("default_timeout_seconds must be >= 0")


class LinkingService:
    """Concurrent linking over one warm context."""

    def __init__(
        self,
        context: LinkingContext,
        config: ServiceConfig = ServiceConfig(),
        linker_config: TenetConfig = TenetConfig(),
    ) -> None:
        self.config = config
        self.caches = LinkerCaches(config.cache)
        self.linker = attach_caches(TenetLinker(context, linker_config), self.caches)
        self.metrics = MetricsRegistry()
        self._pool = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="tenet-link"
        )
        self._batcher = MicroBatcher(
            self,
            max_size=config.batch_max_size,
            max_delay_seconds=config.batch_max_delay_seconds,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # request paths
    # ------------------------------------------------------------------
    def handle(self, request: LinkRequest) -> LinkResponse:
        """Link one request in the calling thread (no deadline).

        Never raises: failures come back as an ``error`` envelope so one
        poisonous document cannot take down a worker or a batch.
        """
        started = time.perf_counter()
        self.metrics.incr("requests.total")
        try:
            result = self.linker.link(request.text)
        except Exception as exc:  # noqa: BLE001 - envelope, don't crash workers
            self.metrics.incr("requests.errors")
            return LinkResponse(
                request_id=request.request_id,
                elapsed_seconds=time.perf_counter() - started,
                error=ServiceError("internal", f"{type(exc).__name__}: {exc}"),
            )
        return self._respond(request, result, started, degraded=False)

    def link(self, request: LinkRequest) -> LinkResponse:
        """Link with the per-request deadline and graceful degradation."""
        started = time.perf_counter()
        timeout = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.config.default_timeout_seconds
        )
        future = self._pool.submit(self.handle, request)
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            return self._degrade(request, started)

    def submit(self, request: LinkRequest) -> "Future[LinkResponse]":
        """Asynchronous variant: a future of the (deadline-free) response."""
        return self._pool.submit(self.handle, request)

    def enqueue(self, request: LinkRequest) -> "Future[LinkResponse]":
        """Queue for micro-batched dispatch (see :class:`MicroBatcher`)."""
        return self._batcher.enqueue(request)

    def link_batch(self, batch: BatchLinkRequest) -> BatchLinkResponse:
        """Link one explicit batch; responses keep the request order."""
        self.metrics.incr("requests.batches")
        self.metrics.incr("requests.batched_documents", len(batch.requests))
        futures = [self._pool.submit(self.handle, r) for r in batch.requests]
        responses: List[LinkResponse] = []
        for request, future in zip(batch.requests, futures):
            started = time.perf_counter()
            timeout = (
                request.timeout_seconds
                if request.timeout_seconds is not None
                else self.config.default_timeout_seconds
            )
            try:
                responses.append(future.result(timeout))
            except FutureTimeoutError:
                future.cancel()
                responses.append(self._degrade(request, started))
        return BatchLinkResponse(tuple(responses))

    def link_text(self, text: str) -> LinkingResult:
        """Convenience: link raw text through the warm linker."""
        return self.linker.link(text)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload: counters, latencies, cache stats."""
        payload = self.metrics.snapshot()
        payload["caches"] = self.caches.snapshot(self.linker)
        payload["config"] = {
            "workers": self.config.workers,
            "default_timeout_seconds": self.config.default_timeout_seconds,
            "batch_max_size": self.config.batch_max_size,
            "batch_max_delay_seconds": self.config.batch_max_delay_seconds,
            "cache_enabled": self.caches.enabled,
        }
        return payload

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "LinkingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _respond(
        self,
        request: LinkRequest,
        result: LinkingResult,
        started: float,
        degraded: bool,
    ) -> LinkResponse:
        timings = dict(result.stage_seconds)
        self.metrics.observe_stages(timings)
        elapsed = time.perf_counter() - started
        self.metrics.observe("latency.link", elapsed)
        if degraded:
            self.metrics.incr("requests.degraded")
        else:
            self.metrics.incr("requests.completed")
        return LinkResponse(
            result=result.to_json(include_timings=False),
            request_id=request.request_id,
            degraded=degraded,
            elapsed_seconds=elapsed,
            timings=timings,
        )

    def _degrade(self, request: LinkRequest, started: float) -> LinkResponse:
        """Deadline exceeded: answer from the prior-only fast path."""
        self.metrics.incr("requests.timeouts")
        try:
            result = self.linker.link_prior_only(request.text)
        except Exception as exc:  # noqa: BLE001 - last resort envelope
            self.metrics.incr("requests.errors")
            return LinkResponse(
                request_id=request.request_id,
                elapsed_seconds=time.perf_counter() - started,
                degraded=True,
                error=ServiceError("timeout", f"{type(exc).__name__}: {exc}"),
            )
        return self._respond(request, result, started, degraded=True)


class _QueuedRequest:
    """One enqueued request awaiting micro-batch dispatch."""

    __slots__ = ("request", "future")

    def __init__(self, request: LinkRequest) -> None:
        self.request = request
        self.future: "Future[LinkResponse]" = Future()


class MicroBatcher:
    """Coalesces queued single requests into batches before dispatch.

    A daemon dispatcher thread drains the queue: a batch closes when it
    reaches ``max_size`` or when ``max_delay_seconds`` has passed since
    its first request, whichever comes first — the standard
    latency/throughput trade of serving systems.  Each batch is then
    fanned out to the service's worker pool and every caller's future is
    resolved with its own response.
    """

    def __init__(
        self,
        service: LinkingService,
        max_size: int = 16,
        max_delay_seconds: float = 0.005,
    ) -> None:
        self._service = service
        self.max_size = max_size
        self.max_delay_seconds = max_delay_seconds
        self._queue: "queue.Queue[Optional[_QueuedRequest]]" = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="tenet-batcher", daemon=True
        )
        self._thread.start()

    def enqueue(self, request: LinkRequest) -> "Future[LinkResponse]":
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        item = _QueuedRequest(request)
        self._queue.put(item)
        return item.future

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = time.monotonic() + self.max_delay_seconds
            while len(batch) < self.max_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is None:
                    self._dispatch(batch)
                    return
                batch.append(extra)
            self._dispatch(batch)

    def _dispatch(self, batch: List[_QueuedRequest]) -> None:
        self._service.metrics.incr("batcher.batches")
        self._service.metrics.incr("batcher.documents", len(batch))
        self._service.metrics.observe("batcher.batch_size", float(len(batch)))
        for item in batch:
            pooled = self._service.submit(item.request)
            pooled.add_done_callback(_chain_future(item.future))


def _chain_future(target: "Future[LinkResponse]"):
    def _copy(source: "Future[LinkResponse]") -> None:
        exc = source.exception()
        if exc is not None:
            target.set_exception(exc)
        else:
            target.set_result(source.result())

    return _copy
