"""Per-category performance breakdowns.

Slices a system's entity-linking performance along dimensions the
aggregate P/R/F hides: gold entity domain, gold entity type, and mention
ambiguity (how many senses the rendered surface has).  Useful for
answering "where exactly does system X lose?" beyond the per-mention
diagnoses of :mod:`repro.analysis.errors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.linker import LinkingContext
from repro.datasets.schema import Dataset, GoldMention
from repro.nlp.spans import SpanKind
from repro.textnorm import normalize_phrase


@dataclass
class Breakdown:
    """Accuracy per category value for one system/dataset pair."""

    system: str
    dataset: str
    dimension: str
    correct: Dict[str, int] = field(default_factory=dict)
    total: Dict[str, int] = field(default_factory=dict)

    def accuracy(self, category: str) -> float:
        total = self.total.get(category, 0)
        return self.correct.get(category, 0) / total if total else 0.0

    def categories(self) -> List[str]:
        return sorted(self.total, key=lambda c: -self.total[c])

    def rows(self) -> List[str]:
        lines = [f"{self.system} on {self.dataset} by {self.dimension}:"]
        for category in self.categories():
            lines.append(
                f"  {category:22s} {self.accuracy(category):6.3f} "
                f"({self.correct.get(category, 0)}/{self.total[category]})"
            )
        return lines


class PerformanceBreakdown:
    """Computes per-category accuracies for entity gold mentions."""

    def __init__(self, context: LinkingContext) -> None:
        self.context = context
        self._owners: Dict[str, int] = {}
        for entity in context.kb.entities():
            for alias in entity.aliases:
                key = normalize_phrase(alias)
                self._owners[key] = self._owners.get(key, 0) + 1

    # ------------------------------------------------------------------
    def by_domain(self, linker, dataset: Dataset) -> Breakdown:
        """Accuracy sliced by the gold entity's world domain."""
        return self._run(
            linker,
            dataset,
            "domain",
            lambda gold: (
                self.context.kb.get_entity(gold.concept_id).domain or "?"
            ),
        )

    def by_type(self, linker, dataset: Dataset) -> Breakdown:
        """Accuracy sliced by the gold entity's first KB type."""
        return self._run(
            linker,
            dataset,
            "type",
            lambda gold: (
                (self.context.kb.get_entity(gold.concept_id).types or ("?",))[0]
            ),
        )

    def by_ambiguity(self, linker, dataset: Dataset) -> Breakdown:
        """Accuracy sliced by the surface's sense count in the index."""

        def bucket(gold: GoldMention) -> str:
            owners = self._owners.get(normalize_phrase(gold.surface), 0)
            if owners <= 1:
                return "unambiguous"
            if owners <= 3:
                return "2-3 senses"
            return "4+ senses"

        return self._run(linker, dataset, "ambiguity", bucket)

    # ------------------------------------------------------------------
    def _run(
        self,
        linker,
        dataset: Dataset,
        dimension: str,
        category_of: Callable[[GoldMention], str],
    ) -> Breakdown:
        breakdown = Breakdown(
            system=getattr(linker, "name", type(linker).__name__),
            dataset=dataset.name,
            dimension=dimension,
        )
        for document in dataset:
            result = linker.link(document.text)
            for gold in document.gold:
                if gold.kind is not SpanKind.NOUN or gold.concept_id is None:
                    continue
                category = category_of(gold)
                breakdown.total[category] = breakdown.total.get(category, 0) + 1
                hit = any(
                    link.concept_id == gold.concept_id
                    and link.span.char_start < gold.char_end
                    and gold.char_start < link.span.char_end
                    for link in result.entity_links
                )
                if hit:
                    breakdown.correct[category] = (
                        breakdown.correct.get(category, 0) + 1
                    )
        return breakdown
