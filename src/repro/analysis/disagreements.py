"""Pairwise system disagreement analysis.

Given two linkers and an annotated dataset, list every gold mention on
which the systems disagree, adjudicated against the gold — the tool for
answering "which mentions does A get that B misses, and vice versa?"
(the analysis behind every error-chasing session).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.schema import Dataset, GoldMention
from repro.nlp.spans import SpanKind


@dataclass(frozen=True)
class Disagreement:
    """One gold mention where two systems differ."""

    doc_id: str
    surface: str
    kind: SpanKind
    gold_concept: str
    prediction_a: Optional[str]
    prediction_b: Optional[str]
    a_correct: bool
    b_correct: bool

    @property
    def winner(self) -> str:
        if self.a_correct and not self.b_correct:
            return "a"
        if self.b_correct and not self.a_correct:
            return "b"
        return "neither"


@dataclass
class DisagreementReport:
    """All disagreements between two systems on one dataset."""

    system_a: str
    system_b: str
    dataset: str
    disagreements: List[Disagreement]
    agreements: int = 0

    def a_wins(self) -> List[Disagreement]:
        return [d for d in self.disagreements if d.winner == "a"]

    def b_wins(self) -> List[Disagreement]:
        return [d for d in self.disagreements if d.winner == "b"]

    def both_wrong_differently(self) -> List[Disagreement]:
        return [d for d in self.disagreements if d.winner == "neither"]

    def summary_lines(self) -> List[str]:
        return [
            f"{self.system_a} vs {self.system_b} on {self.dataset}:",
            f"  agreements:            {self.agreements}",
            f"  {self.system_a} correct only:  {len(self.a_wins())}",
            f"  {self.system_b} correct only:  {len(self.b_wins())}",
            f"  both wrong, differently: {len(self.both_wrong_differently())}",
        ]


def _prediction_for(result, gold: GoldMention) -> Optional[str]:
    links = (
        result.entity_links
        if gold.kind is SpanKind.NOUN
        else result.relation_links
    )
    for link in links:
        if (
            link.span.char_start < gold.char_end
            and gold.char_start < link.span.char_end
        ):
            return link.concept_id
    return None


def find_disagreements(
    linker_a, linker_b, dataset: Dataset
) -> DisagreementReport:
    """Run both linkers and adjudicate every linkable gold mention."""
    report = DisagreementReport(
        system_a=getattr(linker_a, "name", type(linker_a).__name__),
        system_b=getattr(linker_b, "name", type(linker_b).__name__),
        dataset=dataset.name,
        disagreements=[],
    )
    for document in dataset:
        result_a = linker_a.link(document.text)
        result_b = linker_b.link(document.text)
        for gold in document.gold:
            if gold.concept_id is None:
                continue
            if gold.kind is SpanKind.RELATION and not dataset.has_relation_gold:
                continue
            prediction_a = _prediction_for(result_a, gold)
            prediction_b = _prediction_for(result_b, gold)
            if prediction_a == prediction_b:
                report.agreements += 1
                continue
            report.disagreements.append(
                Disagreement(
                    doc_id=document.doc_id,
                    surface=gold.surface,
                    kind=gold.kind,
                    gold_concept=gold.concept_id,
                    prediction_a=prediction_a,
                    prediction_b=prediction_b,
                    a_correct=prediction_a == gold.concept_id,
                    b_correct=prediction_b == gold.concept_id,
                )
            )
    return report
