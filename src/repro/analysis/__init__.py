"""Error analysis tooling.

Sec. 6.2 of the paper explains system differences qualitatively (prior
bias on ambiguous mentions, coherence drag on isolated mentions, alias
coverage gaps, relation-as-entity confusion).  This package turns that
analysis into a tool: every gold mention's outcome is classified into a
diagnosis category, per system and dataset.
"""

from repro.analysis.breakdown import Breakdown, PerformanceBreakdown
from repro.analysis.disagreements import (
    Disagreement,
    DisagreementReport,
    find_disagreements,
)
from repro.analysis.errors import (
    Diagnosis,
    ErrorAnalyzer,
    ErrorCase,
    ErrorReport,
)

__all__ = [
    "Breakdown",
    "PerformanceBreakdown",
    "Disagreement",
    "DisagreementReport",
    "find_disagreements",
    "Diagnosis",
    "ErrorAnalyzer",
    "ErrorCase",
    "ErrorReport",
]
