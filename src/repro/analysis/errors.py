"""Per-mention outcome classification.

For each *linkable* gold mention, the analyzer inspects the system's
overlapping predictions and the KB to assign one diagnosis:

* ``CORRECT`` — an overlapping prediction carries the gold concept;
* ``PRIOR_BIAS`` — the system predicted the surface's most popular sense
  while the gold was a less popular one (the "Michael Jordan
  (basketball player)" failure of prior-following systems);
* ``COHERENCE_DRAG`` — the gold *was* the most popular sense but the
  system predicted another (a coherence-forcing failure on isolated
  mentions);
* ``WRONG_CONCEPT`` — wrong prediction matching neither pattern;
* ``OOV_SURFACE`` — no prediction, and the gold surface is not in the
  alias index at all (candidate-coverage gap);
* ``CANDIDATE_CUTOFF`` — no prediction, surface is indexed but the gold
  concept is outside the top-k candidates;
* ``NOT_DETECTED`` — no prediction although the gold concept was
  reachable (a mention detection / selection failure);
* ``SPURIOUS_LINK`` — for non-linkable gold mentions: the system linked
  something anyway (the Fig. 6(c) failure mode).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.candidates import CandidateGenerator
from repro.core.linker import LinkingContext
from repro.core.result import LinkingResult
from repro.datasets.schema import AnnotatedDocument, Dataset, GoldMention
from repro.nlp.spans import SpanKind


class Diagnosis(enum.Enum):
    CORRECT = "correct"
    PRIOR_BIAS = "prior_bias"
    COHERENCE_DRAG = "coherence_drag"
    WRONG_CONCEPT = "wrong_concept"
    OOV_SURFACE = "oov_surface"
    CANDIDATE_CUTOFF = "candidate_cutoff"
    NOT_DETECTED = "not_detected"
    SPURIOUS_LINK = "spurious_link"
    CORRECT_ABSTAIN = "correct_abstain"  # non-linkable gold, no link made


@dataclass(frozen=True)
class ErrorCase:
    """One gold mention's outcome under one system."""

    doc_id: str
    surface: str
    kind: SpanKind
    gold_concept: Optional[str]
    predicted_concept: Optional[str]
    diagnosis: Diagnosis


@dataclass
class ErrorReport:
    """All outcomes for one (system, dataset) pair."""

    system: str
    dataset: str
    cases: List[ErrorCase] = field(default_factory=list)

    def counts(self) -> Dict[Diagnosis, int]:
        return dict(Counter(case.diagnosis for case in self.cases))

    def errors(self) -> List[ErrorCase]:
        return [
            c
            for c in self.cases
            if c.diagnosis
            not in (Diagnosis.CORRECT, Diagnosis.CORRECT_ABSTAIN)
        ]

    @property
    def accuracy(self) -> float:
        if not self.cases:
            return 0.0
        good = sum(
            1
            for c in self.cases
            if c.diagnosis in (Diagnosis.CORRECT, Diagnosis.CORRECT_ABSTAIN)
        )
        return good / len(self.cases)

    def summary_lines(self) -> List[str]:
        lines = [f"{self.system} on {self.dataset}: accuracy {self.accuracy:.3f}"]
        for diagnosis, count in sorted(
            self.counts().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {diagnosis.value:18s} {count}")
        return lines


class ErrorAnalyzer:
    """Classifies per-mention outcomes of any linker over a dataset."""

    def __init__(
        self, context: LinkingContext, max_candidates: int = 4
    ) -> None:
        self.context = context
        self.generator = CandidateGenerator(
            context.alias_index, max_candidates=max_candidates
        )

    # ------------------------------------------------------------------
    def analyze(self, linker, dataset: Dataset) -> ErrorReport:
        report = ErrorReport(
            system=getattr(linker, "name", type(linker).__name__),
            dataset=dataset.name,
        )
        for document in dataset:
            result = linker.link(document.text)
            for gold in document.gold:
                if (
                    gold.kind is SpanKind.RELATION
                    and not dataset.has_relation_gold
                ):
                    continue
                report.cases.append(
                    self._classify(document, gold, result)
                )
        return report

    # ------------------------------------------------------------------
    def _classify(
        self,
        document: AnnotatedDocument,
        gold: GoldMention,
        result: LinkingResult,
    ) -> ErrorCase:
        links = (
            result.entity_links
            if gold.kind is SpanKind.NOUN
            else result.relation_links
        )
        overlapping = [
            link
            for link in links
            if link.span.char_start < gold.char_end
            and gold.char_start < link.span.char_end
        ]
        predicted = overlapping[0].concept_id if overlapping else None

        if gold.concept_id is None:
            diagnosis = (
                Diagnosis.SPURIOUS_LINK
                if overlapping
                else Diagnosis.CORRECT_ABSTAIN
            )
            return self._case(document, gold, predicted, diagnosis)

        if any(l.concept_id == gold.concept_id for l in overlapping):
            return self._case(document, gold, gold.concept_id, Diagnosis.CORRECT)

        if overlapping:
            return self._case(
                document, gold, predicted, self._wrong_concept_kind(gold, predicted)
            )

        return self._case(
            document, gold, None, self._miss_kind(gold)
        )

    def _wrong_concept_kind(
        self, gold: GoldMention, predicted: Optional[str]
    ) -> Diagnosis:
        hits = self._lookup(gold)
        if not hits:
            return Diagnosis.WRONG_CONCEPT
        top = hits[0].concept_id
        if predicted == top and gold.concept_id != top:
            return Diagnosis.PRIOR_BIAS
        if gold.concept_id == top and predicted != top:
            return Diagnosis.COHERENCE_DRAG
        return Diagnosis.WRONG_CONCEPT

    def _miss_kind(self, gold: GoldMention) -> Diagnosis:
        hits = self._lookup(gold, limited=False)
        if not hits:
            return Diagnosis.OOV_SURFACE
        if not any(h.concept_id == gold.concept_id for h in hits):
            # indexed surface, but the gold sense is not among its owners
            return Diagnosis.OOV_SURFACE
        limited = self._lookup(gold, limited=True)
        if not any(h.concept_id == gold.concept_id for h in limited):
            return Diagnosis.CANDIDATE_CUTOFF
        return Diagnosis.NOT_DETECTED

    def _lookup(self, gold: GoldMention, limited: bool = True):
        index = self.context.alias_index
        if gold.kind is SpanKind.NOUN:
            hits = index.lookup_entities(gold.surface)
        else:
            hits = index.lookup_predicates(gold.surface)
        if limited:
            hits = hits[: self.generator.max_candidates]
        return hits

    @staticmethod
    def _case(document, gold, predicted, diagnosis) -> ErrorCase:
        return ErrorCase(
            doc_id=document.doc_id,
            surface=gold.surface,
            kind=gold.kind,
            gold_concept=gold.concept_id,
            predicted_concept=predicted,
            diagnosis=diagnosis,
        )
