"""Array-backed embedding store.

Rows live in one contiguous float32 matrix (memory-mappable to disk, as
the paper stores its PyTorch-BigGraph vectors), with a concept-id ->
row-index mapping on the side.  All vectors are L2-normalised on insertion
so cosine similarity is a plain dot product.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np


class EmbeddingStore:
    """Normalised embedding vectors keyed by concept id."""

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self._index: Dict[str, int] = {}
        self._ids: List[str] = []
        self._matrix = np.zeros((0, dimension), dtype=np.float32)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, ids: List[str], matrix: np.ndarray) -> "EmbeddingStore":
        """Build a store from a pre-computed (n, d) matrix."""
        if matrix.ndim != 2 or matrix.shape[0] != len(ids):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {len(ids)} ids"
            )
        store = cls(matrix.shape[1])
        store._ids = list(ids)
        store._index = {cid: i for i, cid in enumerate(store._ids)}
        if len(store._index) != len(store._ids):
            raise ValueError("duplicate concept ids")
        store._matrix = _normalise_rows(np.asarray(matrix, dtype=np.float32))
        return store

    def add(self, concept_id: str, vector: np.ndarray) -> None:
        """Append one vector (normalised in place)."""
        if concept_id in self._index:
            raise ValueError(f"duplicate concept id {concept_id!r}")
        vector = np.asarray(vector, dtype=np.float32).reshape(1, -1)
        if vector.shape[1] != self.dimension:
            raise ValueError(
                f"vector has dimension {vector.shape[1]}, store is {self.dimension}"
            )
        self._index[concept_id] = len(self._ids)
        self._ids.append(concept_id)
        self._matrix = np.vstack([self._matrix, _normalise_rows(vector)])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, concept_id: str) -> bool:
        return concept_id in self._index

    def __len__(self) -> int:
        return len(self._ids)

    def ids(self) -> List[str]:
        return list(self._ids)

    def vector(self, concept_id: str) -> np.ndarray:
        """The (normalised) embedding row for *concept_id*.

        Returned as a read-only zero-copy view: the matrix is shared
        state (between requests, and — memory-mapped — between worker
        processes), so no writable alias may escape the store.  A write
        through a row of an ``mmap_mode="r"`` matrix raises only on some
        numpy versions; freezing the view makes it raise on all of them,
        and protects in-RAM stores the same way.
        """
        view = self._matrix[self._index[concept_id]].view()
        view.flags.writeable = False
        return view

    def rows(self, concept_ids: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Batched row lookup: one fancy-index gather instead of a
        Python loop of :meth:`vector` calls.

        Returns ``(matrix, known)`` where ``matrix`` is ``(n, dim)``
        float32 with a zero row for every id the store does not hold and
        ``known`` is the matching boolean mask.  Works unchanged on a
        memory-mapped matrix (only the gathered pages are read).
        """
        index = self._index
        positions = np.fromiter(
            (index.get(cid, -1) for cid in concept_ids),
            dtype=np.int64,
            count=len(concept_ids),
        )
        known = positions >= 0
        out = np.zeros((len(concept_ids), self.dimension), dtype=np.float32)
        if known.any():
            out[known] = np.asarray(self._matrix)[positions[known]]
        return out, known

    def cosine(self, a: str, b: str) -> float:
        """Cosine similarity between two stored concepts, clipped to [-1, 1].

        Accumulated in float64 so the scalar value agrees with the
        batched ``E @ E.T`` matrix of :meth:`SimilarityIndex.batch_similarity
        <repro.embeddings.similarity.SimilarityIndex.batch_similarity>` to
        ~1e-15 instead of the ~1e-7 drift of float32 dot products.
        """
        value = float(
            np.dot(
                np.asarray(self.vector(a), dtype=np.float64),
                np.asarray(self.vector(b), dtype=np.float64),
            )
        )
        return max(-1.0, min(1.0, value))

    def distance(self, a: str, b: str) -> float:
        """The paper's global semantic distance 1 - cos (Eq. 3-5), in [0, 2]."""
        return 1.0 - self.cosine(a, b)

    def nearest(self, concept_id: str, k: int = 10) -> List[Tuple[str, float]]:
        """The k most cosine-similar other concepts."""
        query = self.vector(concept_id)
        scores = self._matrix @ query
        order = np.argsort(-scores)
        result: List[Tuple[str, float]] = []
        for idx in order:
            cid = self._ids[int(idx)]
            if cid == concept_id:
                continue
            result.append((cid, float(scores[int(idx)])))
            if len(result) >= k:
                break
        return result

    # ------------------------------------------------------------------
    # persistence (memory-mapped load path)
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist to ``embeddings.npy`` + ``ids.json`` under *directory*.

        Writes are atomic: both files land in a temp directory first and
        are published by rename, so a crash mid-save can never leave a
        half-written directory that :meth:`load` would silently accept.
        When *directory* does not exist yet the whole temp directory is
        renamed into place in one step; when it does, each file is
        atomically replaced (``ids.json`` last, so a torn state shows up
        as the id-count/row-count mismatch :meth:`load` rejects).
        """
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = directory.parent / f".{directory.name}.tmp-{uuid.uuid4().hex[:8]}"
        tmp.mkdir()
        try:
            np.save(tmp / "embeddings.npy", np.asarray(self._matrix))
            (tmp / "ids.json").write_text(json.dumps(self._ids))
            if directory.exists():
                os.replace(tmp / "embeddings.npy", directory / "embeddings.npy")
                os.replace(tmp / "ids.json", directory / "ids.json")
                tmp.rmdir()
            else:
                os.replace(tmp, directory)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    @classmethod
    def load(cls, directory: Union[str, Path], mmap: bool = True) -> "EmbeddingStore":
        """Load a store saved by :meth:`save`.

        With ``mmap=True`` the matrix is memory-mapped rather than read
        into RAM — the access pattern the paper describes for serving
        embeddings during linking.

        Raises ``ValueError`` when the directory is internally
        inconsistent (id count != matrix rows, or a malformed matrix) —
        the signature of a torn write by a pre-atomic saver.
        """
        directory = Path(directory)
        matrix = np.load(
            directory / "embeddings.npy", mmap_mode="r" if mmap else None
        )
        ids = json.loads((directory / "ids.json").read_text())
        if not isinstance(ids, list) or not all(isinstance(i, str) for i in ids):
            raise ValueError(f"corrupt embedding store at {directory}: bad ids.json")
        if matrix.ndim != 2:
            raise ValueError(
                f"corrupt embedding store at {directory}: matrix has "
                f"{matrix.ndim} dimensions, expected 2"
            )
        if matrix.shape[0] != len(ids):
            raise ValueError(
                f"corrupt embedding store at {directory}: {len(ids)} ids "
                f"vs {matrix.shape[0]} matrix rows"
            )
        store = cls(matrix.shape[1])
        store._ids = list(ids)
        store._index = {cid: i for i, cid in enumerate(store._ids)}
        if len(store._index) != len(store._ids):
            raise ValueError(
                f"corrupt embedding store at {directory}: duplicate concept ids"
            )
        store._matrix = matrix
        return store


def _normalise_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms
