"""Deterministic graph-propagation embedding trainer.

Stands in for PyTorch-BigGraph.  The coherence graph only consumes
``cos(embedding(a), embedding(b))`` as a relatedness signal between KB
concepts (paper Eq. 3-5), so any embedding whose cosine reflects KB
adjacency preserves the behaviour.  We use the classic recipe:

1. seed every concept with an i.i.d. Gaussian vector (seeded RNG);
2. repeat for a fixed number of sweeps: each concept's vector becomes a
   convex mix of itself and the mean of its KB neighbours, re-normalised.

After a few sweeps, concepts sharing many KB facts (same topical domain)
have high cosine similarity while unrelated concepts stay near-orthogonal
(random vectors in moderate dimension).  The procedure is deterministic,
dependency-free, and linear in the number of facts per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from repro.embeddings.store import EmbeddingStore
from repro.kb.store import KnowledgeBase


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the propagation trainer."""

    dimension: int = 256
    sweeps: int = 2
    self_weight: float = 0.5
    seed: int = 13

    def __post_init__(self) -> None:
        if not 0.0 <= self.self_weight <= 1.0:
            raise ValueError(f"self_weight must be in [0, 1], got {self.self_weight}")
        if self.sweeps < 0:
            raise ValueError(f"sweeps must be >= 0, got {self.sweeps}")
        if self.dimension <= 0:
            raise ValueError(f"dimension must be positive, got {self.dimension}")


class EmbeddingTrainer:
    """Trains an :class:`EmbeddingStore` over a KB's fact graph."""

    def __init__(self, kb: KnowledgeBase, config: TrainerConfig = TrainerConfig()):
        self.kb = kb
        self.config = config

    def build_adjacency(self) -> Dict[str, Set[str]]:
        """Concept-level adjacency from facts.

        Each fact (s, p, o) contributes edges s—o (entity objects only),
        s—p and p—o, so predicates are embedded in the same space as the
        entities they connect — required because the coherence graph has
        entity↔predicate edges (Eq. 5).
        """
        adjacency: Dict[str, Set[str]] = {
            cid: set() for cid in self.kb.concept_ids()
        }
        for triple in self.kb.triples():
            s, p = triple.subject, triple.predicate
            adjacency[s].add(p)
            adjacency[p].add(s)
            if not triple.object_is_literal:
                o = triple.obj
                adjacency[s].add(o)
                adjacency[o].add(s)
                adjacency[p].add(o)
                adjacency[o].add(p)
        return adjacency

    def train(self) -> EmbeddingStore:
        """Run the propagation sweeps and return the trained store."""
        ids = self.kb.concept_ids()
        if not ids:
            return EmbeddingStore(self.config.dimension)
        index = {cid: i for i, cid in enumerate(ids)}
        rng = np.random.default_rng(self.config.seed)
        matrix = rng.standard_normal((len(ids), self.config.dimension)).astype(
            np.float32
        )
        matrix = _normalise(matrix)

        adjacency = self.build_adjacency()
        neighbour_rows: List[np.ndarray] = [
            np.fromiter(
                (index[n] for n in sorted(adjacency[cid])), dtype=np.int64
            )
            for cid in ids
        ]

        alpha = self.config.self_weight
        for _ in range(self.config.sweeps):
            updated = matrix.copy()
            for row, neighbours in enumerate(neighbour_rows):
                if neighbours.size == 0:
                    continue
                mean = matrix[neighbours].mean(axis=0)
                updated[row] = alpha * matrix[row] + (1.0 - alpha) * mean
            matrix = _normalise(updated)

        return EmbeddingStore.from_matrix(ids, matrix)


def _normalise(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms
