"""Pairwise similarity with caching.

The paper notes (Sec. 6.2, efficiency discussion) that semantic
relatedness between concept pairs is pre-computed/indexed so that
retrieving one coherence-graph edge costs O(1).  :class:`SimilarityIndex`
provides exactly that: an unordered-pair cache in front of the embedding
store, plus a bulk pre-computation entry point.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.caching import LRUCache
from repro.embeddings.store import EmbeddingStore

_MISSING = object()


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two raw vectors (0 when either is zero)."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    value = float(np.dot(a, b)) / (norm_a * norm_b)
    return max(-1.0, min(1.0, value))


class SimilarityIndex:
    """Cached pairwise semantic distance over an embedding store.

    By default the pair cache is an unbounded dict (the paper's
    per-document precomputation).  A long-lived serving process can
    instead inject a bounded, thread-safe :class:`repro.caching.LRUCache`
    so the cache survives across requests without growing forever;
    values are identical either way.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        cache: Optional[LRUCache] = None,
    ) -> None:
        self._store = store
        self._cache: Union[dict, LRUCache] = cache if cache is not None else {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def similarity(self, a: str, b: str) -> float:
        """Cached cosine similarity."""
        if a == b:
            return 1.0
        key = self._key(a, b)
        value = self._cache.get(key, _MISSING)
        if value is _MISSING:
            value = self._store.cosine(a, b)
            self._cache[key] = value
        return value

    def distance(self, a: str, b: str) -> float:
        """The paper's global semantic distance 1 - cos(a, b)."""
        return 1.0 - self.similarity(a, b)

    def precompute(self, concept_ids: Iterable[str]) -> None:
        """Bulk-fill the cache for every unordered pair of *concept_ids*.

        Mirrors the paper's pre-computation of all pairwise relatedness
        for the concepts appearing in one document.
        """
        ids: List[str] = [cid for cid in concept_ids if cid in self._store]
        if len(ids) < 2:
            return
        vectors = np.stack([self._store.vector(cid) for cid in ids])
        sims = vectors @ vectors.T
        for i, a in enumerate(ids):
            for j in range(i + 1, len(ids)):
                value = float(sims[i, j])
                self._cache[self._key(a, ids[j])] = max(-1.0, min(1.0, value))

    @property
    def cache_size(self) -> int:
        return len(self._cache)
