"""Pairwise similarity with caching, and the batched matrix hot path.

The paper notes (Sec. 6.2, efficiency discussion) that semantic
relatedness between concept pairs is pre-computed/indexed so that
retrieving one coherence-graph edge costs O(1).  :class:`SimilarityIndex`
provides exactly that: an unordered-pair cache in front of the embedding
store for scalar lookups (the baselines' access pattern), plus
:meth:`SimilarityIndex.batch_similarity` — one ``E @ E.T`` block over a
single gathered row matrix — which is what the coherence-graph
construction uses instead of O(n^2) per-pair calls.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.caching import LRUCache
from repro.embeddings.store import EmbeddingStore

_MISSING = object()


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two raw vectors (0 when either is zero)."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    value = float(np.dot(a, b)) / (norm_a * norm_b)
    return max(-1.0, min(1.0, value))


class SimilarityIndex:
    """Cached pairwise semantic distance over an embedding store.

    By default the pair cache is an unbounded dict (the paper's
    per-document precomputation).  A long-lived serving process can
    instead inject a bounded, thread-safe :class:`repro.caching.LRUCache`
    so the cache survives across requests without growing forever;
    values are identical either way.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        cache: Optional[LRUCache] = None,
    ) -> None:
        self._store = store
        self._cache: Union[dict, LRUCache] = cache if cache is not None else {}
        # Monotonic counters of the batched path (surfaced by the bench
        # harness next to the LRU hit/miss stats).  The index is shared
        # across service workers, so the increments take a lock: a bare
        # `+=` is a read-modify-write that loses updates under
        # contention, which would make the per-worker counter fold-in
        # on /metrics undercount.
        self._stats_lock = threading.Lock()
        self.batch_calls = 0
        self.batch_pairs = 0

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def similarity(self, a: str, b: str) -> float:
        """Cached cosine similarity."""
        if a == b:
            return 1.0
        key = self._key(a, b)
        value = self._cache.get(key, _MISSING)
        if value is _MISSING:
            value = self._store.cosine(a, b)
            self._cache[key] = value
        return value

    def distance(self, a: str, b: str) -> float:
        """The paper's global semantic distance 1 - cos(a, b)."""
        return 1.0 - self.similarity(a, b)

    def batch_similarity(self, concept_ids: Sequence[str]) -> np.ndarray:
        """Clipped cosine matrix over *concept_ids* in one matrix product.

        The ``(n, n)`` float64 result matches the scalar
        :meth:`similarity` semantics entry-wise: positions holding the
        *same* id are exactly ``1.0`` (the ``a == b`` shortcut), and any
        pair involving an id the store does not hold is ``0.0`` (a zero
        vector, where the scalar path would raise).  Rows are gathered
        with one fancy-index call (:meth:`EmbeddingStore.rows
        <repro.embeddings.store.EmbeddingStore.rows>`) and multiplied as
        a single ``E @ E.T`` block, so the cost is one BLAS call instead
        of ``n^2/2`` Python-level cosine calls.  The unordered-pair
        cache is deliberately bypassed: filling it pair-by-pair is the
        O(n^2) Python loop this path exists to avoid.
        """
        ids = list(concept_ids)
        n = len(ids)
        with self._stats_lock:
            self.batch_calls += 1
            self.batch_pairs += n * (n - 1) // 2
        if n == 0:
            return np.zeros((0, 0), dtype=np.float64)
        vectors, _ = self._store.rows(ids)
        matrix = vectors.astype(np.float64)
        sims = np.clip(matrix @ matrix.T, -1.0, 1.0)
        id_array = np.array(ids, dtype=object)
        sims[id_array[:, None] == id_array[None, :]] = 1.0
        return sims

    def batch_distance(self, concept_ids: Sequence[str]) -> np.ndarray:
        """``1 - batch_similarity`` (the paper's global semantic distance)."""
        return 1.0 - self.batch_similarity(concept_ids)

    def precompute(self, concept_ids: Iterable[str]) -> None:
        """Bulk-fill the pair cache for every unordered pair of *concept_ids*.

        Mirrors the paper's pre-computation of all pairwise relatedness
        for the concepts appearing in one document.  The values come
        from :meth:`batch_similarity`, so a later scalar lookup hits the
        cache with exactly the number the batched path would produce.
        Only callers that keep issuing scalar lookups (the baselines)
        benefit; TENET's graph construction consumes the matrix
        directly and never needs this.
        """
        ids: List[str] = [
            cid for cid in dict.fromkeys(concept_ids) if cid in self._store
        ]
        if len(ids) < 2:
            return
        sims = self.batch_similarity(ids)
        for i, a in enumerate(ids):
            row = sims[i]
            for j in range(i + 1, len(ids)):
                self._cache[self._key(a, ids[j])] = float(row[j])

    def batch_stats(self) -> dict:
        """JSON-compatible counters of the batched matrix path."""
        with self._stats_lock:
            calls, pairs = self.batch_calls, self.batch_pairs
        return {
            "batch_calls": calls,
            "batch_pairs": pairs,
            "pair_cache_size": self.cache_size,
        }

    @property
    def cache_size(self) -> int:
        return len(self._cache)
