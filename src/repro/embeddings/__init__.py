"""Embedding substrate.

The paper uses PyTorch-BigGraph embeddings of the Wikidata dump and keeps
them in a memory-mapped array so edge-weight lookups are O(1).  We replace
the trainer with a deterministic propagation embedding over the KB fact
graph (:mod:`repro.embeddings.trainer`) — cosine similarity between two
concepts then reflects their KB relatedness, which is the only property
the coherence graph consumes — and keep the array-backed store and a
pairwise-distance cache (:mod:`repro.embeddings.store`).
"""

from repro.embeddings.store import EmbeddingStore
from repro.embeddings.trainer import EmbeddingTrainer, TrainerConfig
from repro.embeddings.similarity import SimilarityIndex, cosine_similarity

__all__ = [
    "EmbeddingStore",
    "EmbeddingTrainer",
    "TrainerConfig",
    "SimilarityIndex",
    "cosine_similarity",
]
