"""Simple KB question answering on top of the joint linker.

Supported question shapes (the short-text setting of Falcon/EARL):

* ``Who/What/Which ... <relation> <entity>?``  — the linked entity is the
  *object*; answers are the KB subjects of (?, predicate, entity).
* ``<Wh-word> did/does <entity> <relation>?`` or
  ``Where was <entity> born?`` — the linked entity is the *subject*;
  answers are the KB objects of (entity, predicate, ?).

Direction is decided by span order: an entity mention *after* the linked
relational phrase is its object, one *before* it is its subject — the
same subject/object attachment the Open IE stage produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.linker import LinkingContext, TenetLinker
from repro.core.result import Link


@dataclass
class Answer:
    """The result of answering one question."""

    question: str
    entity_ids: List[str] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    # the interpretation that produced the answers
    anchor_id: Optional[str] = None
    predicate_id: Optional[str] = None
    anchor_is_subject: bool = True

    @property
    def found(self) -> bool:
        return bool(self.entity_ids)


class KBQuestionAnswerer:
    """Link a question, then answer it with one KB hop."""

    def __init__(
        self,
        context: LinkingContext,
        linker: Optional[TenetLinker] = None,
    ) -> None:
        self.context = context
        self.linker = linker or TenetLinker(context)

    def answer(self, question: str) -> Answer:
        """Answer a single-hop question; empty answer when unlinkable."""
        result = self.linker.link(question)
        pair = self._pick_anchor(result.entity_links, result.relation_links)
        if pair is None:
            return Answer(question)
        entity_link, relation_link = pair
        anchor_is_subject = (
            entity_link.span.token_start < relation_link.span.token_start
        )
        kb = self.context.kb
        if anchor_is_subject:
            ids = kb.objects_of(entity_link.concept_id, relation_link.concept_id)
            ids = {i for i in ids if kb.has_entity(i)}
        else:
            ids = kb.subjects_of(entity_link.concept_id, relation_link.concept_id)
        ordered = sorted(ids)
        return Answer(
            question=question,
            entity_ids=ordered,
            labels=[kb.get_entity(i).label for i in ordered],
            anchor_id=entity_link.concept_id,
            predicate_id=relation_link.concept_id,
            anchor_is_subject=anchor_is_subject,
        )

    def verify(self, question: str) -> Optional[bool]:
        """Answer a yes/no question about one fact.

        The question is linked jointly; the (subject, predicate, object)
        reading around the linked relational phrase is checked against
        the KB.  Returns ``None`` when the question cannot be
        interpreted (no linked relation with arguments on both sides).
        """
        result = self.linker.link(question)
        for relation in result.relation_links:
            before = [
                l
                for l in result.entity_links
                if l.span.token_end <= relation.span.token_start
            ]
            after = [
                l
                for l in result.entity_links
                if l.span.token_start >= relation.span.token_end
            ]
            if not before or not after:
                continue
            subject = max(before, key=lambda l: l.span.token_end)
            obj = min(after, key=lambda l: l.span.token_start)
            return self.context.kb.has_fact(
                subject.concept_id, relation.concept_id, obj.concept_id
            )
        return None

    @staticmethod
    def _pick_anchor(
        entity_links: List[Link], relation_links: List[Link]
    ) -> Optional[Tuple[Link, Link]]:
        """The entity/relation pair closest together in the question."""
        best: Optional[Tuple[int, Link, Link]] = None
        for relation in relation_links:
            for entity in entity_links:
                gap = abs(
                    entity.span.token_start - relation.span.token_start
                )
                if best is None or gap < best[0]:
                    best = (gap, entity, relation)
        if best is None:
            return None
        return best[1], best[2]
