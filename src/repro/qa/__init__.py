"""Question answering over the KB via joint linking.

The paper's second motivating application (Falcon, EARL): link the
entities and the relation of a natural-language question, then answer it
with a KB lookup.
"""

from repro.qa.answerer import Answer, KBQuestionAnswerer
from repro.qa.generator import BooleanQuestion, QuestionGenerator, WhQuestion

__all__ = [
    "Answer",
    "KBQuestionAnswerer",
    "BooleanQuestion",
    "QuestionGenerator",
    "WhQuestion",
]
