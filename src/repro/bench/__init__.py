"""Machine-readable performance trajectory of the linker.

``repro.bench`` is the repo's benchmark harness (``python -m repro.cli
bench``): it times the named pipeline stages — candidate generation,
coherence-graph construction, tree-cover solve, grouping/matching,
disambiguation — plus service-layer throughput over the synthetic world
at several dataset scales, and writes a schema-versioned
``BENCH_<rev>.json`` record.  ``bench compare`` diffs two such records
and exits non-zero past a configurable regression threshold, which is
how CI guards the hot paths.

The harness is deterministic in its *workload* (fixed seeds, fixed
document corpora) and dependency-free (stdlib + numpy, like the rest of
the repo); wall-clock numbers naturally vary with the hardware, which is
why the JSON embeds an environment fingerprint.
"""

from repro.bench.compare import (
    ComparisonResult,
    StageDelta,
    compare_reports,
    format_comparison,
    load_report,
)
from repro.bench.harness import (
    BenchConfig,
    default_report_name,
    git_rev,
    run_benchmark,
)
from repro.bench.load import (
    LoadConfig,
    format_load_summary,
    percentile,
    run_load,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    summarize,
    validate_report,
)

__all__ = [
    "BenchConfig",
    "BenchSchemaError",
    "ComparisonResult",
    "LoadConfig",
    "SCHEMA_VERSION",
    "StageDelta",
    "compare_reports",
    "default_report_name",
    "format_comparison",
    "format_load_summary",
    "git_rev",
    "load_report",
    "percentile",
    "run_benchmark",
    "run_load",
    "summarize",
    "validate_report",
]
