"""Diffing two ``BENCH_*.json`` records (``bench compare``).

The comparison is stage-wise: for every dataset scale present in both
records and every pipeline stage whose baseline mean is above the noise
floor, the regression fraction is ``current_mean / baseline_mean - 1``.
Service throughput joins the same frame as seconds-per-document so one
threshold covers everything.  A regression larger than the threshold on
any compared metric makes the comparison fail (exit 1 in the CLI),
which is the CI gate; improvements are reported but never fail.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.schema import BenchSchemaError, validate_report


@dataclass(frozen=True)
class StageDelta:
    """One compared metric: a stage mean (seconds) at one scale."""

    name: str
    scale: Optional[float]
    baseline_seconds: float
    current_seconds: float

    @property
    def regression(self) -> float:
        """Fractional slowdown (> 0 regressed, < 0 improved)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.current_seconds / self.baseline_seconds - 1.0

    def describe(self) -> str:
        scale = f"@{self.scale:g}" if self.scale is not None else ""
        return (
            f"{self.name}{scale}: {1000 * self.baseline_seconds:.3f}ms -> "
            f"{1000 * self.current_seconds:.3f}ms ({100 * self.regression:+.1f}%)"
        )


@dataclass
class ComparisonResult:
    """Everything ``bench compare`` derived from two records."""

    threshold: float
    min_seconds: float
    deltas: List[StageDelta] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    # Quality-parity failures from the current record's ``routing`` block
    # (routed F1 drifting past its tolerance).  Unlike the timing deltas
    # these are absolute checks on one record, not a diff — but they fail
    # the same gate: speed bought with quality is a regression.
    parity_failures: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[StageDelta]:
        return [d for d in self.deltas if d.regression > self.threshold]

    @property
    def improvements(self) -> List[StageDelta]:
        return [d for d in self.deltas if d.regression < -self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.parity_failures

    @property
    def worst(self) -> Optional[StageDelta]:
        if not self.deltas:
            return None
        return max(self.deltas, key=lambda d: d.regression)


def load_report(path: Union[str, Path]) -> Dict[str, object]:
    """Parse and schema-validate one bench JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"{path}: cannot read bench JSON: {exc}") from exc
    problems = validate_report(payload)
    if problems:
        listing = "; ".join(problems[:5])
        raise BenchSchemaError(f"{path}: invalid bench record: {listing}")
    return payload


def _scales_by_value(report: Dict[str, object]) -> Dict[float, Dict]:
    return {
        float(entry["scale"]): entry
        for entry in report.get("scales", [])
        if isinstance(entry, dict)
    }


def _service_seconds_per_doc(report: Dict[str, object]) -> Optional[float]:
    service = report.get("service")
    if not isinstance(service, dict):
        return None
    dps = service.get("documents_per_second")
    if not isinstance(dps, (int, float)) or dps <= 0:
        return None
    return 1.0 / float(dps)


def _load_metrics(report: Dict[str, object]) -> Dict[str, float]:
    """Comparable numbers from the optional ``load`` block.

    Seconds-per-goodput-request and the completed-request p95 join the
    same more-is-worse frame as the stage means, so the one threshold
    also gates serving capacity and tail latency under load.  Records
    are only comparable when both ran the same loop mode — the caller
    checks that.
    """
    load = report.get("load")
    if not isinstance(load, dict):
        return {}
    metrics: Dict[str, float] = {}
    goodput = load.get("goodput_rps")
    if isinstance(goodput, (int, float)) and goodput > 0:
        metrics["load.seconds_per_goodput_request"] = 1.0 / float(goodput)
    latency = load.get("latency")
    if isinstance(latency, dict):
        p95 = latency.get("p95_seconds")
        if isinstance(p95, (int, float)) and p95 > 0:
            metrics["load.p95_seconds"] = float(p95)
    return metrics


def _load_mode_of(report: Dict[str, object]) -> Optional[str]:
    load = report.get("load")
    if not isinstance(load, dict):
        return None
    config = load.get("config")
    return config.get("mode") if isinstance(config, dict) else None


def _check_routing_parity(
    report: Dict[str, object],
    tolerance_override: Optional[float],
    failures: List[str],
) -> None:
    """Fold the record's routing quality gate into the comparison.

    The routing block records full-vs-routed F1 and its own tolerance;
    *tolerance_override* re-judges the recorded deltas against a
    different bar (``bench compare --routing-tolerance``) without
    re-running the benchmark.
    """
    routing = report.get("routing")
    if not isinstance(routing, dict):
        return
    parity = routing.get("parity")
    if not isinstance(parity, dict):
        return
    if tolerance_override is None:
        if parity.get("ok") is False:
            failures.append(
                "routing parity: routed F1 drifted "
                f"{parity.get('max_abs_delta', 0.0):.4f} past tolerance "
                f"{parity.get('tolerance', 0.0):.4f}"
            )
        return
    delta = parity.get("max_abs_delta")
    if isinstance(delta, (int, float)) and delta > tolerance_override:
        failures.append(
            f"routing parity: routed F1 drifted {float(delta):.4f} past "
            f"tolerance {tolerance_override:.4f}"
        )


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = 0.25,
    min_seconds: float = 0.001,
    routing_tolerance: Optional[float] = None,
) -> ComparisonResult:
    """Stage-wise comparison of two parsed bench records.

    ``min_seconds`` is the noise floor: a stage whose mean is below it in
    *both* records is skipped — micro-stage jitter on fast hardware must
    not fail CI.  When the current record carries a ``routing`` block,
    its quality-parity verdict joins the gate (*routing_tolerance*
    overrides the tolerance the block was recorded with).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    result = ComparisonResult(threshold=threshold, min_seconds=min_seconds)
    _check_routing_parity(current, routing_tolerance, result.parity_failures)

    base_scales = _scales_by_value(baseline)
    curr_scales = _scales_by_value(current)
    shared = sorted(set(base_scales) & set(curr_scales))
    for scale in sorted(set(base_scales) ^ set(curr_scales)):
        result.skipped.append(f"scale {scale:g} present in only one record")

    for scale in shared:
        base_stages = base_scales[scale].get("stages", {})
        curr_stages = curr_scales[scale].get("stages", {})
        for stage in sorted(set(base_stages) & set(curr_stages)):
            base_mean = float(base_stages[stage].get("mean", 0.0))
            curr_mean = float(curr_stages[stage].get("mean", 0.0))
            if base_mean < min_seconds and curr_mean < min_seconds:
                result.skipped.append(
                    f"{stage}@{scale:g} below {min_seconds}s noise floor"
                )
                continue
            result.deltas.append(
                StageDelta(stage, scale, base_mean, curr_mean)
            )

    base_spd = _service_seconds_per_doc(baseline)
    curr_spd = _service_seconds_per_doc(current)
    if base_spd is not None and curr_spd is not None:
        result.deltas.append(
            StageDelta("service.seconds_per_document", None, base_spd, curr_spd)
        )

    base_mode, curr_mode = _load_mode_of(baseline), _load_mode_of(current)
    if base_mode is not None and curr_mode is not None:
        if base_mode != curr_mode:
            result.skipped.append(
                f"load blocks ran different loop modes "
                f"({base_mode} vs {curr_mode})"
            )
        else:
            base_load = _load_metrics(baseline)
            curr_load = _load_metrics(current)
            for name in sorted(set(base_load) & set(curr_load)):
                result.deltas.append(
                    StageDelta(name, None, base_load[name], curr_load[name])
                )
    return result


def format_comparison(
    result: ComparisonResult,
    baseline_name: str = "baseline",
    current_name: str = "current",
) -> str:
    """Human-readable comparison table plus the verdict line."""
    lines = [
        f"bench compare: {baseline_name} -> {current_name} "
        f"(threshold {100 * result.threshold:.0f}%, "
        f"noise floor {1000 * result.min_seconds:g}ms)"
    ]
    for delta in result.deltas:
        marker = " "
        if delta.regression > result.threshold:
            marker = "!"
        elif delta.regression < -result.threshold:
            marker = "+"
        lines.append(f"  {marker} {delta.describe()}")
    if result.skipped:
        lines.append(f"  (skipped: {len(result.skipped)} metrics)")
    for failure in result.parity_failures:
        lines.append(f"  ! {failure}")
    if result.ok:
        lines.append("OK: no stage regressed past the threshold")
    elif result.regressions:
        worst = result.worst
        lines.append(
            f"FAIL: {len(result.regressions)} metric(s) regressed past "
            f"{100 * result.threshold:.0f}% (worst: {worst.describe()})"
        )
    else:
        lines.append(
            f"FAIL: {len(result.parity_failures)} routing parity failure(s)"
        )
    return "\n".join(lines)
